"""Ablations for RECEIPT's design choices beyond the paper's Figs. 6/7.

DESIGN.md calls out three design decisions whose effect is worth measuring
separately from the headline HUC/DGM ablation:

* **Adaptive range determination (Sec. 3.1.1)** — dynamic targets plus
  overshoot scaling vs. a static ``total work / P`` target.  The adaptive
  scheme should spread vertices over (close to) the requested number of
  subsets instead of collapsing them into a few oversized ones.
* **Workload-aware scheduling for FD** — LPT ordering vs. arrival ordering
  of the subset task queue, evaluated with the cost model at 36 threads.
* **HUC cost factor** — how the Python-specific recount cost multiplier
  trades recount invocations against traversed wedges.

Each row of the report carries the dataset, the design choice being ablated
and a compact summary of the measured effect.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_DATASETS, BENCH_PARTITIONS, get_graph, get_receipt, side_label
from repro.core.receipt import receipt_decomposition
from repro.core.scheduling import greedy_schedule, lpt_schedule

ABLATION_DATASETS = [key for key in ("it", "tr") if key in BENCH_DATASETS] or BENCH_DATASETS[:1]


def _fd_work(result) -> np.ndarray:
    return np.array(
        [record.wedges_traversed for record in result.extra["subset_records"]], dtype=float
    )


@pytest.mark.parametrize("key", ABLATION_DATASETS)
def bench_adaptive_vs_static_ranges(benchmark, report, key):
    graph = get_graph(key)

    def run_both():
        adaptive = get_receipt(key, "U")
        static = receipt_decomposition(
            graph, "U", n_partitions=BENCH_PARTITIONS, adaptive_range_targets=False
        )
        return adaptive, static

    adaptive, static = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert np.array_equal(adaptive.tip_numbers, static.tip_numbers)

    adaptive_sizes = _fd_work(adaptive)
    static_sizes = _fd_work(static)
    adaptive_used = int(np.count_nonzero(adaptive_sizes > 0))
    static_used = int(np.count_nonzero(static_sizes > 0))

    report.add_row(
        dataset=side_label(key, "U"),
        choice="adaptive vs static range targets",
        summary=(
            f"subsets with work: adaptive={adaptive_used}, static={static_used}; "
            f"largest-subset share: adaptive="
            f"{adaptive_sizes.max() / max(adaptive_sizes.sum(), 1):.2f}, "
            f"static={static_sizes.max() / max(static_sizes.sum(), 1):.2f}"
        ),
    )
    # Adaptive targeting must not produce fewer usable subsets than the
    # static scheme (its purpose is to avoid collapsing U into few subsets).
    assert adaptive_used >= static_used


@pytest.mark.parametrize("key", ABLATION_DATASETS)
def bench_fd_scheduling_choice(benchmark, report, key):
    result = get_receipt(key, "U")
    work = _fd_work(result)
    threads = 36

    def schedules():
        return greedy_schedule(work, threads), lpt_schedule(work, threads)

    arrival, was = benchmark.pedantic(schedules, rounds=1, iterations=1)
    report.add_row(
        dataset=side_label(key, "U"),
        choice="FD task ordering (36 threads)",
        summary=(
            f"makespan: arrival={arrival.makespan:.0f}, WaS={was.makespan:.0f}; "
            f"imbalance: arrival={arrival.imbalance:.2f}, WaS={was.imbalance:.2f}"
        ),
    )
    lower_bound = max(work.sum() / threads, work.max(initial=0.0))
    assert was.makespan <= (4.0 / 3.0) * lower_bound + 1e-6


@pytest.mark.parametrize("key", ABLATION_DATASETS)
@pytest.mark.parametrize("factor", [1.0, 3.0, 8.0])
def bench_huc_cost_factor(benchmark, report, key, factor):
    graph = get_graph(key)

    result = benchmark.pedantic(
        lambda: receipt_decomposition(graph, "U", n_partitions=BENCH_PARTITIONS,
                                      huc_cost_factor=factor),
        rounds=1, iterations=1,
    )
    reference = get_receipt(key, "U")
    assert np.array_equal(result.tip_numbers, reference.tip_numbers)
    report.add_row(
        dataset=side_label(key, "U"),
        choice=f"HUC cost factor = {factor}",
        summary=(
            f"recounts={result.counters.recount_invocations}, "
            f"wedges={result.counters.wedges_traversed:,}, "
            f"time={result.counters.elapsed_seconds:.3f}s"
        ),
    )
