"""Extension (paper Sec. 7): distributed-memory CD — communication profile.

No figure in the paper corresponds to this bench; it quantifies the
trade-off the paper's future-work section describes when RECEIPT CD runs on
a distributed-memory system: support updates that cross process boundaries
become network messages, and their share grows with the number of workers,
while bulk-synchronous aggregation keeps the message count per round small.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_DATASETS, BENCH_PARTITIONS, get_graph, side_label
from repro.distributed.simulation import simulate_distributed_cd

EXTENSION_DATASETS = [key for key in ("it", "tr") if key in BENCH_DATASETS] or BENCH_DATASETS[:1]
WORKER_COUNTS = (2, 4, 16)


@pytest.mark.parametrize("key", EXTENSION_DATASETS)
@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def bench_distributed_cd_profile(benchmark, report, key, n_workers):
    graph = get_graph(key)

    result = benchmark.pedantic(
        lambda: simulate_distributed_cd(graph, BENCH_PARTITIONS, n_workers),
        rounds=1, iterations=1,
    )

    report.add_row(
        dataset=side_label(key, "U"),
        workers=n_workers,
        rounds=result.synchronization_rounds,
        remote_update_pct=round(100 * result.remote_fraction, 1),
        aggregated_messages=result.aggregated_messages,
        load_imbalance=round(result.load_imbalance, 2),
    )

    # Aggregation keeps per-round messages bounded by the worker pairs.
    assert result.aggregated_messages <= (
        result.synchronization_rounds * n_workers * (n_workers - 1)
    )
    if n_workers == 1:
        assert result.remote_updates == 0
