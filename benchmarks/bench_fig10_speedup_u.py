"""Fig. 10: projected parallel speedup of RECEIPT when peeling the U sides.

The paper measures self-relative speedup on a 36-core machine for
T = 1, 2, 4, 9, 18, 36 threads.  CPython's GIL makes real multi-threaded
wall-clock measurements meaningless for the pure-Python kernels, so this
bench replays the *measured* per-region work distributions of each RECEIPT
run through the analytical cost model (see DESIGN.md, substitution table):
per-iteration CD work, per-chunk counting work and per-subset FD work are
all taken from the instrumented execution, so load imbalance and the
round structure — the effects Fig. 10 illustrates — are preserved.

The barrier cost is scaled to the stand-in graph sizes (the default value
targets paper-scale wedge counts and would dwarf these small runs).
"""

from __future__ import annotations

import pytest

from conftest import BENCH_DATASETS, get_receipt, side_label
from repro.core.stats import build_cost_model

THREAD_COUNTS = (1, 2, 4, 9, 18, 36)
#: Barrier cost in wedge-traversal units, scaled for laptop-size stand-ins.
BARRIER_COST = 50.0

SIDE = "U"


@pytest.mark.parametrize("key", BENCH_DATASETS)
def bench_fig10_speedup_u_side(benchmark, report, key):
    result = get_receipt(key, SIDE)

    def project():
        model = build_cost_model(result, barrier_cost=BARRIER_COST)
        return {point.n_threads: point.speedup for point in model.speedup_curve(THREAD_COUNTS)}

    speedups = benchmark.pedantic(project, rounds=1, iterations=1)

    report.add_row(
        dataset=side_label(key, SIDE),
        **{f"T{threads}": round(speedups[threads], 2) for threads in THREAD_COUNTS},
    )

    # Shape: no super-linear artefacts, baseline is exactly 1, and the
    # wedge-heavy U sides gain from parallelism at the paper's thread counts.
    assert speedups[1] == pytest.approx(1.0)
    for threads in THREAD_COUNTS:
        assert speedups[threads] <= threads + 1e-9
    assert max(speedups.values()) > 1.0
