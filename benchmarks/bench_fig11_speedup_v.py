"""Fig. 11: projected parallel speedup of RECEIPT when peeling the V sides.

Same methodology as Fig. 10 (see ``bench_fig10_speedup_u.py``).  The paper's
observation specific to this figure: the wedge-light V sides scale worse
than the U sides because each synchronization round carries less work — the
bench reports both so the comparison is visible, and asserts the direction
for the tracker dataset where the asymmetry is largest.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_DATASETS, get_graph, get_receipt, side_label
from repro.core.stats import build_cost_model

THREAD_COUNTS = (1, 2, 4, 9, 18, 36)
BARRIER_COST = 50.0

SIDE = "V"


def _speedups(result):
    model = build_cost_model(result, barrier_cost=BARRIER_COST)
    return {point.n_threads: point.speedup for point in model.speedup_curve(THREAD_COUNTS)}


@pytest.mark.parametrize("key", BENCH_DATASETS)
def bench_fig11_speedup_v_side(benchmark, report, key):
    result = get_receipt(key, SIDE)
    speedups = benchmark.pedantic(lambda: _speedups(result), rounds=1, iterations=1)

    u_speedups = _speedups(get_receipt(key, "U"))
    report.add_row(
        dataset=side_label(key, SIDE),
        **{f"T{threads}": round(speedups[threads], 2) for threads in THREAD_COUNTS},
        u_side_T36=round(u_speedups[36], 2),
    )

    assert speedups[1] == pytest.approx(1.0)
    for threads in THREAD_COUNTS:
        assert speedups[threads] <= threads + 1e-9

    # Paper shape: wedge-light sides scale no better than their wedge-heavy
    # counterparts at full thread count (checked where the work asymmetry is
    # at least an order of magnitude).
    graph = get_graph(key)
    if graph.total_wedge_work("U") > 10 * graph.total_wedge_work("V"):
        assert speedups[36] <= u_speedups[36] * 1.25
