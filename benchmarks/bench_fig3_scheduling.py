"""Fig. 3: benefit of workload-aware scheduling (WaS) for FD's task queue.

The paper illustrates that sorting the subset queue by decreasing work
(longest-processing-time order) lets dynamic allocation finish much earlier
than arrival order.  This bench reproduces the effect twice:

* on the literal 6-task / 2-thread example of Fig. 3, and
* on the measured per-subset FD workloads of the cached RECEIPT runs,
  comparing the simulated makespan with and without WaS for the paper's
  thread count (36).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_DATASETS, get_receipt, side_label
from repro.core.scheduling import greedy_schedule, lpt_schedule


def bench_fig3_toy_example(benchmark, report):
    """The exact workloads of Fig. 3 (t = 13, 4, 10, 20, 1, 2 on 2 threads)."""
    work = np.array([13, 4, 10, 20, 1, 2], dtype=float)

    def schedules():
        return greedy_schedule(work, 2), lpt_schedule(work, 2)

    original, aware = benchmark.pedantic(schedules, rounds=1, iterations=1)
    assert original.makespan == 33
    assert aware.makespan == 25
    report.add_row(case="fig3-toy", threads=2,
                   original_makespan=original.makespan,
                   workload_aware_makespan=aware.makespan,
                   improvement=round(original.makespan / aware.makespan, 2))


@pytest.mark.parametrize("key", BENCH_DATASETS)
def bench_fig3_fd_schedules(benchmark, report, key):
    """WaS vs arrival order on the measured FD subset workloads.

    The thread count is chosen below the subset count (as in the paper,
    where P = 150 subsets are scheduled on 36 threads); with more threads
    than subsets every task gets its own thread and ordering is irrelevant.
    """
    result = get_receipt(key, "U")
    subset_work = np.array(
        [record.wedges_traversed for record in result.extra["subset_records"]], dtype=float
    )
    n_threads = max(2, subset_work.size // 4)

    def schedules():
        return greedy_schedule(subset_work, n_threads), lpt_schedule(subset_work, n_threads)

    original, aware = benchmark.pedantic(schedules, rounds=1, iterations=1)
    # LPT carries Graham's 4/3 guarantee against the makespan lower bound
    # (arrival order does not); instance-wise the two orders can land within
    # a few percent of each other, so only the guarantee is asserted.
    lower_bound = max(float(subset_work.sum()) / n_threads, float(subset_work.max(initial=0.0)))
    assert aware.makespan <= (4.0 / 3.0) * lower_bound + 1e-6
    report.add_row(
        case=side_label(key, "U"),
        threads=n_threads,
        n_subsets=subset_work.size,
        original_makespan=int(original.makespan),
        workload_aware_makespan=int(aware.makespan),
        improvement=round(original.makespan / max(aware.makespan, 1.0), 2),
        imbalance_with_was=round(aware.imbalance, 2),
    )
