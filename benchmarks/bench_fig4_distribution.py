"""Fig. 4: cumulative tip-number distribution of the Trackers graph (TrU, TrV).

The paper observes that although maximum tip numbers are enormous, the
overwhelming majority of vertices have tiny tip numbers (99.98% of TrU
vertices lie below 0.027% of the maximum).  This bench computes the same
cumulative distribution for the tracker stand-in (and the other datasets'
U sides for context) and asserts the heavy skew.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_DATASETS, get_receipt, side_label
from repro.analysis.distributions import tip_distribution

# The series is reported for the Trackers graph (both sides) like the paper;
# other datasets only contribute a skew summary row.
_TRACKER_KEY = "tr" if "tr" in BENCH_DATASETS else BENCH_DATASETS[-1]


@pytest.mark.parametrize("side", ["U", "V"])
def bench_fig4_tracker_distribution(benchmark, report, side):
    result = get_receipt(_TRACKER_KEY, side)
    distribution = benchmark.pedantic(lambda: tip_distribution(result), rounds=1, iterations=1)

    # Cumulative fraction at logarithmically spaced thresholds — the Fig. 4 series.
    max_tip = max(distribution.max_tip, 1)
    thresholds = np.unique(np.geomspace(1, max_tip, num=12).astype(np.int64))
    series = {int(t): round(distribution.fraction_below(float(t)), 4) for t in thresholds}

    report.add_row(
        dataset=side_label(_TRACKER_KEY, side),
        max_tip=distribution.max_tip,
        p999_tip=round(distribution.percentile_99_9, 1),
        skew_ratio=round(distribution.skew_ratio, 4),
        cumulative_series=series,
    )

    # Shape: the distribution is heavily skewed — at half of the maximum tip
    # number, (nearly) all vertices are already accounted for.
    assert distribution.fraction_below(max_tip / 2) > 0.8
    assert distribution.cumulative_fraction[-1] == pytest.approx(1.0)


@pytest.mark.parametrize("key", BENCH_DATASETS)
def bench_fig4_skew_summary(benchmark, report, key):
    result = get_receipt(key, "U")
    distribution = benchmark.pedantic(lambda: tip_distribution(result), rounds=1, iterations=1)
    report.add_row(
        dataset=side_label(key, "U"),
        max_tip=distribution.max_tip,
        p999_tip=round(distribution.percentile_99_9, 1),
        skew_ratio=round(distribution.skew_ratio, 4),
        cumulative_series="-",
    )
    assert distribution.max_tip >= distribution.percentile_99_9
