"""Fig. 5: RECEIPT execution time as a function of the partition count P.

The paper sweeps P from 50 to 500 and observes a sweet spot around 150:
too few partitions starve FD of parallelism and inflate the induced
subgraphs, too many partitions add CD synchronization rounds.  At laptop
scale the same U-shape appears over a proportionally smaller sweep.
The bench records time, wedges and rounds per P for the wedge-heavy U sides
and asserts the monotone relationship between P and CD rounds.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_DATASETS, get_graph, get_receipt, side_label

#: Scaled-down stand-in for the paper's {50, 150, 250, 350, 450, 550} sweep.
PARTITION_SWEEP = [4, 8, 16, 32, 64]

#: The paper shows the large datasets; sweep a representative subset to keep
#: the harness quick.
SWEEP_DATASETS = [key for key in ("it", "en", "tr") if key in BENCH_DATASETS] or BENCH_DATASETS[:1]


@pytest.mark.parametrize("key", SWEEP_DATASETS)
@pytest.mark.parametrize("n_partitions", PARTITION_SWEEP)
def bench_fig5_partition_sweep(benchmark, report, key, n_partitions):
    get_graph(key)  # materialise outside the measured section

    result = benchmark.pedantic(
        lambda: get_receipt(key, "U", n_partitions=n_partitions), rounds=1, iterations=1
    )
    fd_records = result.extra["subset_records"]
    report.add_row(
        dataset=side_label(key, "U"),
        partitions=n_partitions,
        time_s=round(result.counters.elapsed_seconds, 3),
        cd_rounds=result.counters.synchronization_rounds,
        wedges=result.counters.wedges_traversed,
        n_subsets=len(fd_records),
        fd_wedges=result.phase_counters["fd"].wedges_traversed,
    )

    # Structural expectations: more partitions -> at least as many subsets,
    # and the number of subsets never exceeds P + 1 (the leftover subset).
    assert len(fd_records) <= n_partitions + 1
    assert result.counters.synchronization_rounds >= 1


@pytest.mark.parametrize("key", SWEEP_DATASETS)
def bench_fig5_rounds_grow_with_partitions(benchmark, report, key):
    """CD synchronization rounds increase with P (the cost of a finer split)."""

    def collect():
        return {
            n_partitions: get_receipt(key, "U", n_partitions=n_partitions).counters.synchronization_rounds
            for n_partitions in (PARTITION_SWEEP[0], PARTITION_SWEEP[-1])
        }

    rounds = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert rounds[PARTITION_SWEEP[-1]] >= rounds[PARTITION_SWEEP[0]]
    report.add_row(
        dataset=side_label(key, "U"),
        partitions=f"{PARTITION_SWEEP[0]} vs {PARTITION_SWEEP[-1]}",
        time_s="-",
        cd_rounds=f"{rounds[PARTITION_SWEEP[0]]} -> {rounds[PARTITION_SWEEP[-1]]}",
        wedges="-",
        n_subsets="-",
        fd_wedges="-",
    )
