"""Fig. 6: effect of the HUC and DGM optimizations on wedge traversal.

Three RECEIPT configurations are compared on every dataset side, exactly as
in the paper's ablation:

* ``RECEIPT``   — both optimizations enabled,
* ``RECEIPT-``  — DGM disabled,
* ``RECEIPT--`` — DGM and HUC disabled.

Wedge counts are reported normalised to RECEIPT-- (the paper's y-axis).
The bench also reports the ratio ``r = peel wedges / counting wedges`` of
Sec. 5.2.2, which predicts where HUC pays off (large ``r`` on the U sides).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import DATASET_SIDES, get_baseline, get_graph, get_receipt, side_label

VARIANTS = ("receipt", "receipt-", "receipt--")


@pytest.mark.parametrize("key,side", DATASET_SIDES, ids=[side_label(k, s) for k, s in DATASET_SIDES])
def bench_fig6_wedge_ablation(benchmark, report, key, side):
    graph = get_graph(key)

    def run_variants():
        return {variant: get_receipt(key, side, variant=variant) for variant in VARIANTS}

    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)

    # All variants are exact (Theorem 2 does not depend on the optimizations).
    reference = results["receipt--"].tip_numbers
    for variant in VARIANTS:
        assert np.array_equal(results[variant].tip_numbers, reference), variant

    wedges = {variant: results[variant].counters.wedges_traversed for variant in VARIANTS}
    baseline = max(wedges["receipt--"], 1)
    peel_work = graph.total_wedge_work(side)
    counting_work = graph.counting_wedge_bound()
    r_ratio = peel_work / max(counting_work, 1)

    report.add_row(
        dataset=side_label(key, side),
        r_ratio=round(r_ratio, 1),
        receipt_minus_minus=1.0,
        receipt_minus=round(wedges["receipt-"] / baseline, 3),
        receipt=round(wedges["receipt"] / baseline, 3),
        recounts=results["receipt"].counters.recount_invocations,
        dgm_compactions=results["receipt"].counters.dgm_compactions,
    )

    # Shape: the fully optimised variant never traverses more wedges than the
    # unoptimised one, and DGM can at best halve the traversal (Sec. 5.2.2).
    assert wedges["receipt"] <= wedges["receipt--"]
    assert wedges["receipt-"] <= wedges["receipt--"]
    if results["receipt"].counters.recount_invocations == 0:
        # Without recounting, the only difference between RECEIPT and
        # RECEIPT- is DGM, which removes at most the stale half of each wedge.
        assert wedges["receipt"] >= wedges["receipt-"] / 2 - 1
