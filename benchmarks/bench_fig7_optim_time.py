"""Fig. 7: effect of the HUC and DGM optimizations on execution time.

Companion to Fig. 6: the same three configurations (RECEIPT, RECEIPT-,
RECEIPT--), with execution time normalised to RECEIPT--.  The paper notes
that execution time closely follows wedge traversal; the bench reports both
normalisations side by side so the correlation is visible in the output.
"""

from __future__ import annotations

import pytest

from conftest import DATASET_SIDES, get_receipt, side_label

VARIANTS = ("receipt", "receipt-", "receipt--")


@pytest.mark.parametrize("key,side", DATASET_SIDES, ids=[side_label(k, s) for k, s in DATASET_SIDES])
def bench_fig7_time_ablation(benchmark, report, key, side):
    def run_variants():
        return {variant: get_receipt(key, side, variant=variant) for variant in VARIANTS}

    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)

    times = {variant: results[variant].counters.elapsed_seconds for variant in VARIANTS}
    wedges = {variant: results[variant].counters.wedges_traversed for variant in VARIANTS}
    time_baseline = max(times["receipt--"], 1e-9)
    wedge_baseline = max(wedges["receipt--"], 1)

    report.add_row(
        dataset=side_label(key, side),
        receipt_minus_minus_s=round(times["receipt--"], 3),
        receipt_minus_norm=round(times["receipt-"] / time_baseline, 3),
        receipt_norm=round(times["receipt"] / time_baseline, 3),
        receipt_minus_wedge_norm=round(wedges["receipt-"] / wedge_baseline, 3),
        receipt_wedge_norm=round(wedges["receipt"] / wedge_baseline, 3),
    )

    # Execution times are positive and the optimised variants never traverse
    # more wedges; wall-clock ratios are reported but not asserted because
    # Python constant factors dominate at this scale.
    assert all(value > 0 for value in times.values())
    assert wedges["receipt"] <= wedges["receipt--"]
