"""Fig. 8: breakdown of traversed wedges across RECEIPT's phases.

For every dataset side, the share of wedge traversal spent in per-vertex
counting (pvBcnt), coarse-grained decomposition (CD) and fine-grained
decomposition (FD).  The paper's observations, asserted here:

* CD accounts for the majority of the traversal, and
* FD stays below ~15% of the total (we allow a slightly looser bound at
  laptop scale, where induced subgraphs are relatively larger).
"""

from __future__ import annotations

import pytest

from conftest import DATASET_SIDES, get_receipt, side_label
from repro.core.stats import wedge_breakdown


@pytest.mark.parametrize("key,side", DATASET_SIDES, ids=[side_label(k, s) for k, s in DATASET_SIDES])
def bench_fig8_wedge_breakdown(benchmark, report, key, side):
    result = get_receipt(key, side)
    breakdown = benchmark.pedantic(lambda: wedge_breakdown(result), rounds=1, iterations=1)

    report.add_row(
        dataset=side_label(key, side),
        pvBcnt_pct=round(100 * breakdown.fraction["pvBcnt"], 1),
        cd_pct=round(100 * breakdown.fraction["cd"], 1),
        fd_pct=round(100 * breakdown.fraction["fd"], 1),
        total_wedges=int(breakdown.total),
    )

    assert sum(breakdown.fraction.values()) == pytest.approx(1.0)
    # CD dominates the wedge traversal on every dataset (paper: > 50%).
    assert breakdown.fraction["cd"] >= max(breakdown.fraction["fd"], 0.0)
    # FD's share stays small (paper: < 15%; laptop-scale bound: < 35%).
    assert breakdown.fraction["fd"] < 0.35
