"""Fig. 9: breakdown of execution time across RECEIPT's phases.

Companion to Fig. 8 with wall-clock time instead of wedges.  The paper's
observations: CD contributes the largest share (> 50%) on every dataset,
pvBcnt's share is significant on the wedge-light V sides, and FD's share of
time can exceed its share of wedges (heap updates, subgraph construction)
while staying below ~25%.
"""

from __future__ import annotations

import pytest

from conftest import DATASET_SIDES, get_receipt, side_label
from repro.core.stats import time_breakdown, wedge_breakdown


@pytest.mark.parametrize("key,side", DATASET_SIDES, ids=[side_label(k, s) for k, s in DATASET_SIDES])
def bench_fig9_time_breakdown(benchmark, report, key, side):
    result = get_receipt(key, side)
    breakdown = benchmark.pedantic(lambda: time_breakdown(result), rounds=1, iterations=1)
    wedges = wedge_breakdown(result)

    report.add_row(
        dataset=side_label(key, side),
        pvBcnt_pct=round(100 * breakdown.fraction["pvBcnt"], 1),
        cd_pct=round(100 * breakdown.fraction["cd"], 1),
        fd_pct=round(100 * breakdown.fraction["fd"], 1),
        total_time_s=round(breakdown.total, 3),
        fd_wedge_pct=round(100 * wedges.fraction["fd"], 1),
    )

    assert sum(breakdown.fraction.values()) == pytest.approx(1.0)
    assert all(fraction >= 0.0 for fraction in breakdown.fraction.values())
    # The paper's ">50% in CD" observation concerns multi-minute runs; these
    # stand-in runs finish in fractions of a second where interpreter and
    # allocator noise can swamp individual phase timings, so the time split
    # is reported (and compared against the wedge split) without asserting an
    # ordering.  Fig. 8 asserts the work-based counterpart deterministically.
    assert breakdown.total > 0.0
