"""Wedge-pipeline kernel benchmark: arena + int32 + budgeted chunking vs legacy.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]

For each selected dataset stand-in it runs the RECEIPT CD phase through the
memory-bounded wedge pipeline in three configurations:

* ``legacy``   — ``WedgeWorkspace.legacy()``: fresh int64 allocations per
  kernel call, no chunking; the pre-arena cost profile the speedup gate is
  measured against.
* ``pipeline`` — the default workspace: reusable scratch arena, int32
  id/key narrowing, default wedge budget.
* ``budgeted`` — an explicit budget of a quarter of the unbudgeted run's
  peak chunk, demonstrating that chunking caps peak scratch.

The CD phase runs with DGM and HUC disabled: this is the pure batched
wedge workload (the paper's RECEIPT-- ablation), where whole peel
iterations materialise at once.  With DGM enabled, compaction splits
already cap every chunk at ~``m`` wedges, so the memory-hierarchy effects
the pipeline targets would be invisible; the DGM regime is covered by
``bench_peeling_smoke.py`` and its own (raised) gate.

Every configuration must agree **bit-for-bit** on wedge traversal, support
updates, subset contents and range bounds, and a full RECEIPT
decomposition must produce identical tip numbers on the legacy and default
pipelines — narrowing and chunking are pure memory policy.  Gates (full
mode, hard-failing):

* >= 1.3x CD wall-time speedup of ``pipeline`` over ``legacy`` on the
  wedge-heaviest dataset;
* budgeted peak scratch <= 0.5x the unbudgeted (``pipeline`` with no
  budget) peak on the wedge-heaviest dataset.

``--quick`` (the CI smoke mode) benchmarks two small stand-ins at reduced
scale: exactness and the peak-scratch ratio are still gated (both are
deterministic), while the speedup is gated only against regression (1.0x)
— tiny graphs are dispatch-overhead-bound, so the full-mode 1.3x floor
would measure noise, not the kernels.  Results land in
``BENCH_kernels.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.core.receipt import receipt_decomposition
from repro.datasets.registry import dataset_names, load_dataset
from repro.kernels.workspace import WedgeWorkspace, resolve_wedge_budget

REPO_ROOT = Path(__file__).resolve().parent.parent
QUICK_DATASETS = ("de", "tr")
SPEEDUP_FLOOR = 1.3
QUICK_SPEEDUP_FLOOR = 1.0
PEAK_RATIO_CEILING = 0.5


def make_workspace(mode: str, budget: int | None) -> WedgeWorkspace:
    if mode == "legacy":
        return WedgeWorkspace.legacy()
    if mode == "pipeline":
        return WedgeWorkspace()
    if mode == "unbudgeted":
        return WedgeWorkspace(wedge_budget=None)
    if mode == "budgeted":
        return WedgeWorkspace(wedge_budget=budget)
    raise ValueError(mode)


def run_cd(graph, initial_supports, *, mode: str, n_partitions: int,
           rounds: int, budget: int | None = None) -> dict:
    elapsed = None
    for _ in range(rounds):
        workspace = make_workspace(mode, budget)
        start = time.perf_counter()
        result = coarse_grained_decomposition(
            graph,
            initial_supports,
            n_partitions,
            enable_huc=False,   # isolate the wedge pipeline: no re-count shortcut
            enable_dgm=False,   # pure batched peel; see the module docstring
            workspace=workspace,
        )
        lap = time.perf_counter() - start
        elapsed = lap if elapsed is None else min(elapsed, lap)
    return {
        "mode": mode,
        "cd_seconds": elapsed,
        "peak_scratch_bytes": int(workspace.peak_scratch_bytes),
        "max_iteration_wedges": max(
            (record["wedges_traversed"] for record in result.iteration_records),
            default=0,
        ),
        "wedges_traversed": int(result.counters.wedges_traversed),
        "support_updates": int(result.counters.support_updates),
        "synchronization_rounds": int(result.counters.synchronization_rounds),
        "subset_sizes": [int(subset.size) for subset in result.subsets],
        "bounds": [int(bound) for bound in result.bounds],
    }


def bench_dataset(key: str, *, scale: float, n_partitions: int, rounds: int) -> dict:
    graph = load_dataset(key, scale=scale)
    counts = count_per_vertex_priority(graph)

    runs = {
        mode: run_cd(graph, counts.u_counts, mode=mode,
                     n_partitions=n_partitions, rounds=rounds)
        for mode in ("legacy", "pipeline", "unbudgeted")
    }
    # The budgeted run demonstrates the cap: a sixth of the heaviest
    # iteration's wedge count forces several chunks per iteration on any
    # dataset, so the peak-ratio gate is deterministic at every scale.
    unbudgeted_peak = runs["unbudgeted"]["peak_scratch_bytes"]
    gate_budget = max(1024, runs["unbudgeted"]["max_iteration_wedges"] // 6)
    runs["budgeted"] = run_cd(graph, counts.u_counts, mode="budgeted",
                              n_partitions=n_partitions, rounds=1,
                              budget=gate_budget)

    for counter in ("wedges_traversed", "support_updates", "synchronization_rounds",
                    "subset_sizes", "bounds"):
        values = {mode: run[counter] for mode, run in runs.items()}
        if any(value != runs["legacy"][counter] for value in values.values()):
            raise AssertionError(
                f"{key}: wedge-pipeline configurations disagree on {counter}: {values}"
            )

    speedup = runs["legacy"]["cd_seconds"] / max(runs["pipeline"]["cd_seconds"], 1e-9)
    peak_ratio = runs["budgeted"]["peak_scratch_bytes"] / max(unbudgeted_peak, 1)
    return {
        "dataset": key,
        "n_u": graph.n_u,
        "n_v": graph.n_v,
        "n_edges": graph.n_edges,
        "wedges_traversed": runs["legacy"]["wedges_traversed"],
        "legacy_cd_seconds": round(runs["legacy"]["cd_seconds"], 4),
        "pipeline_cd_seconds": round(runs["pipeline"]["cd_seconds"], 4),
        "cd_speedup": round(speedup, 2),
        "legacy_peak_scratch_bytes": runs["legacy"]["peak_scratch_bytes"],
        "pipeline_peak_scratch_bytes": runs["pipeline"]["peak_scratch_bytes"],
        "unbudgeted_peak_scratch_bytes": unbudgeted_peak,
        "budgeted_peak_scratch_bytes": runs["budgeted"]["peak_scratch_bytes"],
        "gate_budget_wedges": int(gate_budget),
        "budgeted_peak_ratio": round(peak_ratio, 4),
    }


def check_tip_numbers(key: str, *, scale: float, n_partitions: int) -> None:
    """Full RECEIPT runs on the legacy vs default pipeline must agree exactly."""
    graph = load_dataset(key, scale=scale)
    default_run = receipt_decomposition(
        graph, "U", n_partitions=n_partitions, counting_algorithm="vertex-priority"
    )
    # wedge_budget=1 exercises maximal chunking end-to-end (CD + FD + count).
    chunked_run = receipt_decomposition(
        graph, "U", n_partitions=n_partitions, counting_algorithm="vertex-priority",
        wedge_budget=1,
    )
    if not np.array_equal(default_run.tip_numbers, chunked_run.tip_numbers):
        raise AssertionError(f"{key}: tip numbers differ between wedge budgets")
    for counter in ("wedges_traversed", "support_updates", "vertices_peeled"):
        if getattr(default_run.counters, counter) != getattr(chunked_run.counters, counter):
            raise AssertionError(f"{key}: counter {counter} differs between wedge budgets")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scale + two datasets (CI smoke mode)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the dataset scale multiplier")
    parser.add_argument("--partitions", type=int, default=12,
                        help="RECEIPT partitions P for the CD phase")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_kernels.json"))
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.15 if args.quick else 0.75)
    keys = list(QUICK_DATASETS) if args.quick else dataset_names()

    rows = []
    for key in keys:
        row = bench_dataset(key, scale=scale, n_partitions=args.partitions,
                            rounds=1 if args.quick else 3)
        rows.append(row)
        print(
            f"{key}: |E|={row['n_edges']:,} wedges={row['wedges_traversed']:,} "
            f"legacy={row['legacy_cd_seconds']}s pipeline={row['pipeline_cd_seconds']}s "
            f"speedup={row['cd_speedup']}x peak-ratio={row['budgeted_peak_ratio']}"
        )

    # End-to-end exactness: full RECEIPT tip numbers across budgets.
    tips_key = QUICK_DATASETS[0] if args.quick else "it"
    check_tip_numbers(tips_key, scale=0.1, n_partitions=6)
    print(f"tip numbers bit-identical across wedge budgets on {tips_key!r}")

    largest = max(rows, key=lambda row: row["wedges_traversed"])
    report = {
        "benchmark": "wedge_pipeline_kernels",
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "partitions": args.partitions,
        "default_wedge_budget": resolve_wedge_budget(None),
        "datasets": rows,
        "largest_dataset": largest["dataset"],
        "largest_speedup": largest["cd_speedup"],
        "largest_peak_ratio": largest["budgeted_peak_ratio"],
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    failures = []
    floor = QUICK_SPEEDUP_FLOOR if args.quick else SPEEDUP_FLOOR
    if largest["cd_speedup"] < floor:
        failures.append(
            f"CD speedup on {largest['dataset']} is {largest['cd_speedup']}x, "
            f"below the {floor}x floor"
        )
    if largest["budgeted_peak_ratio"] > PEAK_RATIO_CEILING:
        failures.append(
            f"budgeted peak scratch on {largest['dataset']} is "
            f"{largest['budgeted_peak_ratio']}x the unbudgeted peak, above the "
            f"{PEAK_RATIO_CEILING}x ceiling"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: configurations agree exactly; pipeline is {largest['cd_speedup']}x "
        f"faster than legacy and the budgeted peak is {largest['budgeted_peak_ratio']}x "
        f"the unbudgeted peak on {largest['dataset']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
