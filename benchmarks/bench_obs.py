"""Observability benchmark: tracer overhead, trace fidelity, /metrics coverage.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]

Three checks, all hard-failing:

1. **Disabled-tracer overhead <= 3%** on the batched CD kernel.  Every
   hot-loop instrumentation site costs one ``tracer.span()`` call that
   returns a shared no-op singleton; the benchmark measures that
   primitive's per-call cost directly (best of several million-iteration
   rounds), multiplies by the number of span sites a CD run actually
   executes, and gates the product against the measured CD wall time.
   This is deterministic where an A/B wall-clock diff would gate on
   scheduler noise; the A/B numbers (no-op re-run jitter and recording
   overhead) are reported alongside for context.

2. **Trace fidelity <= 5%**: in a traced RECEIPT decomposition the
   pvBcnt + CD + FD phase spans must account for at least 95% of the
   root span's wall-clock — the phase breakdown the paper's evaluation
   tables are built on cannot silently lose time.

3. **/metrics coverage**: both transports are started on a freshly built
   artifact, driven with point/batch/top-k load, and scraped.  Every
   metric family in ``DOCUMENTED_METRICS`` must be present in both
   scrapes, every sample line must be well-formed exposition text, and
   the request-latency histograms must actually be populated.

4. **Sampling-profiler overhead <= 5%** on the batched CD kernel.  Same
   deterministic style as check 1: the per-sample cost (one
   ``sys._current_frames`` snapshot + stack walk, the only work the
   profiled process's GIL ever pays for) is timed directly on the real
   ``SamplingProfiler._sample_once`` code path and gated against the
   sampling interval — the duty cycle IS the steady-state overhead.  An
   A/B CD wall-clock pair (profiler attached vs not) is reported for
   context but not gated.

5. **Diagnostics byte-identity**: one shared ``TipService`` is mounted
   behind BOTH transports; after priming ``/slo``, ``/debug/memory`` and
   ``/debug/profile`` once, the cached variants (``?cached=1`` /
   ``?last=1``) must answer byte-identical JSON through either front end.

Results land in ``BENCH_obs.json`` at the repository root; CI follows up
with ``repro bench-history check`` so a slow drift in any headline metric
fails the build even while every absolute ceiling still passes.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.core.receipt import receipt_decomposition
from repro.datasets.registry import load_dataset
from repro.obs.profile import DEFAULT_INTERVAL_SECONDS, SamplingProfiler
from repro.obs.trace import NOOP_TRACER, Tracer, use_tracer
from repro.service.aserver import start_server_thread
from repro.service.build import build_index_artifact
from repro.service.server import DOCUMENTED_METRICS, TipService, create_server

REPO_ROOT = Path(__file__).resolve().parent.parent
NOOP_OVERHEAD_CEILING_PCT = 3.0
PHASE_FIDELITY_CEILING_PCT = 5.0
PROFILER_OVERHEAD_CEILING_PCT = 5.0

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.e]+)$"
)


# ----------------------------------------------------------------------
# 1. Disabled-tracer overhead on the batched CD kernel
# ----------------------------------------------------------------------
def time_noop_span(iterations: int = 1_000_000, rounds: int = 3) -> float:
    """Best-of-N seconds per ``span()`` + enter/exit on a no-op tracer."""
    tracer = NOOP_TRACER
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            with tracer.span("cd.peel_iteration"):
                pass
        lap = time.perf_counter() - start
        best = lap if best is None else min(best, lap)
    return best / iterations


def run_cd(graph, supports, n_partitions: int, *, tracer=None, rounds: int = 3):
    best, result = None, None
    for _ in range(rounds):
        start = time.perf_counter()
        if tracer is None:
            result = coarse_grained_decomposition(graph, supports, n_partitions)
        else:
            tracer.clear()
            with use_tracer(tracer):
                result = coarse_grained_decomposition(graph, supports, n_partitions)
        lap = time.perf_counter() - start
        best = lap if best is None else min(best, lap)
    return best, result


def bench_tracer_overhead(scale: float, n_partitions: int, rounds: int) -> dict:
    graph = load_dataset("it", scale=scale)
    counts = count_per_vertex_priority(graph)

    noop_a, result = run_cd(graph, counts.u_counts, n_partitions, rounds=rounds)
    noop_b, _ = run_cd(graph, counts.u_counts, n_partitions, rounds=rounds)
    recording, _ = run_cd(graph, counts.u_counts, n_partitions,
                          tracer=Tracer(), rounds=rounds)

    # Span sites one CD run executes under the no-op tracer: the cd/
    # pvBcnt-style timed() phase spans are O(1); the per-iteration span
    # is the hot one.
    span_calls = int(result.counters.synchronization_rounds) + 2
    per_call = time_noop_span()
    noop_overhead_pct = 100.0 * (span_calls * per_call) / max(noop_a, 1e-9)
    return {
        "dataset": "it",
        "scale": scale,
        "cd_noop_seconds": round(noop_a, 4),
        "cd_noop_rerun_seconds": round(noop_b, 4),
        "cd_recording_seconds": round(recording, 4),
        "recording_overhead_pct": round(100.0 * (recording / noop_a - 1.0), 2),
        "noop_span_ns": round(per_call * 1e9, 1),
        "span_calls_per_run": span_calls,
        "noop_overhead_pct": round(noop_overhead_pct, 4),
    }


# ----------------------------------------------------------------------
# 4. Sampling-profiler overhead on the batched CD kernel
# ----------------------------------------------------------------------
def time_profile_sample(samples: int = 500, rounds: int = 3) -> float:
    """Best-of-N seconds per profiler sample on the live thread census.

    Times the actual ``SamplingProfiler._sample_once`` body — the GIL
    hand-off of ``sys._current_frames`` plus the per-thread stack walk
    and fold — which is the only cost the profiled code ever pays.
    """
    import threading

    profiler = SamplingProfiler()
    own_ident = threading.get_ident()
    names: dict = {}
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(samples):
            profiler._sample_once(own_ident, names)
        lap = time.perf_counter() - start
        best = lap if best is None else min(best, lap)
    return best / samples


def bench_profiler_overhead(scale: float, n_partitions: int, rounds: int) -> dict:
    graph = load_dataset("it", scale=scale)
    counts = count_per_vertex_priority(graph)

    # A/B context: the same CD run bare and with an attached profiler.
    bare, _ = run_cd(graph, counts.u_counts, n_partitions, rounds=rounds)
    profiler = SamplingProfiler(interval=DEFAULT_INTERVAL_SECONDS)
    profiler.start()
    try:
        profiled, _ = run_cd(graph, counts.u_counts, n_partitions, rounds=rounds)
    finally:
        profiler.stop()
    payload = profiler.payload(top=5)

    # Deterministic gate: per-sample cost over the sampling interval is
    # the profiler's steady-state duty cycle on the profiled process.
    per_sample = time_profile_sample()
    duty_cycle_pct = 100.0 * per_sample / DEFAULT_INTERVAL_SECONDS
    return {
        "dataset": "it",
        "scale": scale,
        "interval_seconds": DEFAULT_INTERVAL_SECONDS,
        "sample_cost_us": round(per_sample * 1e6, 2),
        "profiler_overhead_pct": round(duty_cycle_pct, 4),
        "cd_bare_seconds": round(bare, 4),
        "cd_profiled_seconds": round(profiled, 4),
        "ab_overhead_pct": round(100.0 * (profiled / bare - 1.0), 2),
        "profile_samples": payload["samples"],
        "profile_stack_samples": payload["stack_samples"],
    }


# ----------------------------------------------------------------------
# 2. Trace fidelity: phase spans vs wall clock
# ----------------------------------------------------------------------
def bench_trace_fidelity(scale: float, n_partitions: int) -> dict:
    graph = load_dataset("it", scale=scale)
    tracer = Tracer()
    with use_tracer(tracer):
        result = receipt_decomposition(graph, "U", n_partitions=n_partitions)
    spans = tracer.export()
    root = next(span for span in spans if span["name"] == "receipt")
    phases = {
        span["name"]: span["dur"]
        for span in spans
        if span["parent"] == root["id"] and span["name"] in ("pvBcnt", "cd", "fd")
    }
    phase_sum = sum(phases.values())
    gap_pct = 100.0 * abs(root["dur"] - phase_sum) / max(root["dur"], 1e-9)
    return {
        "dataset": "it",
        "scale": scale,
        "n_spans": len(spans),
        "wall_seconds": round(root["dur"], 4),
        "phase_seconds": {name: round(dur, 4) for name, dur in phases.items()},
        "phase_sum_seconds": round(phase_sum, 4),
        "counters_elapsed_seconds": round(result.counters.elapsed_seconds, 4),
        "phase_gap_pct": round(gap_pct, 3),
    }


# ----------------------------------------------------------------------
# 3. /metrics coverage on both transports under load
# ----------------------------------------------------------------------
def _drive_and_scrape(base_url: str, n_requests: int) -> str:
    for vertex in range(n_requests):
        urllib.request.urlopen(f"{base_url}/theta?vertex={vertex % 20}",
                               timeout=10).read()
    urllib.request.urlopen(f"{base_url}/theta/batch?vertices=0,1,2,3",
                           timeout=10).read()
    urllib.request.urlopen(f"{base_url}/top-k?k=5", timeout=10).read()
    urllib.request.urlopen(f"{base_url}/stats", timeout=10).read()
    with urllib.request.urlopen(f"{base_url}/metrics", timeout=10) as response:
        content_type = response.headers["Content-Type"]
        if not content_type.startswith("text/plain"):
            raise AssertionError(f"/metrics Content-Type is {content_type!r}")
        return response.read().decode("utf-8")


def _check_scrape(transport: str, text: str, n_requests: int) -> dict:
    missing = [name for name in DOCUMENTED_METRICS
               if f"# TYPE {name} " not in text]
    if missing:
        raise AssertionError(f"{transport}: metrics missing from scrape: {missing}")
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        if not _SAMPLE_RE.match(line):
            raise AssertionError(f"{transport}: malformed exposition line {line!r}")
        key, value = line.rsplit(" ", 1)
        samples[key] = value
    count_key = (f'repro_http_request_seconds_count'
                 f'{{transport="{transport}",route="/theta"}}')
    observed = int(float(samples.get(count_key, "0")))
    if observed < n_requests:
        raise AssertionError(
            f"{transport}: latency histogram saw {observed} /theta requests, "
            f"expected >= {n_requests}"
        )
    return {
        "transport": transport,
        "families": sum(1 for line in text.splitlines()
                        if line.startswith("# TYPE ")),
        "sample_lines": len(samples),
        "theta_latency_observations": observed,
    }


def bench_metrics_endpoints(artifact_dir: Path, n_requests: int) -> list:
    rows = []
    server = create_server([artifact_dir], port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[0], server.server_address[1]
        text = _drive_and_scrape(f"http://{host}:{port}", n_requests)
        rows.append(_check_scrape("thread", text, n_requests))
    finally:
        server.shutdown()
        server.server_close()

    handle = start_server_thread([artifact_dir])
    try:
        text = _drive_and_scrape(handle.base_url, n_requests)
        row = _check_scrape("async", text, n_requests)
        coalesced = int(float(
            dict(line.rsplit(" ", 1) for line in text.splitlines()
                 if line.startswith("repro_coalesce_batch_size_count"))
            ["repro_coalesce_batch_size_count"]))
        if coalesced < n_requests:
            raise AssertionError(
                f"async: coalescer histogram saw {coalesced} requests, "
                f"expected >= {n_requests}")
        row["coalesced_requests"] = coalesced
        rows.append(row)
    finally:
        handle.stop()
    return rows


# ----------------------------------------------------------------------
# 5. Diagnostics byte-identity across transports
# ----------------------------------------------------------------------
def _get_bytes(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


def bench_diagnostics_parity(artifact_dir: Path) -> dict:
    """One shared TipService behind both transports: cached diagnostics
    (``/slo?cached=1``, ``/debug/memory?cached=1``, ``/debug/profile?last=1``)
    must answer byte-identical JSON through either front end."""
    service = TipService([artifact_dir])
    server = create_server([artifact_dir], port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    handle = start_server_thread([artifact_dir], service=service)
    try:
        host, port = server.server_address[0], server.server_address[1]
        threaded = f"http://{host}:{port}"
        # Prime each diagnostic once; the stored payloads then serve both
        # transports.
        _get_bytes(f"{threaded}/slo")
        _get_bytes(f"{threaded}/debug/memory")
        _get_bytes(f"{threaded}/debug/profile?seconds=0.2&interval_ms=2")
        rows = {}
        for route in ("/slo?cached=1", "/debug/memory?cached=1",
                      "/debug/profile?last=1"):
            body_thread = _get_bytes(threaded + route)
            body_async = _get_bytes(handle.base_url + route)
            if body_thread != body_async:
                raise AssertionError(
                    f"diagnostic {route} differs across transports "
                    f"({len(body_thread)} vs {len(body_async)} bytes)")
            rows[route] = {"bytes": len(body_thread), "identical": True}
        return rows
    finally:
        handle.stop()
        server.shutdown()
        server.server_close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller scale + fewer rounds (CI smoke mode)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_obs.json"))
    args = parser.parse_args(argv)

    scale = 0.15 if args.quick else 0.5
    rounds = 2 if args.quick else 5
    n_requests = 50 if args.quick else 200

    overhead = bench_tracer_overhead(scale, n_partitions=12, rounds=rounds)
    print(
        f"tracer overhead: cd={overhead['cd_noop_seconds']}s "
        f"(rerun {overhead['cd_noop_rerun_seconds']}s, "
        f"recording {overhead['cd_recording_seconds']}s), "
        f"noop span {overhead['noop_span_ns']}ns x "
        f"{overhead['span_calls_per_run']} sites = "
        f"{overhead['noop_overhead_pct']}% of CD wall time"
    )

    profiler = bench_profiler_overhead(scale, n_partitions=12, rounds=rounds)
    print(
        f"profiler overhead: sample={profiler['sample_cost_us']}us / "
        f"{profiler['interval_seconds'] * 1000:.0f}ms interval = "
        f"{profiler['profiler_overhead_pct']}% duty cycle "
        f"(A/B: bare {profiler['cd_bare_seconds']}s vs profiled "
        f"{profiler['cd_profiled_seconds']}s, "
        f"{profiler['profile_stack_samples']} stack samples)"
    )

    fidelity = bench_trace_fidelity(scale, n_partitions=12)
    print(
        f"trace fidelity: wall={fidelity['wall_seconds']}s "
        f"phases={fidelity['phase_sum_seconds']}s "
        f"gap={fidelity['phase_gap_pct']}% ({fidelity['n_spans']} spans)"
    )

    graph = load_dataset("de", scale=scale)
    with tempfile.TemporaryDirectory(prefix="obs_bench_") as scratch:
        artifact_dir = Path(scratch) / "obs_bench.tipidx"
        build_index_artifact(graph, artifact_dir, n_partitions=8, overwrite=True)
        endpoints = bench_metrics_endpoints(artifact_dir, n_requests)
        diagnostics = bench_diagnostics_parity(artifact_dir)
    for row in endpoints:
        print(
            f"{row['transport']}: {row['families']} families, "
            f"{row['sample_lines']} samples, "
            f"{row['theta_latency_observations']} /theta latencies observed"
        )
    for route, row in diagnostics.items():
        print(f"diagnostics parity: {route} identical across transports "
              f"({row['bytes']} bytes)")

    report = {
        "benchmark": "observability",
        "mode": "quick" if args.quick else "full",
        "gates": {
            "noop_overhead_ceiling_pct": NOOP_OVERHEAD_CEILING_PCT,
            "phase_fidelity_ceiling_pct": PHASE_FIDELITY_CEILING_PCT,
            "profiler_overhead_ceiling_pct": PROFILER_OVERHEAD_CEILING_PCT,
            "documented_metrics": len(DOCUMENTED_METRICS),
        },
        "tracer_overhead": overhead,
        "profiler_overhead": profiler,
        "trace_fidelity": fidelity,
        "metrics_endpoints": endpoints,
        "diagnostics_identity": diagnostics,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    failures = []
    if overhead["noop_overhead_pct"] > NOOP_OVERHEAD_CEILING_PCT:
        failures.append(
            f"disabled-tracer overhead is {overhead['noop_overhead_pct']}% of CD "
            f"wall time, above the {NOOP_OVERHEAD_CEILING_PCT}% ceiling"
        )
    if profiler["profiler_overhead_pct"] > PROFILER_OVERHEAD_CEILING_PCT:
        failures.append(
            f"sampling-profiler duty cycle is "
            f"{profiler['profiler_overhead_pct']}%, above the "
            f"{PROFILER_OVERHEAD_CEILING_PCT}% ceiling"
        )
    if fidelity["phase_gap_pct"] > PHASE_FIDELITY_CEILING_PCT:
        failures.append(
            f"phase spans account for all but {fidelity['phase_gap_pct']}% of the "
            f"traced wall-clock, above the {PHASE_FIDELITY_CEILING_PCT}% ceiling"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: disabled tracer costs {overhead['noop_overhead_pct']}% of CD, "
        f"the sampling profiler's duty cycle is "
        f"{profiler['profiler_overhead_pct']}%, phase spans cover "
        f"{round(100 - fidelity['phase_gap_pct'], 2)}% of the traced run, both "
        f"transports expose all {len(DOCUMENTED_METRICS)} documented metrics, "
        f"and cached diagnostics are byte-identical across transports"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
