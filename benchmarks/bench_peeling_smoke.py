"""Peel-kernel smoke benchmark: batched vs reference CD phase.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_peeling_smoke.py [--quick]

For each selected dataset stand-in it runs the RECEIPT CD phase twice —
once with the vectorized batched kernel, once with the per-vertex reference
loop — verifies that wedge traversal, support updates and subset contents
agree exactly, and records wall time for both.  Results (wall time + wedges
traversed per dataset and kernel, plus the speedup) are written to
``BENCH_peeling.json`` at the repository root so successive CI runs chart
the performance trajectory of the peeling hot path.

``--quick`` benchmarks the two smallest stand-ins at a reduced scale (the
CI smoke job); the default covers every registry dataset at the harness's
usual 0.4 scale.  The script exits non-zero if the kernels disagree on any
counter, or — in full mode, where batches are large enough for the
per-vertex interpreter overhead to dominate the reference — if the batched
kernel fails to deliver a >= 3.5x CD-phase speedup on the largest
benchmarked dataset (raised from 3x once the wedge pipeline moved
allocations off the hot path; see ``bench_kernels.py`` for the dedicated
memory-policy gates).  Quick mode records the speedup without gating on it
(tiny graphs are fixed-overhead-bound on both paths).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.datasets.registry import dataset_names, load_dataset
from repro.kernels.workspace import WedgeWorkspace

REPO_ROOT = Path(__file__).resolve().parent.parent
QUICK_DATASETS = ("it", "de")
SPEEDUP_FLOOR = 3.5


def run_cd(graph, initial_supports, *, kernel: str, n_partitions: int,
           rounds: int = 1) -> dict:
    elapsed = None
    for _ in range(rounds):
        workspace = WedgeWorkspace()  # fresh arena per run: exact peak accounting
        start = time.perf_counter()
        result = coarse_grained_decomposition(
            graph,
            initial_supports,
            n_partitions,
            enable_huc=False,  # isolate the peel kernel: no re-count shortcuts
            enable_dgm=True,
            peel_kernel=kernel,
            workspace=workspace,
        )
        lap = time.perf_counter() - start
        elapsed = lap if elapsed is None else min(elapsed, lap)
    return {
        "kernel": kernel,
        "cd_seconds": elapsed,
        "peak_scratch_bytes": int(result.counters.peak_scratch_bytes),
        "wedges_traversed": int(result.counters.wedges_traversed),
        "support_updates": int(result.counters.support_updates),
        "synchronization_rounds": int(result.counters.synchronization_rounds),
        "subset_sizes": [int(subset.size) for subset in result.subsets],
        "bounds": [int(bound) for bound in result.bounds],
    }


def bench_dataset(key: str, *, scale: float, n_partitions: int, rounds: int) -> dict:
    graph = load_dataset(key, scale=scale)
    counts = count_per_vertex_priority(graph)
    runs = {
        kernel: run_cd(graph, counts.u_counts, kernel=kernel,
                       n_partitions=n_partitions, rounds=rounds)
        for kernel in ("batched", "reference")
    }

    for counter in ("wedges_traversed", "support_updates", "synchronization_rounds",
                    "subset_sizes", "bounds"):
        if runs["batched"][counter] != runs["reference"][counter]:
            raise AssertionError(
                f"{key}: batched and reference kernels disagree on {counter}: "
                f"{runs['batched'][counter]} != {runs['reference'][counter]}"
            )

    speedup = runs["reference"]["cd_seconds"] / max(runs["batched"]["cd_seconds"], 1e-9)
    return {
        "dataset": key,
        "n_u": graph.n_u,
        "n_v": graph.n_v,
        "n_edges": graph.n_edges,
        "wedges_traversed": runs["batched"]["wedges_traversed"],
        "batched_cd_seconds": round(runs["batched"]["cd_seconds"], 4),
        "reference_cd_seconds": round(runs["reference"]["cd_seconds"], 4),
        "cd_speedup": round(speedup, 2),
        "batched_peak_scratch_bytes": runs["batched"]["peak_scratch_bytes"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scale + two datasets (CI smoke mode)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the dataset scale multiplier")
    parser.add_argument("--partitions", type=int, default=12,
                        help="RECEIPT partitions P for the CD phase (a scaled-down "
                             "stand-in for the paper's 150, sized to the bench graphs)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_peeling.json"))
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.15 if args.quick else 0.4)
    keys = list(QUICK_DATASETS) if args.quick else dataset_names()

    rows = []
    for key in keys:
        # Best-of-3 wall times in full mode so single-run jitter cannot
        # straddle the speedup floor; quick mode times one round.
        row = bench_dataset(key, scale=scale, n_partitions=args.partitions,
                            rounds=1 if args.quick else 3)
        rows.append(row)
        print(
            f"{key}: |E|={row['n_edges']:,} wedges={row['wedges_traversed']:,} "
            f"batched={row['batched_cd_seconds']}s reference={row['reference_cd_seconds']}s "
            f"speedup={row['cd_speedup']}x"
        )

    # "Largest" means the heaviest CD workload — most wedges traversed, the
    # paper's work unit — not most edges, so the gate cannot be satisfied by
    # a dataset the kernel barely sweats on.
    largest = max(rows, key=lambda row: row["wedges_traversed"])
    report = {
        "benchmark": "cd_peel_kernel",
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "partitions": args.partitions,
        "datasets": rows,
        "largest_dataset": largest["dataset"],
        "largest_speedup": largest["cd_speedup"],
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if not args.quick and largest["cd_speedup"] < SPEEDUP_FLOOR:
        print(
            f"FAIL: CD speedup on largest dataset ({largest['dataset']}) is "
            f"{largest['cd_speedup']}x, below the {SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: kernels agree exactly; batched kernel is {largest['cd_speedup']}x "
        f"faster on the largest dataset ({largest['dataset']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
