"""FD scaling benchmark: multiprocess task fan-out vs serial execution.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_scaling.py [--quick] [--workers 1,2,4]

This is the repo's first *measured* Fig. 10-style experiment: it picks the
wedge-heaviest registry stand-in (the paper's work metric), runs counting
and RECEIPT CD once, then re-runs the FD phase — the embarrassingly
parallel part of RECEIPT — through the execution engine:

* ``serial`` backend (reference semantics, also the correctness oracle),
* ``process`` backend at each requested worker count, over the
  shared-memory graph store with a pre-warmed persistent pool, and
* ``thread`` backend at the largest worker count, for the GIL comparison.

Every run is checked for bit-identical tip numbers, ``wedges_traversed``
and ``support_updates`` against the serial oracle — the script exits
non-zero on any mismatch.  Wall-clock times, measured speedups and the LPT
cost-model projection (``repro.distributed.simulate_fd_fanout``) are
written to ``BENCH_scaling.json`` at the repository root.

``--check-speedup`` additionally gates that the largest process fan-out
beats the 1-worker process run; apply it on multicore hardware only —
measured scaling is physically capped by ``os.cpu_count()`` (recorded in
the report), and on a single-core runner every fan-out degenerates to
time-slicing plus dispatch overhead.

Dataset generation honours ``REPRO_DATASET_CACHE`` (see
``repro.datasets.registry``), so repeated CI runs skip regeneration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.butterfly.counting import count_per_vertex_priority
from repro.core.cd import coarse_grained_decomposition
from repro.core.fd import fine_grained_decomposition
from repro.datasets.registry import dataset_names, load_dataset
from repro.distributed.simulation import simulate_fd_fanout
from repro.parallel.threadpool import ExecutionContext

REPO_ROOT = Path(__file__).resolve().parent.parent


def pick_wedge_heaviest(scale: float) -> tuple[str, object]:
    """The registry stand-in with the most U-side wedge work at this scale."""
    best_key, best_graph, best_work = None, None, -1
    for key in dataset_names():
        graph = load_dataset(key, scale=scale)
        work = graph.total_wedge_work("U")
        if work > best_work:
            best_key, best_graph, best_work = key, graph, work
    return best_key, best_graph


def run_fd(graph, cd_result, context=None, rounds: int = 1):
    """Best-of-``rounds`` FD wall-clock on one context; returns (result, seconds)."""
    result, elapsed = None, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fine_grained_decomposition(graph, cd_result, context=context)
        lap = time.perf_counter() - start
        elapsed = lap if elapsed is None else min(elapsed, lap)
    return result, elapsed


def check_identical(reference, candidate, label: str) -> None:
    if not np.array_equal(reference.tip_numbers, candidate.tip_numbers):
        raise AssertionError(f"{label}: tip numbers differ from serial execution")
    for counter in ("wedges_traversed", "support_updates", "vertices_peeled"):
        expected = getattr(reference.counters, counter)
        actual = getattr(candidate.counters, counter)
        if expected != actual:
            raise AssertionError(
                f"{label}: {counter} differs from serial execution "
                f"({actual} != {expected})"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scale + fewer worker counts (CI smoke mode)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated process worker counts "
                             "(default: 1,2,4 — quick mode: 1,2)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the dataset scale multiplier")
    parser.add_argument("--partitions", type=int, default=12,
                        help="RECEIPT partitions P for the CD phase")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timing rounds per configuration (best-of; "
                             "default 3, quick mode 1)")
    parser.add_argument("--check-speedup", action="store_true",
                        help="fail unless the largest process fan-out beats the "
                             "1-worker process run (use on multicore hardware)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_scaling.json"))
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.15 if args.quick else 0.4)
    rounds = args.rounds if args.rounds is not None else (1 if args.quick else 3)
    if args.workers:
        worker_counts = sorted({int(item) for item in args.workers.split(",")})
    else:
        worker_counts = [1, 2] if args.quick else [1, 2, 4]

    dataset, graph = pick_wedge_heaviest(scale)
    print(f"wedge-heaviest stand-in at scale {scale}: {dataset} "
          f"(|U|={graph.n_u:,} |V|={graph.n_v:,} |E|={graph.n_edges:,}, "
          f"U-wedge-work={graph.total_wedge_work('U'):,})")

    counts = count_per_vertex_priority(graph)
    cd_result = coarse_grained_decomposition(graph, counts.u_counts, args.partitions)
    print(f"CD: {cd_result.n_subsets} subsets "
          f"(sizes {[int(subset.size) for subset in cd_result.subsets]})")

    serial_result, serial_seconds = run_fd(graph, cd_result, rounds=rounds)
    runs = [{
        "backend": "serial",
        "workers": 1,
        "fd_seconds": round(serial_seconds, 4),
    }]
    print(f"serial: fd={serial_seconds:.4f}s "
          f"wedges={serial_result.counters.wedges_traversed:,}")

    process_seconds: dict[int, float] = {}
    for workers in worker_counts:
        with ExecutionContext(workers, backend="process") as context:
            context.engine.warmup()  # spawn the pool outside the timed region
            result, seconds = run_fd(graph, cd_result, context=context, rounds=rounds)
        check_identical(serial_result, result, f"process[{workers}]")
        process_seconds[workers] = seconds
        projection = simulate_fd_fanout(graph, cd_result.subsets, workers)
        runs.append({
            "backend": "process",
            "workers": workers,
            "fd_seconds": round(seconds, 4),
            "speedup_vs_serial": round(serial_seconds / max(seconds, 1e-9), 2),
            "projected_speedup_lpt": round(projection.projected_speedup, 2),
            "load_imbalance_lpt": round(projection.schedule.imbalance, 3),
        })
        print(f"process[{workers}]: fd={seconds:.4f}s "
              f"(projected ideal speedup {projection.projected_speedup:.2f}x)")

    max_workers = max(worker_counts)
    with ExecutionContext(max_workers, backend="thread") as context:
        context.engine.warmup()
        thread_result, thread_seconds = run_fd(graph, cd_result, context=context, rounds=rounds)
    check_identical(serial_result, thread_result, f"thread[{max_workers}]")
    runs.append({
        "backend": "thread",
        "workers": max_workers,
        "fd_seconds": round(thread_seconds, 4),
        "speedup_vs_serial": round(serial_seconds / max(thread_seconds, 1e-9), 2),
    })
    print(f"thread[{max_workers}]: fd={thread_seconds:.4f}s")

    one_worker = process_seconds.get(1, serial_seconds)
    best_workers = min(process_seconds, key=process_seconds.get)
    fanout_speedup = one_worker / max(process_seconds[max_workers], 1e-9)
    report = {
        "benchmark": "fd_scaling",
        "mode": "quick" if args.quick else "full",
        "dataset": dataset,
        "scale": scale,
        "partitions": args.partitions,
        "n_subsets": cd_result.n_subsets,
        "cpu_count": os.cpu_count(),
        "fd_wedges_traversed": int(serial_result.counters.wedges_traversed),
        "fd_support_updates": int(serial_result.counters.support_updates),
        "runs": runs,
        "process_1worker_seconds": round(one_worker, 4),
        "process_fanout_workers": max_workers,
        "process_fanout_seconds": round(process_seconds[max_workers], 4),
        "process_fanout_speedup_vs_1worker": round(fanout_speedup, 2),
        "backends_match_serial_exactly": True,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if args.check_speedup and fanout_speedup <= 1.0:
        print(
            f"FAIL: process[{max_workers}] ({process_seconds[max_workers]:.4f}s) does "
            f"not beat process[1] ({one_worker:.4f}s) on {os.cpu_count()} CPUs",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: all backends bit-identical to serial; process[{max_workers}] is "
        f"{fanout_speedup:.2f}x vs 1 worker (best: {best_workers} workers, "
        f"{process_seconds[best_workers]:.4f}s) on {os.cpu_count()} CPUs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
