"""Serving-layer benchmark: index queries vs. the re-peel path.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--check-speedup]

The serving layer exists so that a θ lookup costs microseconds instead of
a full decomposition.  This benchmark quantifies that claim end-to-end:

1. **Build** — decompose a registry stand-in and persist the ``*.tipidx``
   artifact (`repro build-index` equivalent); build time is the price paid
   once per graph version.
2. **Load** — cold artifact load (manifest + mmap + graph reconstruction)
   vs. warm fingerprint-keyed cache hit.
3. **Offline queries** — point-θ and batch-θ throughput straight off the
   :class:`~repro.service.index.TipIndex`, against the *cold re-peel
   path*: answering the same batch by re-running the decomposition, which
   is what the repo had to do before this subsystem existed.
4. **HTTP** — starts the real ``ThreadingHTTPServer`` on a free port,
   exercises **every** endpoint once (hard-failing on any non-200), then
   measures point-request p50/p99 latency and batch-POST throughput.

Results go to ``BENCH_serving.json`` at the repository root.
``--check-speedup`` gates that warm-cache batch-θ throughput is at least
10x the re-peel path — the serving layer's reason to exist; unlike
wall-clock scaling gates this holds on any hardware, single-core CI
runners included.

Dataset generation honours ``REPRO_DATASET_CACHE`` (see
``repro.datasets.registry``).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.core.receipt import tip_decomposition
from repro.datasets.registry import load_dataset
from repro.service.artifacts import read_manifest
from repro.service.build import build_index_artifact
from repro.service.cache import IndexCache
from repro.service.server import ENDPOINTS, create_server

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required throughput advantage of warm-cache batch θ over re-peeling.
SPEEDUP_GATE = 10.0


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _percentiles(samples_ms: list[float]) -> dict:
    ordered = sorted(samples_ms)
    return {
        "p50_ms": round(statistics.median(ordered), 3),
        "p99_ms": round(float(np.percentile(ordered, 99)), 3),
        "mean_ms": round(statistics.fmean(ordered), 3),
    }


def _http_get(base_url: str, route: str):
    start = time.perf_counter()
    with urllib.request.urlopen(base_url + route, timeout=30) as response:
        payload = json.loads(response.read())
        return response.status, payload, (time.perf_counter() - start) * 1000.0


def _http_post(base_url: str, route: str, body: dict):
    request = urllib.request.Request(
        base_url + route, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=30) as response:
        payload = json.loads(response.read())
        return response.status, payload, (time.perf_counter() - start) * 1000.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="it", help="registry dataset key")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale multiplier (default 0.3, quick 0.12)")
    parser.add_argument("--partitions", type=int, default=12)
    parser.add_argument("--backend", default="serial",
                        help="execution backend for the index build")
    parser.add_argument("--quick", action="store_true",
                        help="smaller dataset + fewer requests (CI smoke mode)")
    parser.add_argument("--check-speedup", action="store_true",
                        help=f"fail unless warm batch-θ throughput >= "
                             f"{SPEEDUP_GATE:.0f}x the re-peel path")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serving.json"))
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.12 if args.quick else 0.3)
    point_requests = 150 if args.quick else 600
    batch_requests = 20 if args.quick else 60
    batch_size = 1024

    graph = load_dataset(args.dataset, scale=scale)
    print(f"dataset {args.dataset} @ scale {scale}: "
          f"|U|={graph.n_u:,} |V|={graph.n_v:,} |E|={graph.n_edges:,}")
    rng = np.random.default_rng(7)

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as workdir:
        artifact_path = Path(workdir) / f"{args.dataset}.tipidx"

        # -- 1: build ---------------------------------------------------
        manifest, build_seconds = _timed(lambda: build_index_artifact(
            graph, artifact_path, side="U", algorithm="receipt",
            backend=args.backend, n_partitions=args.partitions,
        ))
        artifact_bytes = sum(f.stat().st_size for f in artifact_path.iterdir())
        print(f"build: {build_seconds:.3f}s -> {artifact_bytes / 1024:.0f} KiB artifact "
              f"(fingerprint {manifest.fingerprint[:12]}...)")

        # -- 2: cold vs warm load --------------------------------------
        cache = IndexCache(capacity=4)
        index, cold_load_seconds = _timed(lambda: cache.get_or_load(artifact_path))
        _, warm_load_seconds = _timed(lambda: cache.get_or_load(artifact_path))
        print(f"load: cold={cold_load_seconds * 1000:.2f}ms "
              f"warm={warm_load_seconds * 1000:.2f}ms "
              f"(cache {cache.stats()['hits']}h/{cache.stats()['misses']}m)")

        # -- 3: offline query throughput -------------------------------
        vertices = rng.integers(0, graph.n_u, size=point_requests)
        _, point_seconds = _timed(lambda: [index.theta(int(v)) for v in vertices])
        point_qps = point_requests / max(point_seconds, 1e-9)

        batches = [rng.integers(0, graph.n_u, size=batch_size)
                   for _ in range(batch_requests)]
        _, batch_seconds = _timed(lambda: [index.theta_batch(batch) for batch in batches])
        warm_batch_lookups_per_sec = (batch_requests * batch_size) / max(batch_seconds, 1e-9)

        # The pre-serving-layer alternative: answer a batch by re-peeling.
        repeel, repeel_seconds = _timed(lambda: tip_decomposition(
            graph, "U", algorithm="receipt", n_partitions=args.partitions,
        ))
        assert np.array_equal(repeel.tip_numbers, np.asarray(index.tip_numbers)), \
            "re-peel disagrees with the served index"
        repeel_lookups_per_sec = batch_size / max(repeel_seconds, 1e-9)
        speedup = warm_batch_lookups_per_sec / max(repeel_lookups_per_sec, 1e-9)
        print(f"offline: point {point_qps:,.0f} q/s | warm batch "
              f"{warm_batch_lookups_per_sec:,.0f} θ/s | re-peel path "
              f"{repeel_lookups_per_sec:,.0f} θ/s -> {speedup:,.0f}x")

        # -- 4: HTTP ----------------------------------------------------
        server = create_server([artifact_path], port=0, cache_capacity=4)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base_url = f"http://{server.server_address[0]}:{server.server_address[1]}"
        try:
            k_mid = max(1, index.max_tip_number // 2)
            endpoint_routes = {
                "/healthz": "/healthz",
                "/stats": "/stats",
                "/theta": "/theta?vertex=0",
                "/theta/batch": "/theta/batch?vertices=0,1,2",
                "/top-k": "/top-k?k=5",
                "/k-tip": f"/k-tip?k={k_mid}&limit=16",
                "/community": f"/community?k={index.max_tip_number}",
            }
            # Every GET endpoint is exercised; /update is POST-only and is
            # covered by bench_streaming.py and the service test suite.
            assert set(endpoint_routes) == set(ENDPOINTS) - {"/update"}
            endpoint_status = {}
            # The first request hits a fresh service cache: the HTTP cold path.
            _, _, http_cold_first_ms = _http_get(base_url, "/theta?vertex=0")
            for endpoint, route in endpoint_routes.items():
                status, _, _ = _http_get(base_url, route)
                endpoint_status[endpoint] = status
                if status != 200:
                    print(f"FAIL: {endpoint} answered {status}", file=sys.stderr)
                    return 1
            print(f"http: all {len(endpoint_routes)} endpoints answered 200")

            latencies = []
            http_point_start = time.perf_counter()
            for vertex in rng.integers(0, graph.n_u, size=point_requests):
                status, _, elapsed_ms = _http_get(base_url, f"/theta?vertex={int(vertex)}")
                latencies.append(elapsed_ms)
            http_point_qps = point_requests / (time.perf_counter() - http_point_start)
            point_latency = _percentiles(latencies)

            http_batch_start = time.perf_counter()
            for batch in batches[: max(batch_requests // 2, 5)]:
                _http_post(base_url, "/theta/batch", {"vertices": batch.tolist()})
            http_batch_count = max(batch_requests // 2, 5)
            http_batch_seconds = time.perf_counter() - http_batch_start
            http_batch_lookups_per_sec = (http_batch_count * batch_size) / http_batch_seconds
            print(f"http: point {http_point_qps:,.0f} q/s "
                  f"(p50 {point_latency['p50_ms']}ms p99 {point_latency['p99_ms']}ms) | "
                  f"batch {http_batch_lookups_per_sec:,.0f} θ/s")
            cache_stats = server.service.cache.stats()
        finally:
            server.shutdown()
            server.server_close()

        report = {
            "benchmark": "serving",
            "mode": "quick" if args.quick else "full",
            "dataset": args.dataset,
            "scale": scale,
            "cpu_count": os.cpu_count(),
            "graph": {"n_u": graph.n_u, "n_v": graph.n_v, "n_edges": graph.n_edges},
            "artifact": {
                "bytes": artifact_bytes,
                "fingerprint": read_manifest(artifact_path).fingerprint,
                "build_seconds": round(build_seconds, 4),
            },
            "load": {
                "cold_seconds": round(cold_load_seconds, 6),
                "warm_seconds": round(warm_load_seconds, 6),
                "cold_over_warm": round(cold_load_seconds / max(warm_load_seconds, 1e-9), 1),
            },
            "offline": {
                "point_qps": round(point_qps, 1),
                "warm_batch_lookups_per_sec": round(warm_batch_lookups_per_sec, 1),
                "batch_size": batch_size,
                "repeel_seconds": round(repeel_seconds, 4),
                "repeel_lookups_per_sec": round(repeel_lookups_per_sec, 1),
                "warm_batch_speedup_vs_repeel": round(speedup, 1),
            },
            "http": {
                "endpoints_status": endpoint_status,
                "cold_first_request_ms": round(http_cold_first_ms, 3),
                "point_qps": round(http_point_qps, 1),
                "point_latency": point_latency,
                "batch_lookups_per_sec": round(http_batch_lookups_per_sec, 1),
                "cache": cache_stats,
            },
            "speedup_gate": SPEEDUP_GATE,
            "speedup_gate_passed": bool(speedup >= SPEEDUP_GATE),
        }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if args.check_speedup and speedup < SPEEDUP_GATE:
        print(f"FAIL: warm batch-θ throughput is only {speedup:.1f}x the re-peel "
              f"path (gate: {SPEEDUP_GATE:.0f}x)", file=sys.stderr)
        return 1
    print(f"OK: warm batch-θ throughput is {speedup:,.0f}x the re-peel path "
          f"(gate: {SPEEDUP_GATE:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
