"""Serving-layer benchmark: index queries vs. the re-peel path.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--check-speedup]

The serving layer exists so that a θ lookup costs microseconds instead of
a full decomposition.  This benchmark quantifies that claim end-to-end:

1. **Build** — decompose a registry stand-in and persist the ``*.tipidx``
   artifact (`repro build-index` equivalent); build time is the price paid
   once per graph version.
2. **Load** — cold artifact load (manifest + mmap + graph reconstruction)
   vs. warm fingerprint-keyed cache hit.
3. **Offline queries** — point-θ and batch-θ throughput straight off the
   :class:`~repro.service.index.TipIndex`, against the *cold re-peel
   path*: answering the same batch by re-running the decomposition, which
   is what the repo had to do before this subsystem existed.
4. **HTTP** — starts the real ``ThreadingHTTPServer`` on a free port,
   exercises **every** endpoint once (hard-failing on any non-200), then
   measures point-request p50/p99 latency and batch-POST throughput —
   both per-connection (the historical baseline) and over persistent
   keep-alive connections.
5. **Async** — starts the asyncio batch-coalescing front end
   (``repro serve --transport async``), asserts offline / threaded /
   async answers are byte-for-byte identical, then measures pipelined
   point-θ QPS, unpipelined p50/p99 latency, NDJSON bulk throughput, and
   read latency under mixed read/update load (admission-controlled
   writes racing coalesced reads).
6. **Sharding + replication** — asserts the θ-range ``ShardRouter``
   answers byte-identically to the unsharded service at every shard
   count (offline, threaded, and async), measures batch-θ throughput
   per shard count, gates 1-shard scatter/gather at parity with the
   unsharded path, and runs a leader + follower topology reporting
   replication convergence (offsets, lag reaching 0, read identity).
7. **Resilience** — arms a seeded :class:`~repro.service.faults.FaultPlan`
   that corrupts one replication push in flight, forcing the follower to
   mark itself diverged, then measures the wall-clock time until it has
   re-bootstrapped from a leader snapshot and converged back to lag 0
   (with byte-identical reads) — all without operator action.

Results go to ``BENCH_serving.json`` at the repository root.
``--check-speedup`` gates four things: warm-cache batch-θ throughput is
at least 10x the re-peel path (the serving layer's reason to exist),
async pipelined point-θ QPS is at least 10x the threaded per-connection
baseline (the async front end's reason to exist), 1-shard
scatter/gather batch-θ throughput is at least parity (0.75x) with the
unsharded index (sharding must not tax the degenerate deployment), and
automatic divergence recovery completes under a fixed ceiling.
Unlike wall-clock scaling gates all four hold on any hardware,
single-core CI runners included.

Dataset generation honours ``REPRO_DATASET_CACHE`` (see
``repro.datasets.registry``).
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.core.receipt import tip_decomposition
from repro.datasets.registry import load_dataset
from repro.errors import ServiceError
from repro.service.artifacts import read_manifest
from repro.service.aserver import start_server_thread
from repro.service.build import build_index_artifact
from repro.service.cache import IndexCache
from repro.service.server import (
    ENDPOINTS,
    TipService,
    create_server,
    error_payload,
    to_jsonable,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required throughput advantage of warm-cache batch θ over re-peeling.
SPEEDUP_GATE = 10.0

#: Required point-QPS advantage of the async pipelined transport over the
#: threaded per-connection baseline.
ASYNC_GATE = 10.0

#: Required 1-shard scatter/gather batch-θ throughput relative to the
#: unsharded index (the 1-shard fast path must cost ~nothing).
SHARDING_PARITY_GATE = 0.75

#: Ceiling on automatic divergence recovery: forced corrupt push ->
#: follower marks diverged -> snapshot re-bootstrap -> lag 0.  Generous
#: for shared CI runners; a healthy topology recovers in well under 1s.
RECOVERY_GATE_SECONDS = 10.0

#: Routes whose (status, body) must be byte-identical across offline,
#: threaded, and async serving.  /stats is excluded: its request counters
#: legitimately differ between processes.
IDENTITY_ROUTES = (
    "/healthz",
    "/theta?vertex=0",
    "/theta?vertex=7",
    "/theta?vertex=999999999",       # 400: out of range
    "/theta?vertex=abc",             # 400: not an integer
    "/theta/batch?vertices=0,1,2",
    "/top-k?k=5",
    "/not-an-endpoint",              # 404
)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _percentiles(samples_ms: list[float]) -> dict:
    ordered = sorted(samples_ms)
    return {
        "p50_ms": round(statistics.median(ordered), 3),
        "p99_ms": round(float(np.percentile(ordered, 99)), 3),
        "mean_ms": round(statistics.fmean(ordered), 3),
    }


def _http_get(base_url: str, route: str):
    start = time.perf_counter()
    with urllib.request.urlopen(base_url + route, timeout=30) as response:
        payload = json.loads(response.read())
        return response.status, payload, (time.perf_counter() - start) * 1000.0


def _http_post(base_url: str, route: str, body: dict):
    request = urllib.request.Request(
        base_url + route, data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=30) as response:
        payload = json.loads(response.read())
        return response.status, payload, (time.perf_counter() - start) * 1000.0


def _http_get_bytes(base_url: str, route: str):
    """(status, raw body bytes), following error statuses instead of raising."""
    try:
        with urllib.request.urlopen(base_url + route, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _offline_bytes(service: TipService, route: str):
    """Render a route exactly as both HTTP transports would."""
    bare, _, query = route.partition("?")
    params = dict(pair.split("=") for pair in query.split("&")) if query else {}
    try:
        payload = service.handle(bare, params)
        status = 200
    except ServiceError as error:
        payload, status = error_payload(error), error.status
    return status, json.dumps(to_jsonable(payload)).encode("utf-8")


def _threaded_keepalive_qps(host: str, port: int, vertices, workers: int = 4):
    """Point-θ QPS over persistent keep-alive connections, one per worker."""
    chunks = [chunk for chunk in np.array_split(vertices, workers) if len(chunk)]

    def run(chunk):
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for vertex in chunk:
                connection.request("GET", f"/theta?vertex={int(vertex)}")
                response = connection.getresponse()
                response.read()
                assert response.status == 200
        finally:
            connection.close()

    threads = [threading.Thread(target=run, args=(chunk,)) for chunk in chunks]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return len(vertices) / (time.perf_counter() - start)


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client (pipelining needs raw stream control;
# nothing in the stdlib pipelines).
# ----------------------------------------------------------------------
async def _read_one_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length)
    return int(head.split(b" ", 2)[1]), body


def _point_request(vertex: int) -> bytes:
    return b"GET /theta?vertex=%d HTTP/1.1\r\nHost: bench\r\n\r\n" % vertex


async def _close_stream(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def _async_pipelined_qps(host, port, vertices, *, connections, window):
    """Point-θ QPS with `connections` clients each pipelining `window` deep."""
    chunks = [chunk for chunk in np.array_split(vertices, connections) if len(chunk)]

    async def worker(chunk):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in range(0, len(chunk), window):
                burst = chunk[i:i + window]
                writer.write(b"".join(_point_request(int(v)) for v in burst))
                await writer.drain()
                for _ in burst:
                    status, _ = await _read_one_response(reader)
                    assert status == 200
        finally:
            await _close_stream(writer)

    start = time.perf_counter()
    await asyncio.gather(*(worker(chunk) for chunk in chunks))
    return len(vertices) / (time.perf_counter() - start)


async def _async_point_latencies(host, port, vertices):
    """Per-request ms latency, unpipelined, over one persistent connection."""
    reader, writer = await asyncio.open_connection(host, port)
    latencies = []
    try:
        for vertex in vertices:
            start = time.perf_counter()
            writer.write(_point_request(int(vertex)))
            await writer.drain()
            status, _ = await _read_one_response(reader)
            assert status == 200
            latencies.append((time.perf_counter() - start) * 1000.0)
    finally:
        await _close_stream(writer)
    return latencies


async def _async_mixed_load(host, port, n_u, delta, *, rounds, readers):
    """Coalesced reads racing admission-controlled updates.

    Each reader hammers point-θ on its own keep-alive connection while the
    writer alternates insert/delete rounds of the same delta (so the
    artifact ends back in its starting state).  Returns (read ms, update ms).
    """
    stop = asyncio.Event()
    read_ms: list[float] = []
    update_ms: list[float] = []

    async def read_loop(seed):
        reader, writer = await asyncio.open_connection(host, port)
        step = 0
        try:
            while not stop.is_set():
                vertex = (seed * 131 + step * 17) % n_u
                start = time.perf_counter()
                writer.write(_point_request(vertex))
                await writer.drain()
                status, _ = await _read_one_response(reader)
                assert status == 200
                read_ms.append((time.perf_counter() - start) * 1000.0)
                step += 1
        finally:
            await _close_stream(writer)

    async def write_loop():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for _ in range(rounds):
                for body in ({"insert": delta}, {"delete": delta}):
                    raw = json.dumps(body).encode("utf-8")
                    request = (
                        b"POST /update HTTP/1.1\r\nHost: bench\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: %d\r\n\r\n" % len(raw)) + raw
                    start = time.perf_counter()
                    writer.write(request)
                    await writer.drain()
                    status, payload = await _read_one_response(reader)
                    assert status == 200, (status, payload[:200])
                    update_ms.append((time.perf_counter() - start) * 1000.0)
        finally:
            stop.set()
            await _close_stream(writer)

    await asyncio.gather(write_loop(), *(read_loop(seed) for seed in range(readers)))
    return read_ms, update_ms


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="it", help="registry dataset key")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale multiplier (default 0.3, quick 0.12)")
    parser.add_argument("--partitions", type=int, default=12)
    parser.add_argument("--backend", default="serial",
                        help="execution backend for the index build")
    parser.add_argument("--quick", action="store_true",
                        help="smaller dataset + fewer requests (CI smoke mode)")
    parser.add_argument("--check-speedup", action="store_true",
                        help=f"fail unless warm batch-θ throughput >= "
                             f"{SPEEDUP_GATE:.0f}x the re-peel path")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serving.json"))
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.12 if args.quick else 0.3)
    point_requests = 150 if args.quick else 600
    batch_requests = 20 if args.quick else 60
    batch_size = 1024

    graph = load_dataset(args.dataset, scale=scale)
    print(f"dataset {args.dataset} @ scale {scale}: "
          f"|U|={graph.n_u:,} |V|={graph.n_v:,} |E|={graph.n_edges:,}")
    rng = np.random.default_rng(7)

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as workdir:
        artifact_path = Path(workdir) / f"{args.dataset}.tipidx"

        # -- 1: build ---------------------------------------------------
        manifest, build_seconds = _timed(lambda: build_index_artifact(
            graph, artifact_path, side="U", algorithm="receipt",
            backend=args.backend, n_partitions=args.partitions,
        ))
        artifact_bytes = sum(f.stat().st_size for f in artifact_path.iterdir())
        print(f"build: {build_seconds:.3f}s -> {artifact_bytes / 1024:.0f} KiB artifact "
              f"(fingerprint {manifest.fingerprint[:12]}...)")

        # -- 2: cold vs warm load --------------------------------------
        cache = IndexCache(capacity=4)
        index, cold_load_seconds = _timed(lambda: cache.get_or_load(artifact_path))
        _, warm_load_seconds = _timed(lambda: cache.get_or_load(artifact_path))
        print(f"load: cold={cold_load_seconds * 1000:.2f}ms "
              f"warm={warm_load_seconds * 1000:.2f}ms "
              f"(cache {cache.stats()['hits']}h/{cache.stats()['misses']}m)")

        # -- 3: offline query throughput -------------------------------
        vertices = rng.integers(0, graph.n_u, size=point_requests)
        _, point_seconds = _timed(lambda: [index.theta(int(v)) for v in vertices])
        point_qps = point_requests / max(point_seconds, 1e-9)

        batches = [rng.integers(0, graph.n_u, size=batch_size)
                   for _ in range(batch_requests)]
        _, batch_seconds = _timed(lambda: [index.theta_batch(batch) for batch in batches])
        warm_batch_lookups_per_sec = (batch_requests * batch_size) / max(batch_seconds, 1e-9)

        # The pre-serving-layer alternative: answer a batch by re-peeling.
        repeel, repeel_seconds = _timed(lambda: tip_decomposition(
            graph, "U", algorithm="receipt", n_partitions=args.partitions,
        ))
        assert np.array_equal(repeel.tip_numbers, np.asarray(index.tip_numbers)), \
            "re-peel disagrees with the served index"
        repeel_lookups_per_sec = batch_size / max(repeel_seconds, 1e-9)
        speedup = warm_batch_lookups_per_sec / max(repeel_lookups_per_sec, 1e-9)
        print(f"offline: point {point_qps:,.0f} q/s | warm batch "
              f"{warm_batch_lookups_per_sec:,.0f} θ/s | re-peel path "
              f"{repeel_lookups_per_sec:,.0f} θ/s -> {speedup:,.0f}x")

        # -- 4: HTTP ----------------------------------------------------
        server = create_server([artifact_path], port=0, cache_capacity=4)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base_url = f"http://{server.server_address[0]}:{server.server_address[1]}"
        try:
            k_mid = max(1, index.max_tip_number // 2)
            endpoint_routes = {
                "/healthz": "/healthz",
                "/stats": "/stats",
                "/theta": "/theta?vertex=0",
                "/theta/batch": "/theta/batch?vertices=0,1,2",
                "/top-k": "/top-k?k=5",
                "/k-tip": f"/k-tip?k={k_mid}&limit=16",
                "/community": f"/community?k={index.max_tip_number}",
            }
            # Every GET endpoint is exercised; /update is POST-only and is
            # covered by bench_streaming.py and the service test suite.
            assert set(endpoint_routes) == set(ENDPOINTS) - {"/update"}
            endpoint_status = {}
            # The first request hits a fresh service cache: the HTTP cold path.
            _, _, http_cold_first_ms = _http_get(base_url, "/theta?vertex=0")
            for endpoint, route in endpoint_routes.items():
                status, _, _ = _http_get(base_url, route)
                endpoint_status[endpoint] = status
                if status != 200:
                    print(f"FAIL: {endpoint} answered {status}", file=sys.stderr)
                    return 1
            print(f"http: all {len(endpoint_routes)} endpoints answered 200")

            latencies = []
            http_point_start = time.perf_counter()
            for vertex in rng.integers(0, graph.n_u, size=point_requests):
                status, _, elapsed_ms = _http_get(base_url, f"/theta?vertex={int(vertex)}")
                latencies.append(elapsed_ms)
            http_point_qps = point_requests / (time.perf_counter() - http_point_start)
            point_latency = _percentiles(latencies)

            http_batch_start = time.perf_counter()
            for batch in batches[: max(batch_requests // 2, 5)]:
                _http_post(base_url, "/theta/batch", {"vertices": batch.tolist()})
            http_batch_count = max(batch_requests // 2, 5)
            http_batch_seconds = time.perf_counter() - http_batch_start
            http_batch_lookups_per_sec = (http_batch_count * batch_size) / http_batch_seconds
            print(f"http: point {http_point_qps:,.0f} q/s "
                  f"(p50 {point_latency['p50_ms']}ms p99 {point_latency['p99_ms']}ms) | "
                  f"batch {http_batch_lookups_per_sec:,.0f} θ/s")

            # Keep-alive baseline: same threaded server, persistent conns.
            keepalive_qps = _threaded_keepalive_qps(
                server.server_address[0], server.server_address[1],
                rng.integers(0, graph.n_u, size=point_requests))
            print(f"http: keep-alive point {keepalive_qps:,.0f} q/s (4 conns)")

            threaded_identity = {
                route: _http_get_bytes(base_url, route) for route in IDENTITY_ROUTES}
            cache_stats = server.service.cache.stats()
        finally:
            server.shutdown()
            server.server_close()

        # -- 5: async batch-coalescing front end ------------------------
        async_point_requests = 3000 if args.quick else 12000
        async_connections, async_window = 8, 32
        mixed_rounds = 2
        offline_service = TipService([artifact_path])
        handle = start_server_thread([artifact_path], cache_capacity=4)
        try:
            ahost, aport = handle.address
            abase = handle.base_url

            # Byte-identity: offline == threaded == async, per route.
            for route in IDENTITY_ROUTES:
                offline_answer = _offline_bytes(offline_service, route)
                async_answer = _http_get_bytes(abase, route)
                if not (offline_answer == threaded_identity[route] == async_answer):
                    print(f"FAIL: transports disagree on {route}:\n"
                          f"  offline  {offline_answer}\n"
                          f"  threaded {threaded_identity[route]}\n"
                          f"  async    {async_answer}", file=sys.stderr)
                    return 1
            print(f"async: {len(IDENTITY_ROUTES)} routes byte-identical "
                  f"across offline/threaded/async")

            async_vertices = rng.integers(0, graph.n_u, size=async_point_requests)
            async_point_qps = asyncio.run(_async_pipelined_qps(
                ahost, aport, async_vertices,
                connections=async_connections, window=async_window))
            async_speedup = async_point_qps / max(http_point_qps, 1e-9)

            async_latency = _percentiles(asyncio.run(_async_point_latencies(
                ahost, aport, rng.integers(0, graph.n_u, size=point_requests))))
            print(f"async: point {async_point_qps:,.0f} q/s pipelined "
                  f"({async_connections} conns x window {async_window}) -> "
                  f"{async_speedup:,.1f}x threaded | unpipelined "
                  f"p50 {async_latency['p50_ms']}ms p99 {async_latency['p99_ms']}ms")

            # NDJSON bulk: many batch lookups in one request.
            ndjson_batches = batches[: max(batch_requests // 2, 5)]
            ndjson_body = b"".join(
                json.dumps({"vertices": batch.tolist()}).encode() + b"\n"
                for batch in ndjson_batches)
            connection = http.client.HTTPConnection(ahost, aport, timeout=60)
            try:
                ndjson_start = time.perf_counter()
                connection.request(
                    "POST", "/theta/batch", body=ndjson_body,
                    headers={"Content-Type": "application/x-ndjson"})
                response = connection.getresponse()
                answer_lines = response.read().strip().split(b"\n")
                ndjson_seconds = time.perf_counter() - ndjson_start
                assert response.status == 200 and len(answer_lines) == len(ndjson_batches)
            finally:
                connection.close()
            ndjson_lookups_per_sec = (
                len(ndjson_batches) * batch_size) / ndjson_seconds
            print(f"async: NDJSON bulk {ndjson_lookups_per_sec:,.0f} θ/s "
                  f"({len(ndjson_batches)} lines x {batch_size})")

            # Mixed read/update load: alternating insert/delete rounds of a
            # fresh-edge delta (artifact ends back at its base state).
            delta = []
            for u in range(graph.n_u):
                for w in range(min(graph.n_v, 64)):
                    if not graph.has_edge(u, w):
                        delta.append([u, w])
                    if len(delta) == 4:
                        break
                if len(delta) == 4:
                    break
            mixed_read_ms, mixed_update_ms = asyncio.run(_async_mixed_load(
                ahost, aport, graph.n_u, delta, rounds=mixed_rounds, readers=3))
            mixed_read_latency = _percentiles(mixed_read_ms)
            print(f"async: mixed load {len(mixed_read_ms)} reads "
                  f"(p50 {mixed_read_latency['p50_ms']}ms "
                  f"p99 {mixed_read_latency['p99_ms']}ms) while "
                  f"{len(mixed_update_ms)} updates applied "
                  f"(mean {statistics.fmean(mixed_update_ms):,.0f}ms)")

            coalescer_metrics = handle.server.coalescer.metrics()
            admission_metrics = handle.server.admission.metrics()
        finally:
            handle.stop()

        # -- 6: sharded scatter/gather + replication --------------------
        import shutil

        from repro.service.replication import ReplicationCoordinator
        from repro.service.sharding import ShardRouter

        shard_counts = (1, 2, 4)
        shard_identity_routes = IDENTITY_ROUTES + (
            "/top-k?k=5", f"/k-tip?k={k_mid}&limit=16")

        # Identity gate, offline: every shard count answers byte-identically.
        shard_services = {n: TipService([artifact_path], shards=n)
                          for n in shard_counts}
        for n, sharded_service in shard_services.items():
            for route in shard_identity_routes:
                unsharded = _offline_bytes(offline_service, route)
                sharded = _offline_bytes(sharded_service, route)
                if unsharded != sharded:
                    print(f"FAIL: {n}-shard router disagrees on {route}:\n"
                          f"  unsharded {unsharded}\n"
                          f"  sharded   {sharded}", file=sys.stderr)
                    return 1

        # Identity gate, served: one sharded service behind both transports.
        shard_http = create_server([], service=shard_services[2], port=0)
        threading.Thread(target=shard_http.serve_forever, daemon=True).start()
        shard_async = start_server_thread([], service=shard_services[2])
        try:
            shard_base = (f"http://{shard_http.server_address[0]}:"
                          f"{shard_http.server_address[1]}")
            for route in shard_identity_routes:
                unsharded = _offline_bytes(offline_service, route)
                threaded_answer = _http_get_bytes(shard_base, route)
                async_answer = _http_get_bytes(shard_async.base_url, route)
                if not (unsharded == threaded_answer == async_answer):
                    print(f"FAIL: sharded transports disagree on {route}:\n"
                          f"  offline  {unsharded}\n"
                          f"  threaded {threaded_answer}\n"
                          f"  async    {async_answer}", file=sys.stderr)
                    return 1
        finally:
            shard_async.stop()
            shard_http.shutdown()
            shard_http.server_close()
        print(f"sharding: {len(shard_identity_routes)} routes byte-identical "
              f"at shard counts {list(shard_counts)} across "
              f"offline/threaded/async")

        # Throughput scaling: batch-θ per shard count vs the raw index.
        _, unsharded_seconds = _timed(
            lambda: [index.theta_batch(batch) for batch in batches])
        unsharded_batch_per_sec = (
            batch_requests * batch_size) / max(unsharded_seconds, 1e-9)
        shard_batch_per_sec = {}
        for n in shard_counts:
            router = ShardRouter.from_index(index, n)
            _, sharded_seconds = _timed(
                lambda: [router.theta_batch(batch) for batch in batches])
            shard_batch_per_sec[n] = (
                batch_requests * batch_size) / max(sharded_seconds, 1e-9)
        one_shard_parity = shard_batch_per_sec[1] / max(unsharded_batch_per_sec, 1e-9)
        scaling = " | ".join(
            f"{n} shard(s) {qps:,.0f} θ/s"
            for n, qps in shard_batch_per_sec.items())
        print(f"sharding: unsharded {unsharded_batch_per_sec:,.0f} θ/s | "
              f"{scaling} -> 1-shard parity {one_shard_parity:.2f}x")

        # Replication: leader + follower convergence on artifact copies.
        leader_path = Path(workdir) / "leader.tipidx"
        follower_path = Path(workdir) / "follower.tipidx"
        shutil.copytree(artifact_path, leader_path)
        shutil.copytree(artifact_path, follower_path)
        follower_service = TipService([follower_path])
        follower_http = create_server([], service=follower_service, port=0)
        threading.Thread(
            target=follower_http.serve_forever, daemon=True).start()
        follower_url = (f"http://{follower_http.server_address[0]}:"
                        f"{follower_http.server_address[1]}")
        leader_service = TipService([leader_path])
        leader_coord = ReplicationCoordinator(
            leader_service, role="leader", follower_urls=(follower_url,))
        leader_coord.start()
        leader_http = create_server([], service=leader_service, port=0)
        threading.Thread(target=leader_http.serve_forever, daemon=True).start()
        leader_url = (f"http://{leader_http.server_address[0]}:"
                      f"{leader_http.server_address[1]}")
        follower_coord = ReplicationCoordinator(
            follower_service, role="follower", leader_url=leader_url,
            poll_interval=0.2)
        follower_coord.start()
        try:
            repl_rounds = 2
            repl_start = time.perf_counter()
            for _ in range(repl_rounds):
                for body in ({"insert": delta}, {"delete": delta}):
                    _http_post(leader_url, "/update", body)
            updates_applied = 2 * repl_rounds
            deadline = time.time() + 60
            max_lag = 0
            while True:
                _, status_payload, _ = _http_get(
                    follower_url, "/replication/status")
                max_lag = max(max_lag, int(status_payload["lag"]))
                if (status_payload["lag"] == 0
                        and status_payload["offset"] == updates_applied):
                    break
                if time.time() > deadline:
                    print(f"FAIL: follower never converged: {status_payload}",
                          file=sys.stderr)
                    return 1
                time.sleep(0.05)
            convergence_seconds = time.perf_counter() - repl_start
            probe_route = "/theta/batch?vertices=" + ",".join(
                str(int(v)) for v in rng.integers(0, graph.n_u, size=64))
            reads_identical = (_http_get_bytes(leader_url, probe_route)
                               == _http_get_bytes(follower_url, probe_route))
            if not reads_identical:
                print("FAIL: follower reads differ from the leader after "
                      "convergence", file=sys.stderr)
                return 1
            staleness = status_payload.get("staleness_seconds")
            print(f"replication: {updates_applied} updates fanned out, "
                  f"follower at offset {status_payload['offset']} lag 0 "
                  f"after {convergence_seconds:.2f}s "
                  f"(max observed lag {max_lag}, staleness "
                  f"{staleness if staleness is None else round(staleness, 2)}s)")
        finally:
            leader_coord.stop()
            follower_coord.stop()
            leader_http.shutdown()
            leader_http.server_close()
            follower_http.shutdown()
            follower_http.server_close()

        # -- 7: resilience: forced divergence -> automatic recovery -----
        from repro.service import faults as fault_injection
        from repro.service.faults import FaultPlan

        r_leader_path = Path(workdir) / "r-leader.tipidx"
        r_follower_path = Path(workdir) / "r-follower.tipidx"
        shutil.copytree(artifact_path, r_leader_path)
        shutil.copytree(artifact_path, r_follower_path)
        r_follower_service = TipService([r_follower_path])
        r_follower_http = create_server([], service=r_follower_service, port=0)
        threading.Thread(
            target=r_follower_http.serve_forever, daemon=True).start()
        r_follower_url = (f"http://{r_follower_http.server_address[0]}:"
                          f"{r_follower_http.server_address[1]}")
        r_leader_service = TipService([r_leader_path])
        r_leader_coord = ReplicationCoordinator(
            r_leader_service, role="leader",
            log_path=Path(workdir) / "r-leader.replog",
            follower_urls=(r_follower_url,))
        r_leader_coord.start()
        r_leader_http = create_server([], service=r_leader_service, port=0)
        threading.Thread(
            target=r_leader_http.serve_forever, daemon=True).start()
        r_leader_url = (f"http://{r_leader_http.server_address[0]}:"
                        f"{r_leader_http.server_address[1]}")
        r_follower_coord = ReplicationCoordinator(
            r_follower_service, role="follower", leader_url=r_leader_url,
            poll_interval=0.1)
        r_follower_coord.start()
        try:
            # A clean update first, so the follower is provably current
            # before the tampered push — a lagging follower would treat
            # it as an offset gap and fetch the real record from the log
            # instead of diverging.
            _http_post(r_leader_url, "/update", {"insert": delta})
            deadline = time.time() + 60
            while True:
                _, r_status, _ = _http_get(
                    r_follower_url, "/replication/status")
                if r_status["lag"] == 0 and r_status["offset"] == 1:
                    break
                if time.time() > deadline:
                    print(f"FAIL: resilience follower never caught up: "
                          f"{r_status}", file=sys.stderr)
                    return 1
                time.sleep(0.02)

            # One corrupted push: the follower must mark itself diverged
            # and re-bootstrap from a leader snapshot on its own.
            plan = FaultPlan.parse("replication.push:corrupt:count=1", seed=17)
            recovery_start = time.perf_counter()
            with fault_injection.armed(plan):
                _http_post(r_leader_url, "/update", {"delete": delta})
            deadline = time.time() + 60
            while True:
                _, r_status, _ = _http_get(
                    r_follower_url, "/replication/status")
                if (r_status["lag"] == 0 and r_status["offset"] == 2
                        and r_status["diverged"] is None
                        and r_status["resyncs"] >= 1):
                    break
                if time.time() > deadline:
                    print(f"FAIL: diverged follower never recovered: "
                          f"{r_status}", file=sys.stderr)
                    return 1
                time.sleep(0.02)
            recovery_seconds = time.perf_counter() - recovery_start
            recovery_injected = plan.stats()["injected_total"]
            recovery_reads_identical = (
                _http_get_bytes(r_leader_url, probe_route)
                == _http_get_bytes(r_follower_url, probe_route))
            if not recovery_reads_identical:
                print("FAIL: reads differ after divergence recovery",
                      file=sys.stderr)
                return 1
            print(f"resilience: corrupted push -> divergence -> snapshot "
                  f"re-bootstrap in {recovery_seconds:.2f}s "
                  f"({r_status['resyncs']} resync(s), "
                  f"{recovery_injected} fault(s) injected, reads identical)")
        finally:
            r_leader_coord.stop()
            r_follower_coord.stop()
            r_leader_http.shutdown()
            r_leader_http.server_close()
            r_follower_http.shutdown()
            r_follower_http.server_close()

        manifest_now = read_manifest(artifact_path)
        report = {
            "benchmark": "serving",
            "mode": "quick" if args.quick else "full",
            "dataset": args.dataset,
            "scale": scale,
            "cpu_count": os.cpu_count(),
            "graph": {"n_u": graph.n_u, "n_v": graph.n_v, "n_edges": graph.n_edges},
            "artifact": {
                "bytes": artifact_bytes,
                "fingerprint": manifest_now.fingerprint,
                # Content identity, matching /stats and bench-history: the
                # streaming base fingerprint when present, else the manifest.
                "base_fingerprint": str(
                    manifest_now.streaming.get("base_fingerprint")
                    or manifest_now.fingerprint),
                "build_seconds": round(build_seconds, 4),
            },
            "load": {
                "cold_seconds": round(cold_load_seconds, 6),
                "warm_seconds": round(warm_load_seconds, 6),
                "cold_over_warm": round(cold_load_seconds / max(warm_load_seconds, 1e-9), 1),
            },
            "offline": {
                "point_qps": round(point_qps, 1),
                "warm_batch_lookups_per_sec": round(warm_batch_lookups_per_sec, 1),
                "batch_size": batch_size,
                "repeel_seconds": round(repeel_seconds, 4),
                "repeel_lookups_per_sec": round(repeel_lookups_per_sec, 1),
                "warm_batch_speedup_vs_repeel": round(speedup, 1),
            },
            "http": {
                "endpoints_status": endpoint_status,
                "cold_first_request_ms": round(http_cold_first_ms, 3),
                "point_qps": round(http_point_qps, 1),
                "keepalive_point_qps": round(keepalive_qps, 1),
                "point_latency": point_latency,
                "batch_lookups_per_sec": round(http_batch_lookups_per_sec, 1),
                "cache": cache_stats,
            },
            "async": {
                "point_qps_pipelined": round(async_point_qps, 1),
                "pipelining": {
                    "connections": async_connections, "window": async_window},
                "speedup_vs_threaded_point": round(async_speedup, 1),
                "speedup_vs_threaded_keepalive": round(
                    async_point_qps / max(keepalive_qps, 1e-9), 1),
                "point_latency": async_latency,
                "ndjson_lookups_per_sec": round(ndjson_lookups_per_sec, 1),
                "byte_identity_routes_checked": len(IDENTITY_ROUTES),
                "mixed_load": {
                    "readers": 3,
                    "reads": len(mixed_read_ms),
                    "read_latency": mixed_read_latency,
                    "updates": len(mixed_update_ms),
                    "update_latency_ms": [round(ms, 1) for ms in mixed_update_ms],
                },
                "coalescer": coalescer_metrics,
                "admission": admission_metrics,
            },
            "sharding": {
                "shard_counts": list(shard_counts),
                "identity_routes_checked": len(shard_identity_routes),
                "transports_checked": ["offline", "thread", "async"],
                "unsharded_batch_lookups_per_sec": round(
                    unsharded_batch_per_sec, 1),
                "batch_lookups_per_sec": {
                    str(n): round(qps, 1)
                    for n, qps in shard_batch_per_sec.items()},
                "one_shard_parity": round(one_shard_parity, 3),
            },
            "replication": {
                "updates_applied": updates_applied,
                "final_offset": int(status_payload["offset"]),
                "max_observed_lag": max_lag,
                "convergence_seconds": round(convergence_seconds, 3),
                "follower_reads_identical": bool(reads_identical),
                "staleness_seconds": (
                    None if staleness is None else round(float(staleness), 3)),
            },
            "resilience": {
                "recovery_seconds": round(recovery_seconds, 3),
                "resyncs": int(r_status["resyncs"]),
                "faults_injected": int(recovery_injected),
                "reads_identical_after_recovery": bool(
                    recovery_reads_identical),
            },
            "speedup_gate": SPEEDUP_GATE,
            "speedup_gate_passed": bool(speedup >= SPEEDUP_GATE),
            "async_gate": ASYNC_GATE,
            "async_gate_passed": bool(async_speedup >= ASYNC_GATE),
            "sharding_parity_gate": SHARDING_PARITY_GATE,
            "sharding_parity_gate_passed": bool(
                one_shard_parity >= SHARDING_PARITY_GATE),
            "recovery_gate_seconds": RECOVERY_GATE_SECONDS,
            "recovery_gate_passed": bool(
                recovery_seconds <= RECOVERY_GATE_SECONDS),
        }

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")

    if args.check_speedup and speedup < SPEEDUP_GATE:
        print(f"FAIL: warm batch-θ throughput is only {speedup:.1f}x the re-peel "
              f"path (gate: {SPEEDUP_GATE:.0f}x)", file=sys.stderr)
        return 1
    print(f"OK: warm batch-θ throughput is {speedup:,.0f}x the re-peel path "
          f"(gate: {SPEEDUP_GATE:.0f}x)")
    if args.check_speedup and async_speedup < ASYNC_GATE:
        print(f"FAIL: async pipelined point-θ QPS is only {async_speedup:.1f}x "
              f"the threaded baseline (gate: {ASYNC_GATE:.0f}x)", file=sys.stderr)
        return 1
    print(f"OK: async pipelined point-θ QPS is {async_speedup:,.1f}x the "
          f"threaded baseline (gate: {ASYNC_GATE:.0f}x)")
    if args.check_speedup and one_shard_parity < SHARDING_PARITY_GATE:
        print(f"FAIL: 1-shard scatter/gather batch-θ throughput is only "
              f"{one_shard_parity:.2f}x the unsharded index "
              f"(gate: {SHARDING_PARITY_GATE:.2f}x)", file=sys.stderr)
        return 1
    print(f"OK: 1-shard scatter/gather is {one_shard_parity:.2f}x the "
          f"unsharded index (gate: {SHARDING_PARITY_GATE:.2f}x)")
    if args.check_speedup and recovery_seconds > RECOVERY_GATE_SECONDS:
        print(f"FAIL: automatic divergence recovery took "
              f"{recovery_seconds:.2f}s (gate: {RECOVERY_GATE_SECONDS:.0f}s)",
              file=sys.stderr)
        return 1
    print(f"OK: automatic divergence recovery in {recovery_seconds:.2f}s "
          f"(gate: {RECOVERY_GATE_SECONDS:.0f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
