"""Streaming-update benchmark: incremental repair vs. full rebuild.

A plain script (no pytest harness) so CI can run it directly:

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick] [--check-speedup]

The streaming engine exists so that absorbing a transactional edge batch
costs milliseconds instead of a full re-count + re-peel + artifact rebuild.
This benchmark measures that end-to-end on a *community workload* — many
dense reviewer×product blocks over a sparse background, the shape of the
paper's Sec. 6 spam-group use case — with a session-style update stream:
each batch is a burst of activity inside a couple of communities (the
access locality transactional workloads exhibit), interleaved with
butterfly-free background churn.  Every batch stays at or below the
``--churn`` edge fraction (default 1%).

Per batch, two paths produce the same refreshed ``*.tipidx`` artifact:

* **incremental** — ``POST /update`` semantics via ``TipService.handle``:
  CSR patch, frontier support maintenance, bounded re-peel, atomic
  artifact swap, cache refresh;
* **full rebuild** — construct the updated graph from its edge list,
  re-count, re-peel (same algorithm/partitions) and persist, which is what
  the repo had to do before this subsystem existed.

Exactness is always enforced: after every batch the served tip numbers and
butterfly counts must be bit-identical to the from-scratch decomposition of
the current graph — for the hostile uniform-churn series too, which is
measured and reported (it exercises the damage fallback) but not gated.
``--check-speedup`` gates the session-stream mean speedup at >= 5x.

Results go to ``BENCH_streaming.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.receipt import tip_decomposition
from repro.datasets.generators import planted_blocks
from repro.graph.bipartite import BipartiteGraph
from repro.service.artifacts import load_artifact, read_manifest, save_artifact
from repro.service.build import build_index_artifact
from repro.service.server import TipService

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required mean advantage of the incremental update path over a full
#: re-count + re-peel + artifact rebuild, on the session update stream.
SPEEDUP_GATE = 5.0

N_PARTITIONS = 12


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


class CommunityWorkload:
    """A planted-communities graph plus a seeded update-stream generator."""

    def __init__(self, n_blocks: int, *, seed: int):
        rng = np.random.default_rng(seed)
        self.blocks = [(int(rng.integers(8, 20)), int(rng.integers(6, 14)))
                       for _ in range(n_blocks)]
        self.u_ranges, self.v_ranges = [], []
        u_cursor = v_cursor = 0
        for block_u, block_v in self.blocks:
            self.u_ranges.append((u_cursor, u_cursor + block_u))
            self.v_ranges.append((v_cursor, v_cursor + block_v))
            u_cursor += block_u
            v_cursor += block_v
        # A roomy background id space keeps stray background butterflies —
        # and with them accidental bridges between communities — rare.
        self.n_u = u_cursor + max(40 * n_blocks, 800)
        self.n_v = v_cursor + max(24 * n_blocks, 480)
        self.graph = planted_blocks(
            self.n_u, self.n_v, self.blocks,
            background_edges=22 * n_blocks, block_density=0.85, seed=rng,
        )
        self.rng = rng

    def _insert_candidates(self, existing, count, u_range, v_range, budget=4000):
        inserts, seen = [], set()
        for _ in range(budget):
            if len(inserts) >= count:
                break
            u = int(self.rng.integers(*u_range))
            v = int(self.rng.integers(*v_range))
            if (u, v) not in existing and (u, v) not in seen:
                inserts.append([u, v])
                seen.add((u, v))
        return inserts

    def session_batch(self, graph: BipartiteGraph, max_changes: int) -> dict:
        """A burst of activity inside two random communities."""
        edges = graph.edge_array()
        existing = set(map(tuple, edges.tolist()))
        chosen = self.rng.choice(len(self.blocks), size=2, replace=False)
        in_blocks = np.zeros(edges.shape[0], dtype=bool)
        for block in chosen:
            lo, hi = self.u_ranges[block]
            in_blocks |= (edges[:, 0] >= lo) & (edges[:, 0] < hi)
        candidates = np.flatnonzero(in_blocks)
        n_deletes = min(max_changes // 2, max(1, candidates.size // 10))
        deletes = edges[self.rng.choice(candidates, size=n_deletes, replace=False)]
        inserts = []
        for block in chosen:
            inserts.extend(self._insert_candidates(
                existing, (max_changes - n_deletes) // 2,
                self.u_ranges[block], self.v_ranges[block],
            ))
        return {"insert": inserts, "delete": deletes.tolist(), "kind": "session"}

    def background_batch(self, graph: BipartiteGraph, max_changes: int) -> dict:
        """Churn in the sparse background — mostly butterfly-free."""
        edges = graph.edge_array()
        existing = set(map(tuple, edges.tolist()))
        background_u = (self.u_ranges[-1][1], self.n_u)
        background_v = (self.v_ranges[-1][1], self.n_v)
        inserts = self._insert_candidates(
            existing, max_changes // 2, background_u, background_v,
        )
        in_background = edges[:, 0] >= background_u[0]
        candidates = np.flatnonzero(in_background)
        n_deletes = min(max_changes - len(inserts), candidates.size)
        deletes = (
            edges[self.rng.choice(candidates, size=n_deletes, replace=False)]
            if n_deletes else np.zeros((0, 2), dtype=np.int64)
        )
        return {"insert": inserts, "delete": deletes.tolist(), "kind": "background"}

    def uniform_batch(self, graph: BipartiteGraph, max_changes: int) -> dict:
        """Hostile series: churn spread uniformly over the whole edge set."""
        edges = graph.edge_array()
        existing = set(map(tuple, edges.tolist()))
        n_deletes = max_changes // 2
        deletes = edges[self.rng.choice(edges.shape[0], size=n_deletes, replace=False)]
        inserts, seen = [], set()
        for _ in range(4000):
            if len(inserts) >= max_changes - n_deletes:
                break
            u = int(edges[self.rng.integers(edges.shape[0])][0])
            v = int(edges[self.rng.integers(edges.shape[0])][1])
            if (u, v) not in existing and (u, v) not in seen:
                inserts.append([u, v])
                seen.add((u, v))
        return {"insert": inserts, "delete": deletes.tolist(), "kind": "uniform"}


def _rebuild_full(graph: BipartiteGraph, path: Path):
    """The pre-streaming alternative: re-count, re-peel, re-persist."""
    rebuilt = BipartiteGraph(graph.n_u, graph.n_v, graph.edge_array(),
                             name=graph.name)
    result = tip_decomposition(rebuilt, "U", algorithm="receipt",
                               n_partitions=N_PARTITIONS)
    save_artifact(path, rebuilt, result, overwrite=True)
    return result


def _run_stream(service, workload, batches, max_changes, artifact_path, scratch_path):
    records = []
    current = service.index_for().graph  # the currently served snapshot
    for index, kind in enumerate(batches):
        body = getattr(workload, f"{kind}_batch")(current, max_changes)
        kind_label = body.pop("kind")
        if not body["insert"] and not body["delete"]:
            continue

        payload, incremental_seconds = _timed(
            lambda body=body: service.handle("/update", {}, dict(body))
        )
        current = service.index_for().graph

        full_result, full_seconds = _timed(
            lambda: _rebuild_full(current, scratch_path)
        )

        served = load_artifact(artifact_path, mmap=False)
        exact_tips = np.array_equal(served.arrays["tip_numbers"],
                                    full_result.tip_numbers)
        exact_counts = np.array_equal(served.arrays["initial_butterflies"],
                                      full_result.initial_butterflies)
        records.append({
            "batch": index,
            "kind": kind_label,
            "changes": payload["inserted"] + payload["deleted"],
            "mode": payload["mode"],
            "k_seed": payload["k_seed"],
            "repeeled_vertices": payload["repeeled_vertices"],
            "damage_ratio": payload["damage_ratio"],
            "incremental_ms": round(incremental_seconds * 1000, 2),
            "full_rebuild_ms": round(full_seconds * 1000, 2),
            "speedup": round(full_seconds / max(incremental_seconds, 1e-9), 2),
            "exact": bool(exact_tips and exact_counts),
        })
        print(f"  [{kind_label:>10}] batch {index}: {records[-1]['changes']:>3} edges "
              f"mode={payload['mode']:<11} inc={records[-1]['incremental_ms']:>8.1f}ms "
              f"full={records[-1]['full_rebuild_ms']:>8.1f}ms "
              f"{records[-1]['speedup']:>6.1f}x exact={records[-1]['exact']}")
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=None,
                        help="number of planted communities (default 80, quick 40)")
    parser.add_argument("--batches", type=int, default=None,
                        help="session batches in the gated stream (default 12, quick 8)")
    parser.add_argument("--churn", type=float, default=0.01,
                        help="max per-batch edge churn as a fraction of |E| (default 0.01)")
    parser.add_argument("--seed", type=int, default=20)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (CI smoke mode)")
    parser.add_argument("--check-speedup", action="store_true",
                        help=f"fail unless the session-stream mean speedup is "
                             f">= {SPEEDUP_GATE:.0f}x")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_streaming.json"))
    args = parser.parse_args(argv)

    n_blocks = args.blocks if args.blocks is not None else (40 if args.quick else 80)
    n_batches = args.batches if args.batches is not None else (8 if args.quick else 12)

    workload = CommunityWorkload(n_blocks, seed=args.seed)
    graph = workload.graph
    max_changes = max(2, int(args.churn * graph.n_edges))
    print(f"community workload: {n_blocks} blocks, |U|={graph.n_u:,} "
          f"|V|={graph.n_v:,} |E|={graph.n_edges:,}; "
          f"<= {max_changes} changed edges per batch ({args.churn:.1%} churn)")

    with tempfile.TemporaryDirectory(prefix="bench-streaming-") as workdir:
        artifact_path = Path(workdir) / "stream.tipidx"
        scratch_path = Path(workdir) / "scratch.tipidx"
        _, build_seconds = _timed(lambda: build_index_artifact(
            graph, artifact_path, side="U", n_partitions=N_PARTITIONS,
        ))
        print(f"initial build: {build_seconds:.3f}s")
        service = TipService([artifact_path])

        # Gated series: session bursts with background churn interleaved.
        kinds = ["session" if i % 4 != 3 else "background" for i in range(n_batches)]
        print("session stream (gated):")
        session_records = _run_stream(
            service, workload, kinds, max_changes, artifact_path, scratch_path,
        )
        # Hostile series: uniform churn across every community at once.
        print("uniform stream (reported, not gated):")
        uniform_records = _run_stream(
            service, workload, ["uniform", "uniform"], max_changes,
            artifact_path, scratch_path,
        )
        manifest = read_manifest(artifact_path)
        streaming_stats = manifest.streaming

    all_exact = all(r["exact"] for r in session_records + uniform_records)
    incremental_ms = [r["incremental_ms"] for r in session_records]
    full_ms = [r["full_rebuild_ms"] for r in session_records]
    mean_speedup = statistics.fmean(full_ms) / max(statistics.fmean(incremental_ms), 1e-9)
    median_speedup = statistics.median(r["speedup"] for r in session_records)
    modes = {}
    for record in session_records + uniform_records:
        modes[record["mode"]] = modes.get(record["mode"], 0) + 1

    report = {
        "benchmark": "streaming",
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "workload": {
            "n_blocks": n_blocks,
            "n_u": graph.n_u,
            "n_v": graph.n_v,
            "n_edges": graph.n_edges,
            "max_changes_per_batch": max_changes,
            "churn_fraction": args.churn,
            "seed": args.seed,
        },
        "initial_build_seconds": round(build_seconds, 4),
        "session_stream": {
            "records": session_records,
            "mean_incremental_ms": round(statistics.fmean(incremental_ms), 2),
            "mean_full_rebuild_ms": round(statistics.fmean(full_ms), 2),
            "mean_speedup": round(mean_speedup, 2),
            "median_speedup": round(median_speedup, 2),
        },
        "uniform_stream": {"records": uniform_records},
        "update_modes": modes,
        "staleness": streaming_stats,
        "all_exact": all_exact,
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_passed": bool(mean_speedup >= SPEEDUP_GATE),
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    print(f"session stream: mean incremental {report['session_stream']['mean_incremental_ms']}ms "
          f"vs full rebuild {report['session_stream']['mean_full_rebuild_ms']}ms "
          f"-> {mean_speedup:.1f}x (median {median_speedup:.1f}x)")

    if not all_exact:
        print("FAIL: a repaired decomposition diverged from the from-scratch peel",
              file=sys.stderr)
        return 1
    if args.check_speedup and mean_speedup < SPEEDUP_GATE:
        print(f"FAIL: incremental updates are only {mean_speedup:.1f}x faster than "
              f"full rebuild (gate: {SPEEDUP_GATE:.0f}x)", file=sys.stderr)
        return 1
    print(f"OK: exact everywhere; session-stream speedup {mean_speedup:.1f}x "
          f"(gate: {SPEEDUP_GATE:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
