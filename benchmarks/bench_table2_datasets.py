"""Table 2: dataset statistics (sizes, degrees, butterflies, wedges, theta_max).

For every stand-in dataset the bench computes the quantities of the paper's
Table 2 — |U|, |V|, |E|, average degrees, total butterflies, total wedges —
plus the maximum tip number of both sides (obtained from the cached RECEIPT
runs).  Absolute values are orders of magnitude below the KONECT originals
(the stand-ins are laptop-scale); the asymmetry between the two sides and
the heavy skew are what carries over.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_DATASETS, get_graph, get_receipt, side_label
from repro.butterfly.counting import count_per_vertex
from repro.graph.statistics import graph_statistics


@pytest.mark.parametrize("key", BENCH_DATASETS)
def bench_dataset_statistics(benchmark, report, key):
    graph = get_graph(key)

    def compute():
        stats = graph_statistics(graph)
        counts = count_per_vertex(graph)
        return stats, counts

    stats, counts = benchmark.pedantic(compute, rounds=1, iterations=1)
    theta_max_u = get_receipt(key, "U").max_tip_number
    theta_max_v = get_receipt(key, "V").max_tip_number

    report.add_row(
        dataset=key,
        n_u=stats.n_u,
        n_v=stats.n_v,
        n_edges=stats.n_edges,
        avg_deg_u=round(stats.avg_degree_u, 1),
        avg_deg_v=round(stats.avg_degree_v, 1),
        butterflies=counts.total_butterflies,
        wedges_u=stats.wedges_with_endpoints_in_u,
        wedges_v=stats.wedges_with_endpoints_in_v,
        theta_max_u=theta_max_u,
        theta_max_v=theta_max_v,
    )

    # Shape checks mirroring the paper: every dataset has butterflies, and
    # the U side (as labelled) carries more wedges than the V side.
    assert counts.total_butterflies > 0
    assert stats.wedges_with_endpoints_in_u > stats.wedges_with_endpoints_in_v


def bench_table2_labels(benchmark, report):
    """Record the per-side labels so the results file mirrors Table 2's layout."""
    labels = benchmark.pedantic(
        lambda: [side_label(key, side) for key in BENCH_DATASETS for side in ("U", "V")],
        rounds=1, iterations=1,
    )
    assert len(labels) == 2 * len(BENCH_DATASETS)
