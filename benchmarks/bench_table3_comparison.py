"""Table 3: execution time, wedges traversed and synchronization rounds.

For every dataset side (ItU ... TrV) the bench runs the three algorithms —
sequential BUP, the ParButterfly-style ParB baseline, and RECEIPT — and
reports the three metrics of the paper's Table 3: wall-clock time, wedges
traversed and synchronization rounds, plus the pvBcnt counting row.

Shape expectations (asserted where they are robust at laptop scale):

* all three algorithms produce identical tip numbers;
* RECEIPT traverses no more wedges than BUP / ParB on the wedge-heavy
  ``U`` sides;
* RECEIPT uses far fewer synchronization rounds than ParB.

Wall-clock ratios between ParB and RECEIPT are *not* asserted: the harness
executes serially, so ParB does not pay its per-round barrier cost here (the
rounds column and the cost-model projections carry that effect instead).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import DATASET_SIDES, get_baseline, get_graph, get_receipt, side_label
from repro.butterfly.counting import count_per_vertex


@pytest.mark.parametrize("key,side", DATASET_SIDES, ids=[side_label(k, s) for k, s in DATASET_SIDES])
def bench_algorithm_comparison(benchmark, report, key, side):
    graph = get_graph(key)

    def run_all():
        counting = count_per_vertex(graph)
        bup = get_baseline(key, side, "bup")
        parb = get_baseline(key, side, "parb")
        receipt = get_receipt(key, side)
        return counting, bup, parb, receipt

    counting, bup, parb, receipt = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Correctness: Theorem 2 — every algorithm computes the same tip numbers.
    assert np.array_equal(bup.tip_numbers, parb.tip_numbers)
    assert np.array_equal(bup.tip_numbers, receipt.tip_numbers)

    # Work: RECEIPT's optimizations never lose on the wedge-heavy U sides.
    if side == "U":
        assert receipt.counters.wedges_traversed <= bup.counters.wedges_traversed

    # Synchronization: the headline claim (up to 1105x in the paper).
    assert receipt.counters.synchronization_rounds < parb.counters.synchronization_rounds

    report.add_row(
        dataset=side_label(key, side),
        pvBcnt_s=round(receipt.phase_counters["pvBcnt"].elapsed_seconds, 3),
        bup_s=round(bup.counters.elapsed_seconds, 3),
        parb_s=round(parb.counters.elapsed_seconds, 3),
        receipt_s=round(receipt.counters.elapsed_seconds, 3),
        bup_wedges=bup.counters.wedges_traversed,
        receipt_wedges=receipt.counters.wedges_traversed,
        wedge_reduction=round(
            bup.counters.wedges_traversed / max(receipt.counters.wedges_traversed, 1), 2
        ),
        parb_rounds=parb.counters.synchronization_rounds,
        receipt_rounds=receipt.counters.synchronization_rounds,
        round_reduction=round(
            parb.counters.synchronization_rounds
            / max(receipt.counters.synchronization_rounds, 1), 1
        ),
    )
