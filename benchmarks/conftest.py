"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper's evaluation section has a dedicated
``bench_*`` module in this directory.  Common machinery lives here:

* dataset-side enumeration (ItU, ItV, ..., TrU, TrV) over the registry of
  synthetic stand-ins,
* session-scoped caches so that expensive decompositions are run once and
  reused by the figures that post-process them, and
* a small reporter that prints each table / series and writes it to
  ``benchmarks/results/*.json`` so EXPERIMENTS.md can reference the numbers.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    Size multiplier for the generated stand-ins (default ``0.4``).  The full
    ``1.0`` scale takes a few minutes for the complete harness.
``REPRO_BENCH_DATASETS``
    Comma-separated dataset keys to benchmark (default: all six).
``REPRO_BENCH_PARTITIONS``
    RECEIPT's ``P`` parameter for the comparison benches (default ``24``,
    a scaled-down stand-in for the paper's 150).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.receipt import ReceiptConfig, receipt_decomposition
from repro.datasets.registry import dataset_names, load_dataset
from repro.peeling.bup import bup_decomposition
from repro.peeling.parbutterfly import parbutterfly_decomposition

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
BENCH_PARTITIONS = int(os.environ.get("REPRO_BENCH_PARTITIONS", "24"))
_requested = os.environ.get("REPRO_BENCH_DATASETS", "")
BENCH_DATASETS = [key.strip().lower() for key in _requested.split(",") if key.strip()] \
    or dataset_names()

#: (dataset key, side) pairs in the paper's Table 2 / Table 3 order.
DATASET_SIDES = [(key, side) for key in BENCH_DATASETS for side in ("U", "V")]


def side_label(key: str, side: str) -> str:
    """The paper's per-side dataset label, e.g. ``ItU`` or ``TrV``."""
    return key.capitalize() + side


# ----------------------------------------------------------------------
# Session-scoped lazy caches
# ----------------------------------------------------------------------
_graphs: dict[str, object] = {}
_receipt_results: dict[tuple[str, str, str], object] = {}
_baseline_results: dict[tuple[str, str, str], object] = {}


def get_graph(key: str):
    """Generate (once) and return the stand-in graph for a dataset key."""
    if key not in _graphs:
        _graphs[key] = load_dataset(key, scale=BENCH_SCALE)
    return _graphs[key]


def get_receipt(key: str, side: str, variant: str = "receipt", n_partitions: int | None = None):
    """Run (once) and cache a RECEIPT variant on one dataset side."""
    n_partitions = BENCH_PARTITIONS if n_partitions is None else n_partitions
    cache_key = (key, side, f"{variant}-P{n_partitions}")
    if cache_key not in _receipt_results:
        config = ReceiptConfig.from_variant(variant, n_partitions=n_partitions)
        _receipt_results[cache_key] = receipt_decomposition(
            get_graph(key), side, config=config
        )
    return _receipt_results[cache_key]


def get_baseline(key: str, side: str, algorithm: str):
    """Run (once) and cache a baseline (``bup`` or ``parb``) on one side."""
    cache_key = (key, side, algorithm)
    if cache_key not in _baseline_results:
        graph = get_graph(key)
        if algorithm == "bup":
            _baseline_results[cache_key] = bup_decomposition(graph, side)
        elif algorithm == "parb":
            _baseline_results[cache_key] = parbutterfly_decomposition(graph, side)
        else:  # pragma: no cover - guarded by callers
            raise ValueError(f"unknown baseline {algorithm!r}")
    return _baseline_results[cache_key]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
class BenchReport:
    """Collects rows for one table / figure and emits them at teardown."""

    def __init__(self, name: str, description: str):
        self.name = name
        self.description = description
        self.rows: list[dict] = []

    def add_row(self, **fields) -> None:
        self.rows.append(fields)

    def emit(self) -> None:
        if not self.rows:
            return
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "name": self.name,
            "description": self.description,
            "scale": BENCH_SCALE,
            "partitions": BENCH_PARTITIONS,
            "rows": self.rows,
        }
        with open(RESULTS_DIR / f"{self.name}.json", "wt", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)

        columns = list(self.rows[0].keys())
        widths = {
            column: max(len(column), *(len(_format(row.get(column))) for row in self.rows))
            for column in columns
        }
        lines = [
            "",
            f"=== {self.name}: {self.description} (scale={BENCH_SCALE}) ===",
            "  ".join(column.rjust(widths[column]) for column in columns),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(_format(row.get(column)).rjust(widths[column]) for column in columns)
            )
        print("\n".join(lines))


def _format(value) -> str:
    if isinstance(value, float):
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@pytest.fixture(scope="module")
def report(request):
    """Module-scoped report: benches add rows, the table prints at teardown."""
    name = request.module.__name__.replace("bench_", "")
    description = (request.module.__doc__ or "").strip().splitlines()[0] if request.module.__doc__ else ""
    bench_report = BenchReport(name, description)
    yield bench_report
    bench_report.emit()


def pytest_report_header(config):
    return (
        f"repro benchmark harness: scale={BENCH_SCALE}, partitions={BENCH_PARTITIONS}, "
        f"datasets={','.join(BENCH_DATASETS)} (results in {RESULTS_DIR})"
    )
