"""Compare BUP, ParB and RECEIPT on a paper-dataset stand-in.

Reproduces, at laptop scale, the flavour of Table 3: execution time, wedges
traversed and synchronization rounds for the three tip-decomposition
algorithms, plus RECEIPT's projected multi-thread speedup (the Fig. 10
series) derived from the analytical cost model.

Run with::

    python examples/algorithm_comparison.py [dataset] [scale]

where ``dataset`` is one of it, de, or, lj, en, tr (default ``it``) and
``scale`` shrinks or grows the generated stand-in (default 0.5).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import (
    bup_decomposition,
    parbutterfly_decomposition,
    receipt_decomposition,
)
from repro.core import projected_speedups, wedge_breakdown
from repro.datasets import load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "it"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    graph = load_dataset(dataset, scale=scale)
    print(f"dataset {dataset} (scale {scale}): |U|={graph.n_u:,} |V|={graph.n_v:,} "
          f"|E|={graph.n_edges:,}")
    print(f"BUP peel work (wedges): U-side {graph.total_wedge_work('U'):,} / "
          f"V-side {graph.total_wedge_work('V'):,}\n")

    rows = []
    for label, runner in (
        ("BUP", lambda: bup_decomposition(graph, "U")),
        ("ParB", lambda: parbutterfly_decomposition(graph, "U")),
        ("RECEIPT", lambda: receipt_decomposition(graph, "U", n_partitions=24)),
    ):
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        rows.append((label, elapsed, result))

    reference = rows[0][2]
    print(f"{'algorithm':>10} {'time (s)':>10} {'wedges':>14} {'sync rounds':>12} {'matches BUP':>12}")
    for label, elapsed, result in rows:
        agree = bool(np.array_equal(result.tip_numbers, reference.tip_numbers))
        rounds = result.counters.synchronization_rounds if label != "BUP" else "-"
        print(f"{label:>10} {elapsed:>10.2f} {result.counters.wedges_traversed:>14,} "
              f"{str(rounds):>12} {str(agree):>12}")

    receipt = rows[-1][2]
    print("\nRECEIPT wedge breakdown (Fig. 8 style):")
    for phase, fraction in wedge_breakdown(receipt).fraction.items():
        print(f"  {phase:>8}: {100 * fraction:5.1f}%")

    print("\nprojected self-relative speedup (Fig. 10 style, cost-model replay):")
    for threads, speedup in projected_speedups(receipt).items():
        print(f"  {threads:>3} threads: {speedup:5.2f}x")


if __name__ == "__main__":
    main()
