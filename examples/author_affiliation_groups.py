"""Mining research-group hierarchies from an author-paper network.

The paper's first application example: in an author-paper bipartite graph,
k-tips reveal groups of researchers with common affiliations, and the tip
hierarchy exposes how tightly each group collaborates.  This example builds
a synthetic author-paper network with nested lab / group / collaboration
structure, decomposes the author side and prints the hierarchy, then
verifies the result against sequential BUP.

Run with::

    python examples/author_affiliation_groups.py
"""

from __future__ import annotations

import numpy as np

from repro import BipartiteGraph, bup_decomposition, receipt_decomposition
from repro.analysis import TipHierarchy, compare_results


def build_author_paper_graph(seed: int = 3) -> tuple[BipartiteGraph, dict[int, str]]:
    """Authors x papers with a core lab, a wider group and casual co-authors."""
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    roles: dict[int, str] = {}

    paper_cursor = 0

    # Core lab: 6 authors who co-sign almost every one of their 25 papers.
    core = list(range(0, 6))
    for author in core:
        roles[author] = "core lab"
    for _ in range(25):
        signers = [author for author in core if rng.random() < 0.85]
        edges.extend((author, paper_cursor) for author in signers)
        paper_cursor += 1

    # Wider group: 14 collaborators who join subsets of the lab's output and
    # also write papers among themselves.
    group = list(range(6, 20))
    for author in group:
        roles[author] = "research group"
    for _ in range(40):
        lab_signers = [author for author in core if rng.random() < 0.3]
        group_signers = [author for author in group if rng.random() < 0.35]
        signers = lab_signers + group_signers
        if len(signers) >= 2:
            edges.extend((author, paper_cursor) for author in signers)
            paper_cursor += 1

    # Casual co-authors: 80 researchers with one or two papers each, lightly
    # touching the group.
    casual = list(range(20, 100))
    for author in casual:
        roles[author] = "casual"
        for _ in range(int(rng.integers(1, 3))):
            if rng.random() < 0.2:
                partner_paper = int(rng.integers(0, max(paper_cursor, 1)))
                edges.append((author, partner_paper))
            else:
                edges.append((author, paper_cursor))
                paper_cursor += 1

    graph = BipartiteGraph(100, paper_cursor, np.unique(np.array(edges), axis=0),
                           name="author-paper")
    return graph, roles


def main() -> None:
    graph, roles = build_author_paper_graph()
    print(f"author-paper network: {graph.n_u} authors, {graph.n_v} papers, {graph.n_edges} edges")

    result = receipt_decomposition(graph, side="U", n_partitions=8)
    reference = bup_decomposition(graph, "U")
    agreement = compare_results(reference, result)
    print(f"RECEIPT matches sequential BUP: {agreement.passed}")

    # Average tip number per role: the nested structure shows up as
    # increasing density from casual co-authors to the core lab.
    tips = result.tip_numbers
    print("\naverage tip number by role:")
    for role in ("core lab", "research group", "casual"):
        members = [author for author, author_role in roles.items() if author_role == role]
        print(f"  {role:>15}: {np.mean(tips[members]):12.1f}  (n={len(members)})")

    # Print a condensed view of the hierarchy: how many authors survive at
    # exponentially spaced levels.
    hierarchy = TipHierarchy(graph, result)
    print("\nk-tip hierarchy (authors with tip number >= k):")
    levels = np.unique(np.geomspace(1, max(result.max_tip_number, 1), num=8).astype(int))
    for level in levels:
        members = hierarchy.vertices_at(int(level))
        core_members = sum(1 for author in members if roles[int(author)] == "core lab")
        print(f"  k = {int(level):>6}: {members.size:>3} authors ({core_members} from the core lab)")

    top_tip = hierarchy.strongest_tip()
    print(f"\ndensest tip ({result.max_tip_number}): authors {sorted(int(a) for a in top_tip)} "
          f"-> roles {sorted(set(roles[int(a)] for a in top_tip))}")


if __name__ == "__main__":
    main()
