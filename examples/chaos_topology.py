"""Chaos smoke: a replicated topology survives a seeded fault schedule.

The resilience runbook (docs/RESILIENCE.md) promises that under injected
faults the serving tier fails *requests*, never *answers*, and that a
follower which diverged on a corrupted record re-bootstraps from a leader
snapshot without operator action.  This script proves both over real
HTTP, deterministically — the same seed always injects the same faults:

1. decompose a planted-community graph and persist a ``*.tipidx``
   artifact; copy it for one **leader** (2-shard router) and two
   **followers**,
2. arm a seeded :class:`~repro.service.faults.FaultPlan` that drops and
   corrupts replication pushes (every rule count-capped, so the schedule
   provably clears),
3. apply live edge updates at the leader while the faults fire — pushes
   fail or deliver tampered records, marking a follower *diverged*,
4. wait for automatic recovery: the poll path detects the divergence,
   fetches ``/replication/snapshot``, re-bootstraps, and converges to
   lag 0,
5. prove the reads: ``/theta/batch`` byte-identical on all three
   servers, and print the recovery evidence (resync count, breaker and
   fault-injection metrics).

Run with::

    python examples/chaos_topology.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.datasets import load_dataset
from repro.service import build_index_artifact, faults
from repro.service.faults import FaultPlan
from repro.service.replication import ReplicationCoordinator
from repro.service.server import TipService

from replication_topology import fetch, fetch_raw, make_updates, post, serve

#: Deterministic chaos schedule: the first two pushes are dropped, the
#: next two deliver records tampered in flight (forcing divergence + the
#: snapshot re-bootstrap), and every poll is delayed a little.  All rules
#: are count-capped, so the schedule exhausts and recovery must follow.
FAULT_PLAN = ("replication.push:drop:count=2;"
              "replication.push:corrupt:count=2;"
              "replication.poll:delay:ms=5:count=8")
FAULT_SEED = 20


def main() -> None:
    graph = load_dataset("it", scale=0.1, seed=5)
    print(f"graph: |U|={graph.n_u} |V|={graph.n_v} |E|={graph.n_edges}")
    updates = make_updates(graph)

    with tempfile.TemporaryDirectory() as workdir:
        work = Path(workdir)
        source = work / "it.tipidx"
        build_index_artifact(
            graph, source, side="U", algorithm="receipt", n_partitions=8)

        replicas = {}
        for name in ("leader", "follower-1", "follower-2"):
            dest = work / name / "it.tipidx"
            dest.parent.mkdir()
            shutil.copytree(source, dest)
            replicas[name] = dest

        f1 = TipService([replicas["follower-1"]])
        f1_srv, f1_url = serve(f1)
        f2 = TipService([replicas["follower-2"]])
        f2_srv, f2_url = serve(f2)

        leader = TipService([replicas["leader"]], shards=2)
        lcoord = ReplicationCoordinator(
            leader, role="leader", log_path=work / "leader.replog",
            follower_urls=(f1_url, f2_url))
        lcoord.start()
        leader_srv, leader_url = serve(leader)
        print(f"\nleader   {leader_url}  (2 shards, replication log, "
              "push fan-out)")

        fcoords = []
        for service, url in ((f1, f1_url), (f2, f2_url)):
            fcoord = ReplicationCoordinator(
                service, role="follower", leader_url=leader_url,
                poll_interval=0.2)
            fcoord.start()
            fcoords.append(fcoord)
            print(f"follower {url}  (poll every 0.2s)")

        plan = FaultPlan.parse(FAULT_PLAN, seed=FAULT_SEED)
        print(f"\nfault plan ARMED (seed {FAULT_SEED}): "
              + "; ".join(f"{r.site}:{r.action}x{r.count}"
                          for r in plan.rules))

        try:
            with faults.armed(plan):
                for i, batch in enumerate(updates, start=1):
                    answer = post(leader_url, "/update", dict(batch))
                    print(f"update {i}: offset "
                          f"{answer['replication']['offset']} "
                          "(pushes may be dropped or corrupted)")
                    # Let the followers catch up between updates so the
                    # corrupt pushes hit replicas that are current — a
                    # tampered record then *must* mark divergence.
                    time.sleep(0.5)

                # Recovery must happen *while* the plan is still armed —
                # the count-capped rules simply run out of budget.
                deadline = time.time() + 60
                statuses = []
                while time.time() < deadline:
                    statuses = [fetch(url, "/replication/status")
                                for url in (f1_url, f2_url)]
                    if all(s["offset"] == len(updates) and s["lag"] == 0
                           and s["diverged"] is None for s in statuses):
                        break
                    time.sleep(0.1)
                else:
                    raise SystemExit(
                        f"followers never recovered: {statuses}")
                resilience = fetch(leader_url, "/stats")["resilience"]

            injected = plan.stats()
            print(f"\nfaults injected: {injected['injected_total']} "
                  f"({injected['by_site']})")
            resyncs = [s["resyncs"] for s in statuses]
            assert sum(resyncs) >= 1, (
                "the corrupted pushes should have forced at least one "
                f"snapshot re-bootstrap, got resyncs={resyncs}")
            print(f"converged: both followers at offset {len(updates)}, "
                  f"lag 0 (snapshot resyncs per follower: {resyncs})")

            probe = "/theta/batch?vertices=" + ",".join(
                str(v) for v in range(0, graph.n_u, max(1, graph.n_u // 64)))
            want = fetch_raw(leader_url, probe)
            assert fetch_raw(f1_url, probe) == want
            assert fetch_raw(f2_url, probe) == want
            print("reads after chaos: /theta/batch byte-identical on "
                  "leader and both followers")

            print(f"leader resilience: retries="
                  f"{resilience['retry']['retries_total']} "
                  f"breakers={[b['state'] for b in resilience['breakers']]} "
                  f"faults_injected={resilience['faults']['injected_total']}")
        finally:
            lcoord.stop()
            for fcoord in fcoords:
                fcoord.stop()
            for srv in (leader_srv, f1_srv, f2_srv):
                srv.shutdown()
                srv.server_close()
    print("\ndone: arm the same schedule from the shell with "
          "`repro serve --fault-plan '" + FAULT_PLAN + "' "
          f"--fault-seed {FAULT_SEED}` (see docs/RESILIENCE.md).")


if __name__ == "__main__":
    main()
