"""Quickstart: tip-decompose a small bipartite graph with RECEIPT.

Run with::

    python examples/quickstart.py

The example builds a tiny user/product purchase graph from labelled edges,
counts butterflies, runs RECEIPT tip decomposition on the user side and
prints the resulting hierarchy.
"""

from __future__ import annotations

from repro import count_per_vertex, from_labelled_edges, receipt_decomposition
from repro.analysis import TipHierarchy


def main() -> None:
    # A small consumer-product purchase history.  The first four users buy
    # overlapping bundles of gadgets (a dense block of butterflies); the
    # remaining users buy one or two unrelated items.
    purchases = [
        ("ana", "laptop"), ("ana", "mouse"), ("ana", "monitor"), ("ana", "keyboard"),
        ("bob", "laptop"), ("bob", "mouse"), ("bob", "monitor"), ("bob", "keyboard"),
        ("cleo", "laptop"), ("cleo", "mouse"), ("cleo", "monitor"),
        ("dan", "laptop"), ("dan", "monitor"), ("dan", "keyboard"),
        ("eve", "novel"), ("eve", "laptop"),
        ("fred", "novel"), ("fred", "cookbook"),
        ("gina", "cookbook"),
    ]
    labelled = from_labelled_edges(purchases, name="purchases")
    graph = labelled.graph
    print(f"graph: {graph.n_u} users x {graph.n_v} products, {graph.n_edges} purchases")

    # Per-vertex butterfly counts (Alg. 1 of the paper).
    counts = count_per_vertex(graph)
    print(f"total butterflies: {counts.total_butterflies}")

    # RECEIPT tip decomposition of the user side.
    result = receipt_decomposition(graph, side="U", n_partitions=4, counts=counts)
    print(f"max tip number: {result.max_tip_number}")
    print(f"wedges traversed: {result.counters.wedges_traversed}")
    print(f"synchronization rounds: {result.counters.synchronization_rounds}")

    print("\ntip numbers by user:")
    for user, tip in sorted(labelled.tip_numbers_by_label(result.tip_numbers).items(),
                            key=lambda item: -item[1]):
        print(f"  {user:>5}: {tip}")

    # Walk the k-tip hierarchy: the densest level is the gadget-buying group.
    hierarchy = TipHierarchy(graph, result)
    top_level = result.max_tip_number
    core_users = [labelled.u_label(int(u)) for u in hierarchy.vertices_at(top_level)]
    print(f"\nusers in the {top_level}-tip (densest group): {sorted(core_users)}")


if __name__ == "__main__":
    main()
