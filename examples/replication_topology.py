"""Sharded + replicated serving topology: leader, two followers, one process.

The operator runbook (docs/SHARDING.md) walks through the same topology as
three ``repro serve`` processes in three terminals; this script runs it
in-process so CI can smoke the full loop deterministically:

1. decompose a planted-community graph and persist a ``*.tipidx`` artifact,
2. split it into a persisted θ-range shard plan (``repro shard-plan``),
3. start a **leader** (sharded, with a replication log and push fan-out)
   and **two followers** (one per copy of the artifact) over real HTTP,
4. apply live edge updates at the leader only,
5. wait for both followers to converge (offset caught up, lag 0), and
6. prove replicated reads: the same ``/theta/batch`` answer, byte for
   byte, from all three servers — then show the staleness gauges.

Run with::

    python examples/replication_topology.py
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.datasets import load_dataset
from repro.service import build_index_artifact
from repro.service.replication import ReplicationCoordinator
from repro.service.server import TipService, create_server
from repro.service.sharding import write_shard_plan


def make_updates(graph) -> tuple:
    """Three valid update batches: absent edges to insert, present to delete.

    Scanning the edge set keeps the script correct on any dataset scale —
    a hard-coded batch would 409 whenever an insert already exists.
    """
    present = set(graph.edges())
    missing = [(u, v) for u in range(graph.n_u) for v in range(graph.n_v)
               if (u, v) not in present][:5]
    first_present = next(iter(sorted(present)))
    return (
        {"insert": [list(missing[0]), list(missing[1])]},
        {"insert": [list(missing[2])], "delete": [list(first_present)]},
        {"insert": [list(missing[3]), list(missing[4])]},
    )


def fetch(base_url: str, route: str) -> dict:
    """GET ``route`` and decode the JSON body."""
    with urllib.request.urlopen(base_url + route, timeout=10) as response:
        return json.loads(response.read())


def fetch_raw(base_url: str, route: str) -> bytes:
    """GET ``route`` and return the raw body (for byte-identity checks)."""
    with urllib.request.urlopen(base_url + route, timeout=10) as response:
        return response.read()


def post(base_url: str, route: str, payload: dict) -> dict:
    """POST a JSON body to ``route`` and decode the JSON answer."""
    request = urllib.request.Request(
        base_url + route, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def serve(service: TipService) -> tuple:
    """Start a threaded server for ``service`` on a free port."""
    server = create_server([], service=service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def main() -> None:
    graph = load_dataset("it", scale=0.1, seed=5)
    print(f"graph: |U|={graph.n_u} |V|={graph.n_v} |E|={graph.n_edges}")
    updates = make_updates(graph)

    with tempfile.TemporaryDirectory() as workdir:
        work = Path(workdir)
        source = work / "it.tipidx"
        manifest = build_index_artifact(
            graph, source, side="U", algorithm="receipt", n_partitions=8)
        print(f"artifact: {manifest.name}, fingerprint "
              f"{manifest.fingerprint[:12]}...")

        # A persisted shard plan next to the artifact — `repro shard-plan`
        # writes the same directory from the shell.
        plan = write_shard_plan(source, work / "it.tipshards", 3)
        ranges = [(s["theta_min"], s["theta_max"]) for s in plan["shards"]]
        print(f"shard plan: {plan['n_shards']} θ-range shards, ranges {ranges}")

        # Each replica owns its own copy of the artifact, exactly like
        # three hosts would.
        replicas = {}
        for name in ("leader", "follower-1", "follower-2"):
            dest = work / name / "it.tipidx"
            dest.parent.mkdir()
            shutil.copytree(source, dest)
            replicas[name] = dest

        # Followers first, so the leader can push to their URLs.
        f1 = TipService([replicas["follower-1"]])
        f1_srv, f1_url = serve(f1)
        f2 = TipService([replicas["follower-2"]])
        f2_srv, f2_url = serve(f2)

        # The leader serves the *sharded* view of the same artifact — the
        # router is transport-free, so replication composes with sharding.
        leader = TipService([replicas["leader"]], shards=3)
        lcoord = ReplicationCoordinator(
            leader, role="leader", follower_urls=(f1_url, f2_url))
        lcoord.start()
        leader_srv, leader_url = serve(leader)
        print(f"\nleader   {leader_url}  (3 shards, push fan-out)")

        fcoords = []
        for service, url in ((f1, f1_url), (f2, f2_url)):
            fcoord = ReplicationCoordinator(
                service, role="follower", leader_url=leader_url,
                poll_interval=0.2)
            fcoord.start()
            fcoords.append(fcoord)
            print(f"follower {url}  (poll every 0.2s)")

        try:
            for i, batch in enumerate(updates, start=1):
                answer = post(leader_url, "/update", dict(batch))
                print(f"update {i}: replication offset "
                      f"{answer['replication']['offset']}")

            deadline = time.time() + 60
            statuses = []
            while time.time() < deadline:
                statuses = [fetch(url, "/replication/status")
                            for url in (f1_url, f2_url)]
                if all(s["offset"] == len(updates) and s["lag"] == 0
                       for s in statuses):
                    break
                time.sleep(0.1)
            else:
                raise SystemExit(f"followers never converged: {statuses}")
            print(f"\nconverged: both followers at offset {len(updates)}, "
                  "lag 0")

            probe = "/theta/batch?vertices=" + ",".join(
                str(v) for v in range(0, graph.n_u, max(1, graph.n_u // 64)))
            want = fetch_raw(leader_url, probe)
            assert fetch_raw(f1_url, probe) == want
            assert fetch_raw(f2_url, probe) == want
            print("replicated reads: /theta/batch byte-identical on "
                  "leader and both followers")

            for label, url in (("follower-1", f1_url), ("follower-2", f2_url)):
                status = fetch(url, "/replication/status")
                print(f"{label}: offset={status['offset']} "
                      f"lag={status['lag']} "
                      f"staleness={status['staleness_seconds']:.3f}s")
            leader_status = fetch(leader_url, "/replication/status")
            acked = {url: f["acked_offset"]
                     for url, f in leader_status["followers"].items()}
            print(f"leader acks: {acked}")

            scrape = fetch_raw(f1_url, "/metrics").decode()
            families = [line for line in scrape.splitlines()
                        if line.startswith("repro_replication_")
                        and not line.startswith("#")]
            print("follower-1 gauges:", *families, sep="\n  ")
        finally:
            lcoord.stop()
            for fcoord in fcoords:
                fcoord.stop()
            for srv in (leader_srv, f1_srv, f2_srv):
                srv.shutdown()
                srv.server_close()
    print("\ndone: the same topology runs from the shell with "
          "`repro serve --role leader --follower URL ...` and "
          "`repro serve --role follower --leader URL` "
          "(see docs/SHARDING.md).")


if __name__ == "__main__":
    main()
