"""Serving quickstart: build a tip-index artifact, serve it, query it.

The full serving-layer loop in one script:

1. decompose a paper-dataset stand-in with RECEIPT,
2. persist the result as a durable ``*.tipidx`` artifact
   (``repro build-index`` does the same from the shell),
3. answer θ / top-k / k-tip queries offline from the artifact — no
   re-peeling, and
4. start the JSON HTTP service on a free port and hit every endpoint the
   way a production client would (``repro serve`` + ``curl`` equivalent),
   and
5. start the asyncio batch-coalescing front end
   (``repro serve --transport async``), check it answers byte-for-byte
   like the threaded one, and exercise its NDJSON bulk protocol.

Run with::

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.datasets import load_dataset
from repro.service import (
    TipIndex,
    build_index_artifact,
    load_artifact,
    start_server_thread,
)
from repro.service.server import create_server


def fetch(base_url: str, route: str) -> dict:
    with urllib.request.urlopen(base_url + route, timeout=10) as response:
        return json.loads(response.read())


def fetch_raw(base_url: str, route: str) -> bytes:
    with urllib.request.urlopen(base_url + route, timeout=10) as response:
        return response.read()


def main() -> None:
    graph = load_dataset("it", scale=0.1, seed=5)
    print(f"graph: |U|={graph.n_u} |V|={graph.n_v} |E|={graph.n_edges}")

    with tempfile.TemporaryDirectory() as workdir:
        artifact_path = Path(workdir) / "it.tipidx"

        # 1+2: decompose and persist in one step (atomic write, fingerprinted).
        manifest = build_index_artifact(
            graph, artifact_path, side="U", algorithm="receipt", n_partitions=8,
        )
        print(f"artifact: {manifest.name}, fingerprint {manifest.fingerprint[:12]}...")

        # 3: offline queries — mmap-backed load, no re-peeling.
        index = TipIndex.from_artifact(load_artifact(artifact_path))
        top_vertices, top_thetas = index.top_k(3)
        print(f"max θ = {index.max_tip_number} over {index.n_vertices} vertices")
        print(f"top-3 vertices by θ: {top_vertices.tolist()} (θ = {top_thetas.tolist()})")
        k = max(1, index.max_tip_number // 2)
        print(f"|{k}-tip| = {index.k_tip_size(k)} vertices")

        # 4: the HTTP service (port 0 = pick a free port).
        server = create_server([artifact_path], port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base_url = f"http://{server.server_address[0]}:{server.server_address[1]}"
        print(f"\nserving on {base_url}")

        print("GET /healthz ->", fetch(base_url, "/healthz"))
        print("GET /theta?vertex=0 ->", fetch(base_url, "/theta?vertex=0"))
        batch = fetch(base_url, "/theta/batch?vertices=0,1,2,3")
        print("GET /theta/batch?vertices=0,1,2,3 ->", batch)
        print("GET /top-k?k=3 ->", fetch(base_url, "/top-k?k=3"))
        ktip = fetch(base_url, f"/k-tip?k={k}&limit=5")
        print(f"GET /k-tip?k={k}&limit=5 -> size={ktip['size']} head={ktip['vertices']}")
        community = fetch(base_url, f"/community?k={index.max_tip_number}")
        print(f"GET /community?k={index.max_tip_number} -> "
              f"{community['n_communities']} communities, "
              f"sizes {[len(c) for c in community['communities']]}")
        stats = fetch(base_url, "/stats")
        print("GET /stats -> cache", stats["cache"])

        # 5: the async batch-coalescing transport (`--transport async`):
        # same routing core, so answers are byte-for-byte identical.
        handle = start_server_thread([artifact_path])
        print(f"\nasync transport on {handle.base_url}")
        for route in ("/theta?vertex=0", "/top-k?k=3"):
            assert fetch_raw(handle.base_url, route) == fetch_raw(base_url, route)
        print("byte-identical answers across threaded and async transports")

        # NDJSON bulk: one batch request per body line.
        request = urllib.request.Request(
            handle.base_url + "/theta/batch",
            data=b'{"vertices": [0, 1, 2]}\n[3, 4]\n',
            headers={"Content-Type": "application/x-ndjson"}, method="POST")
        with urllib.request.urlopen(request, timeout=10) as response:
            lines = response.read().strip().split(b"\n")
        print("POST /theta/batch (NDJSON, 2 lines) ->",
              [json.loads(line)["thetas"] for line in lines])
        coalescer = fetch(
            handle.base_url, "/stats?fresh=1")["transport"]["coalescer"]
        print("coalescer:", {key: coalescer[key] for key in
                             ("batches_flushed", "mean_batch_size")})
        handle.stop()

        server.shutdown()
        server.server_close()
    print("\ndone: the same artifact can be rebuilt with "
          "`repro build-index` and served with `repro serve` "
          "(--transport async for the coalescing front end).")


if __name__ == "__main__":
    main()
