"""Detecting colluding spam reviewers with tip decomposition.

The paper motivates tip decomposition with spam detection in user-rating
graphs: groups of fake reviewers collaboratively rate the same set of
products and therefore appear as butterfly-dense vertex sets.  This example

1. generates a synthetic ratings graph with two planted fraud rings over an
   organic background,
2. tip-decomposes the reviewer side with RECEIPT, and
3. shows that the highest tip-number levels recover the planted rings.

Run with::

    python examples/spam_review_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import BipartiteGraph, receipt_decomposition
from repro.analysis import TipHierarchy, tip_distribution


def build_ratings_graph(seed: int = 7) -> tuple[BipartiteGraph, dict[str, set[int]]]:
    """Synthetic user x product ratings with two planted collusion rings."""
    rng = np.random.default_rng(seed)
    n_users, n_products = 400, 150
    edges: list[tuple[int, int]] = []

    # Organic behaviour: every user rates a handful of popular-ish products.
    popularity = np.linspace(3.0, 0.2, n_products)
    popularity /= popularity.sum()
    for user in range(n_users):
        rated = rng.choice(n_products, size=int(rng.integers(1, 6)), replace=False, p=popularity)
        edges.extend((user, int(product)) for product in rated)

    # Fraud ring A: 12 reviewers each rate (almost) all of 10 target products.
    ring_a_users = set(range(20, 32))
    ring_a_products = list(range(120, 130))
    for user in ring_a_users:
        for product in ring_a_products:
            if rng.random() < 0.95:
                edges.append((user, product))

    # Fraud ring B: a smaller, slightly sloppier ring.
    ring_b_users = set(range(200, 208))
    ring_b_products = list(range(135, 142))
    for user in ring_b_users:
        for product in ring_b_products:
            if rng.random() < 0.85:
                edges.append((user, product))

    graph = BipartiteGraph(n_users, n_products, np.unique(np.array(edges), axis=0),
                           name="ratings")
    return graph, {"ring_a": ring_a_users, "ring_b": ring_b_users}


def main() -> None:
    graph, rings = build_ratings_graph()
    planted = rings["ring_a"] | rings["ring_b"]
    print(f"ratings graph: {graph.n_u} users x {graph.n_v} products, {graph.n_edges} ratings")
    print(f"planted colluders: {len(planted)} users in two rings")

    result = receipt_decomposition(graph, side="U", n_partitions=16)
    distribution = tip_distribution(result)
    print(f"max tip number: {distribution.max_tip}")
    print(f"99.9% of users have tip number <= {distribution.percentile_99_9:.0f} "
          f"({100 * distribution.skew_ratio:.2f}% of the maximum)")

    # Flag the most suspicious users: those whose tip number is a sizeable
    # fraction of the maximum.  Organic reviewers sit orders of magnitude
    # below the collusion rings, so a coarse relative threshold is enough.
    threshold = max(10.0, 0.15 * distribution.max_tip)
    flagged = set(int(u) for u in np.flatnonzero(result.tip_numbers >= threshold))
    true_positives = flagged & planted
    precision = len(true_positives) / len(flagged) if flagged else 0.0
    recall = len(true_positives) / len(planted)
    print(f"\nflagged {len(flagged)} users above tip number {threshold:.0f}")
    print(f"precision: {precision:.2f}   recall: {recall:.2f}")

    # The hierarchy separates the two rings: they have no shared butterflies,
    # so they appear as distinct butterfly-connected components.
    hierarchy = TipHierarchy(graph, result)
    strong_level = int(np.percentile(result.tip_numbers[list(planted)], 10))
    components = hierarchy.tips_at(strong_level)
    big_components = [set(component.tolist()) for component in components
                      if component.size >= 5]
    print(f"\nbutterfly-connected groups at level {strong_level}:")
    for index, members in enumerate(sorted(big_components, key=len, reverse=True)):
        overlap_a = len(members & rings["ring_a"])
        overlap_b = len(members & rings["ring_b"])
        print(f"  group {index}: {len(members)} users "
              f"(ring A overlap {overlap_a}, ring B overlap {overlap_b})")


if __name__ == "__main__":
    main()
