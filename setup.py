"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that editable installs keep working in offline environments where
the ``wheel`` package (required by PEP 660 editable builds) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
