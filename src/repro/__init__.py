"""repro — a reproduction of RECEIPT: parallel tip decomposition of bipartite graphs.

The library implements the full stack described in the VLDB 2020 paper
*RECEIPT: REfine CoarsE-grained IndePendent Tasks for Parallel Tip
decomposition of Bipartite Graphs* (Lakhotia, Kannan, Prasanna, De Rose):

* a bipartite-graph substrate (:mod:`repro.graph`),
* shared vectorized wedge-traversal kernels (:mod:`repro.kernels`),
* butterfly counting kernels (:mod:`repro.butterfly`),
* the sequential (BUP) and level-synchronous parallel (ParB) peeling
  baselines (:mod:`repro.peeling`),
* the RECEIPT algorithm itself — coarse- and fine-grained decomposition
  with the HUC and DGM optimizations (:mod:`repro.core`),
* a multiprocess execution engine — shared-memory graph store plus
  pluggable serial / thread / process backends for the FD task fan-out
  (:mod:`repro.engine`),
* synthetic stand-ins for the paper's evaluation datasets
  (:mod:`repro.datasets`),
* hierarchy / distribution analysis and correctness verification
  (:mod:`repro.analysis`),
* a tip-index serving layer — persistent decomposition artifacts, a
  vectorized query engine, an LRU index cache and a JSON HTTP service
  (:mod:`repro.service`),
* a streaming update engine — batched edge deltas applied as CSR patches,
  incremental butterfly-support maintenance and bounded tip-number repair
  with live index refresh (:mod:`repro.streaming`), and
* the wing-decomposition extension of Sec. 7 (:mod:`repro.wing`).

Quickstart
----------
>>> from repro import datasets, receipt_decomposition
>>> graph = datasets.load_dataset("it", scale=0.2)
>>> result = receipt_decomposition(graph, side="U", n_partitions=16)
>>> int(result.max_tip_number) >= 0
True
"""

from . import analysis, butterfly, core, datasets, distributed, engine, graph, kernels, parallel, peeling, service, streaming, wing
from .butterfly import ButterflyCounts, count_per_edge, count_per_vertex, count_total_butterflies
from .core import (
    ReceiptConfig,
    build_cost_model,
    projected_speedups,
    receipt_decomposition,
    time_breakdown,
    tip_decomposition,
    wedge_breakdown,
)
from .errors import (
    ArtifactError,
    ArtifactMismatchError,
    BudgetExceededError,
    DatasetError,
    DecompositionError,
    GraphConstructionError,
    GraphFormatError,
    ReproError,
    ServiceError,
    StreamingError,
    VertexSideError,
)
from .graph import BipartiteGraph, from_biadjacency, from_edge_list, from_labelled_edges, load_graph
from .peeling import (
    PeelingCounters,
    TipDecompositionResult,
    bup_decomposition,
    parbutterfly_decomposition,
)
from .service import (
    IndexCache,
    TipIndex,
    TipService,
    build_index_artifact,
    load_artifact,
    save_artifact,
)
from .streaming import EdgeBatch, StreamingConfig, StreamingUpdateResult, apply_update
from .wing import WingDecompositionResult, receipt_wing_decomposition, wing_decomposition

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "analysis",
    "butterfly",
    "core",
    "datasets",
    "distributed",
    "graph",
    "kernels",
    "parallel",
    "peeling",
    "service",
    "streaming",
    "wing",
    # graphs
    "BipartiteGraph",
    "from_biadjacency",
    "from_edge_list",
    "from_labelled_edges",
    "load_graph",
    # counting
    "ButterflyCounts",
    "count_per_edge",
    "count_per_vertex",
    "count_total_butterflies",
    # decomposition
    "ReceiptConfig",
    "receipt_decomposition",
    "tip_decomposition",
    "bup_decomposition",
    "parbutterfly_decomposition",
    "TipDecompositionResult",
    "PeelingCounters",
    "wedge_breakdown",
    "time_breakdown",
    "build_cost_model",
    "projected_speedups",
    # wing extension
    "WingDecompositionResult",
    "wing_decomposition",
    "receipt_wing_decomposition",
    # serving layer
    "TipIndex",
    "IndexCache",
    "TipService",
    "build_index_artifact",
    "save_artifact",
    "load_artifact",
    # streaming updates
    "EdgeBatch",
    "StreamingConfig",
    "StreamingUpdateResult",
    "apply_update",
    # errors
    "ReproError",
    "GraphConstructionError",
    "GraphFormatError",
    "VertexSideError",
    "DecompositionError",
    "BudgetExceededError",
    "DatasetError",
    "ArtifactError",
    "ArtifactMismatchError",
    "StreamingError",
    "ServiceError",
]
