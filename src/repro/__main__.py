"""``python -m repro`` — identical to the ``repro`` console script.

Both entry paths route through :func:`repro.cli.main`, so every
sub-command (``datasets`` ... ``build-index`` / ``query`` / ``serve``)
behaves the same whether the package is installed or run from a checkout
with ``PYTHONPATH=src``.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
