"""Post-decomposition analysis: hierarchies, distributions and verification."""

from .distributions import TipDistribution, cumulative_fraction_below, tip_distribution
from .hierarchy import TipHierarchy, butterfly_connected_components, k_tip_vertices
from .verification import (
    VerificationReport,
    check_basic_invariants,
    check_k_tip_property,
    compare_results,
    verify_against_bup,
)

__all__ = [
    "TipDistribution",
    "cumulative_fraction_below",
    "tip_distribution",
    "TipHierarchy",
    "butterfly_connected_components",
    "k_tip_vertices",
    "VerificationReport",
    "check_basic_invariants",
    "check_k_tip_property",
    "compare_results",
    "verify_against_bup",
]
