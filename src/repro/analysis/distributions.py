"""Tip-number distribution summaries (Fig. 4 of the paper).

The paper observes that maximum tip numbers are enormous (a handful of
high-degree vertices share huge neighbourhoods) while the overwhelming
majority of vertices have comparatively tiny tip numbers — e.g. 99.98% of
TrU vertices sit below 0.027% of the maximum.  These helpers compute the
cumulative distribution behind that plot and the headline skew statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..peeling.base import TipDecompositionResult

__all__ = ["TipDistribution", "tip_distribution", "cumulative_fraction_below"]


@dataclass(frozen=True)
class TipDistribution:
    """Summary of a tip-number distribution.

    Attributes
    ----------
    values:
        Sorted distinct tip numbers.
    vertex_counts:
        Number of vertices per distinct value (aligned with ``values``).
    cumulative_fraction:
        Fraction of vertices with tip number less than or equal to each
        value — the y-axis of Fig. 4.
    max_tip:
        The maximum tip number.
    percentile_99_9:
        Tip number below which 99.9% of vertices fall; the ratio
        ``percentile_99_9 / max_tip`` quantifies the skew the paper
        highlights.
    """

    values: np.ndarray
    vertex_counts: np.ndarray
    cumulative_fraction: np.ndarray
    max_tip: int
    percentile_99_9: float

    @property
    def skew_ratio(self) -> float:
        """``percentile_99_9 / max_tip`` (tiny for the paper's datasets)."""
        return float(self.percentile_99_9 / self.max_tip) if self.max_tip > 0 else 1.0

    def fraction_below(self, threshold: float) -> float:
        """Fraction of vertices with tip number <= threshold."""
        position = np.searchsorted(self.values, threshold, side="right")
        if position == 0:
            return 0.0
        return float(self.cumulative_fraction[position - 1])

    def series(self) -> list[tuple[int, float]]:
        """(tip number, cumulative fraction) pairs for plotting."""
        return [
            (int(value), float(fraction))
            for value, fraction in zip(self.values, self.cumulative_fraction)
        ]


def tip_distribution(result: TipDecompositionResult) -> TipDistribution:
    """Compute the cumulative tip-number distribution of a decomposition."""
    tip_numbers = result.tip_numbers
    if tip_numbers.size == 0:
        return TipDistribution(
            values=np.zeros(0, dtype=np.int64),
            vertex_counts=np.zeros(0, dtype=np.int64),
            cumulative_fraction=np.zeros(0, dtype=np.float64),
            max_tip=0,
            percentile_99_9=0.0,
        )
    values, counts = np.unique(tip_numbers, return_counts=True)
    cumulative = np.cumsum(counts) / tip_numbers.size
    return TipDistribution(
        values=values.astype(np.int64),
        vertex_counts=counts.astype(np.int64),
        cumulative_fraction=cumulative,
        max_tip=int(values[-1]),
        percentile_99_9=float(np.percentile(tip_numbers, 99.9)),
    )


def cumulative_fraction_below(result: TipDecompositionResult, thresholds: np.ndarray) -> np.ndarray:
    """Cumulative vertex fractions at the given tip-number thresholds."""
    distribution = tip_distribution(result)
    return np.asarray([distribution.fraction_below(float(t)) for t in np.asarray(thresholds)])
