"""Construction and queries over the k-tip hierarchy.

Tip numbers are a space-efficient encoding of the full hierarchy of k-tips
(Definition 1): the vertices of every k-tip have tip number at least ``k``
and are pairwise connected through butterflies.  This module rebuilds the
hierarchy from a decomposition result — the levels, the vertex set of each
level, and the butterfly-connected components that constitute the actual
k-tips — which is what downstream applications (community extraction, spam
group detection) consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph, validate_side
from ..peeling.base import TipDecompositionResult

__all__ = ["TipHierarchy", "butterfly_connected_components", "k_tip_vertices"]


def k_tip_vertices(result: TipDecompositionResult, k: int) -> np.ndarray:
    """Vertices whose tip number is at least ``k`` (the union of all k-tips)."""
    return result.vertices_with_tip_at_least(k)


def butterfly_connected_components(
    graph: BipartiteGraph, vertices: np.ndarray, side: str = "U"
) -> list[np.ndarray]:
    """Split ``vertices`` into butterfly-connected components.

    Two same-side vertices are butterfly-adjacent when they share at least
    one butterfly, i.e. at least two common neighbours.  Components are
    computed with a union-find over the candidate vertex set; the cost is
    quadratic in the worst case and intended for the moderately sized vertex
    sets that appear at interesting hierarchy levels.
    """
    side = validate_side(side)
    vertices = np.asarray(vertices, dtype=np.int64)
    n = vertices.size
    if n == 0:
        return []
    index_of = {int(vertex): position for position, vertex in enumerate(vertices)}
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    in_set = np.zeros(graph.side_size(side), dtype=bool)
    in_set[vertices] = True

    # For every candidate vertex, aggregate wedge counts to other candidates;
    # >= 2 shared neighbours means a shared butterfly.
    from ..butterfly.wedges import wedge_counts_from_vertex

    for position, vertex in enumerate(vertices):
        counts, _ = wedge_counts_from_vertex(graph, int(vertex), side)
        partners = np.flatnonzero((counts >= 2) & in_set)
        for partner in partners:
            union(position, index_of[int(partner)])

    components: dict[int, list[int]] = {}
    for position, vertex in enumerate(vertices):
        components.setdefault(find(position), []).append(int(vertex))
    return [np.asarray(sorted(members), dtype=np.int64) for members in components.values()]


@dataclass
class TipHierarchy:
    """The k-tip hierarchy derived from a tip decomposition result.

    Attributes
    ----------
    graph:
        The decomposed graph.
    result:
        The decomposition result the hierarchy was built from.
    """

    graph: BipartiteGraph
    result: TipDecompositionResult

    @property
    def levels(self) -> np.ndarray:
        """Sorted distinct tip numbers present in the decomposition."""
        return np.unique(self.result.tip_numbers)

    def vertices_at(self, k: int) -> np.ndarray:
        """Vertices of the union of all k-tips."""
        return k_tip_vertices(self.result, k)

    def subgraph_at(self, k: int):
        """Induced subgraph (plus id mapping) on the k-tip vertex set."""
        return self.graph.induced_on_u_subset(self.vertices_at(k)) \
            if self.result.side == "U" else \
            self.graph.swap_sides().induced_on_u_subset(self.vertices_at(k))

    def tips_at(self, k: int) -> list[np.ndarray]:
        """The individual k-tips: butterfly-connected components at level ``k``."""
        return butterfly_connected_components(self.graph, self.vertices_at(k), self.result.side)

    def strongest_tip(self) -> np.ndarray:
        """Vertices of the densest non-trivial level (maximum tip number)."""
        top = self.result.max_tip_number
        return self.vertices_at(top) if top > 0 else np.zeros(0, dtype=np.int64)

    def level_sizes(self) -> dict[int, int]:
        """Number of vertices at or above each distinct tip number."""
        tip_numbers = self.result.tip_numbers
        return {int(level): int(np.count_nonzero(tip_numbers >= level)) for level in self.levels}
