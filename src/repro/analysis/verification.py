"""Correctness checks for tip decompositions.

Three layers of verification are provided, in increasing cost:

1. :func:`check_basic_invariants` — cheap sanity conditions every valid
   decomposition satisfies (bounds, zero-support vertices).
2. :func:`check_k_tip_property` — the defining property of the hierarchy:
   at every level ``k`` present in the result, each vertex of the level-``k``
   vertex set participates in at least ``k`` butterflies *within* that set.
3. :func:`compare_results` / :func:`verify_against_bup` — cross-algorithm
   agreement, the strongest practical check (BUP's correctness is
   established in prior work and in Theorem 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..butterfly.naive import count_per_vertex_wedge_restricted
from ..graph.bipartite import BipartiteGraph
from ..peeling.base import TipDecompositionResult

__all__ = [
    "VerificationReport",
    "check_basic_invariants",
    "check_k_tip_property",
    "compare_results",
    "verify_against_bup",
]


@dataclass
class VerificationReport:
    """Outcome of a verification pass."""

    passed: bool
    failures: list[str] = field(default_factory=list)

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        return VerificationReport(
            passed=self.passed and other.passed,
            failures=self.failures + other.failures,
        )


def check_basic_invariants(
    graph: BipartiteGraph, result: TipDecompositionResult
) -> VerificationReport:
    """Cheap invariants: sizes, non-negativity, tip <= butterfly count."""
    failures: list[str] = []
    expected_size = graph.side_size(result.side)
    if result.tip_numbers.shape[0] != expected_size:
        failures.append(
            f"result has {result.tip_numbers.shape[0]} tip numbers, expected {expected_size}"
        )
    if result.tip_numbers.size and result.tip_numbers.min() < 0:
        failures.append("negative tip numbers present")
    over = np.flatnonzero(result.tip_numbers > result.initial_butterflies)
    if over.size:
        failures.append(
            f"{over.size} vertices have tip number above their butterfly count "
            f"(first: vertex {int(over[0])})"
        )
    zero_support = np.flatnonzero((result.initial_butterflies == 0) & (result.tip_numbers != 0))
    if zero_support.size:
        failures.append(f"{zero_support.size} butterfly-free vertices have non-zero tip numbers")
    return VerificationReport(passed=not failures, failures=failures)


def check_k_tip_property(
    graph: BipartiteGraph,
    result: TipDecompositionResult,
    *,
    levels: np.ndarray | None = None,
) -> VerificationReport:
    """Verify the level-wise support property of the hierarchy.

    For each checked level ``k``: in the subgraph induced on the vertices
    with tip number >= k (plus the entire other side), every such vertex
    must participate in at least ``k`` butterflies.  This is the property
    peeling maintains and the one downstream k-tip queries rely on.

    ``levels`` defaults to every distinct tip number in the result; pass a
    subset for large graphs.
    """
    working_graph = graph if result.side == "U" else graph.swap_sides()
    failures: list[str] = []
    tip_numbers = result.tip_numbers
    check_levels = np.unique(tip_numbers) if levels is None else np.unique(np.asarray(levels))
    for level in check_levels:
        if level <= 0:
            continue
        member_mask = tip_numbers >= level
        counts, _ = count_per_vertex_wedge_restricted(working_graph, "U", member_mask)
        deficient = np.flatnonzero(member_mask & (counts < level))
        if deficient.size:
            failures.append(
                f"level {int(level)}: {deficient.size} vertices have fewer than "
                f"{int(level)} butterflies within the level (first: {int(deficient[0])})"
            )
    return VerificationReport(passed=not failures, failures=failures)


def compare_results(
    first: TipDecompositionResult, second: TipDecompositionResult
) -> VerificationReport:
    """Check that two algorithms produced identical tip numbers."""
    failures: list[str] = []
    if first.side != second.side:
        failures.append(f"results decompose different sides: {first.side} vs {second.side}")
    elif first.tip_numbers.shape != second.tip_numbers.shape:
        failures.append("results have different vertex counts")
    else:
        differences = np.flatnonzero(first.tip_numbers != second.tip_numbers)
        if differences.size:
            vertex = int(differences[0])
            failures.append(
                f"{differences.size} vertices differ; first difference at vertex {vertex}: "
                f"{first.algorithm}={int(first.tip_numbers[vertex])} vs "
                f"{second.algorithm}={int(second.tip_numbers[vertex])}"
            )
    return VerificationReport(passed=not failures, failures=failures)


def verify_against_bup(
    graph: BipartiteGraph, result: TipDecompositionResult
) -> VerificationReport:
    """Re-run sequential BUP and compare tip numbers (the strongest check)."""
    from ..peeling.bup import bup_decomposition

    reference = bup_decomposition(graph, result.side)
    report = compare_results(reference, result)
    return check_basic_invariants(graph, result).merge(report)
