"""Butterfly (2,2-biclique) counting kernels."""

from .counting import (
    ButterflyCounts,
    count_per_vertex,
    count_per_vertex_parallel,
    count_per_vertex_priority,
    count_total_butterflies,
)
from .naive import (
    count_butterflies_exhaustive,
    count_per_vertex_wedge,
    count_per_vertex_wedge_restricted,
    enumerate_butterflies,
)
from .per_edge import EdgeButterflyCounts, count_per_edge
from .wedges import (
    iterate_wedges,
    pair_wedge_count,
    shared_butterflies,
    total_wedges,
    wedge_counts_from_vertex,
)

__all__ = [
    "ButterflyCounts",
    "count_per_vertex",
    "count_per_vertex_parallel",
    "count_per_vertex_priority",
    "count_total_butterflies",
    "count_butterflies_exhaustive",
    "count_per_vertex_wedge",
    "count_per_vertex_wedge_restricted",
    "enumerate_butterflies",
    "EdgeButterflyCounts",
    "count_per_edge",
    "iterate_wedges",
    "pair_wedge_count",
    "shared_butterflies",
    "total_wedges",
    "wedge_counts_from_vertex",
]
