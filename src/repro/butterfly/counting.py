"""Per-vertex butterfly counting (Alg. 1 of the paper).

The production kernel is the *vertex-priority* algorithm of Chiba &
Nishizeki as refined by Wang et al.: vertices are ranked by decreasing
degree and a wedge ``sp - mp - ep`` is traversed only from the start vertex
``sp`` when the end point ``ep`` outranks both ``sp`` and ``mp``.  This
bounds traversal by ``O(sum_{(u,v) in E} min(d_u, d_v)) = O(alpha * m)``
wedges while still attributing every butterfly to all four of its vertices.

Three entry points are provided:

* :func:`count_per_vertex` — the public API; picks an algorithm by name.
* :func:`count_per_vertex_priority` — sequential vertex-priority counting.
* :func:`count_per_vertex_parallel` — the same kernel executed over an
  :class:`~repro.parallel.threadpool.ExecutionContext` with per-thread
  buffers (the "batch aggregation" mode of ParButterfly that the paper
  adopts for support initialisation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..graph.bipartite import BipartiteGraph
from ..graph.relabel import degree_priority
from ..kernels.wedges import ranked_wedge_pairs
from ..parallel.threadpool import ExecutionContext
from .naive import count_per_vertex_wedge

__all__ = [
    "ButterflyCounts",
    "count_per_vertex",
    "count_per_vertex_priority",
    "count_per_vertex_parallel",
    "count_total_butterflies",
]


@dataclass(frozen=True)
class ButterflyCounts:
    """Per-vertex butterfly counts for both sides plus traversal statistics.

    Attributes
    ----------
    u_counts, v_counts:
        ``u_counts[u]`` is the number of butterflies vertex ``u`` (of side
        ``U``) participates in; likewise for ``v_counts``.
    wedges_traversed:
        Wedge endpoints touched by the counting kernel.
    algorithm:
        Name of the kernel that produced the counts.
    """

    u_counts: np.ndarray
    v_counts: np.ndarray
    wedges_traversed: int
    algorithm: str

    @property
    def total_butterflies(self) -> int:
        """Total number of butterflies in the graph.

        Every butterfly has exactly two vertices on each side, so the total
        is half the sum of either side's per-vertex counts.
        """
        return int(self.u_counts.sum()) // 2

    def counts(self, side: str) -> np.ndarray:
        """Per-vertex counts for the requested side."""
        return self.u_counts if side.upper() == "U" else self.v_counts


@dataclass(frozen=True)
class _RankedAdjacency:
    """Adjacency lists re-sorted by global degree rank, per side."""

    # neighbors_by_rank[vertex] lists neighbor ids ordered by increasing rank
    # (i.e. decreasing degree); neighbor_ranks[vertex] carries their ranks so
    # prefix cut-offs are a binary search away.
    neighbors_by_rank: list[np.ndarray]
    neighbor_ranks: list[np.ndarray]


def _rank_sorted_adjacency(graph: BipartiteGraph, side: str, opposite_rank: np.ndarray) -> _RankedAdjacency:
    neighbors_by_rank: list[np.ndarray] = []
    neighbor_ranks: list[np.ndarray] = []
    for vertex in range(graph.side_size(side)):
        neighbors = graph.neighbors(vertex, side)
        ranks = opposite_rank[neighbors]
        order = np.argsort(ranks, kind="stable")
        neighbors_by_rank.append(neighbors[order])
        neighbor_ranks.append(ranks[order])
    return _RankedAdjacency(neighbors_by_rank=neighbors_by_rank, neighbor_ranks=neighbor_ranks)


def _count_from_starts(
    graph: BipartiteGraph,
    start_side: str,
    start_vertices: np.ndarray,
    start_ranks: np.ndarray,
    mid_ranks: np.ndarray,
    start_adjacency: _RankedAdjacency,
    mid_adjacency: _RankedAdjacency,
    same_counts: np.ndarray,
    other_counts: np.ndarray,
) -> int:
    """Process a batch of start vertices, accumulating counts in place.

    Returns the number of wedges traversed.  ``same_counts`` indexes the
    start side and ``other_counts`` the middle side.
    """
    n_same = same_counts.shape[0]
    wedge_buffer = np.zeros(n_same, dtype=np.int64)
    wedges_traversed = 0

    for start in start_vertices:
        start = int(start)
        start_rank = int(start_ranks[start])
        mids = start_adjacency.neighbors_by_rank[start]
        if mids.size == 0:
            continue
        touched: list[np.ndarray] = []
        per_mid: list[tuple[int, np.ndarray]] = []
        for mid in mids:
            mid = int(mid)
            cutoff = min(start_rank, int(mid_ranks[mid]))
            candidate_ranks = mid_adjacency.neighbor_ranks[mid]
            prefix = int(np.searchsorted(candidate_ranks, cutoff, side="left"))
            if prefix == 0:
                continue
            endpoints = mid_adjacency.neighbors_by_rank[mid][:prefix]
            wedge_buffer[endpoints] += 1
            wedges_traversed += prefix
            touched.append(endpoints)
            per_mid.append((mid, endpoints))
        if not touched:
            continue

        unique_endpoints = np.unique(np.concatenate(touched))
        pair_wedges = wedge_buffer[unique_endpoints]
        pair_butterflies = pair_wedges * (pair_wedges - 1) // 2
        # Same-side contribution: the endpoint and the start vertex each gain
        # C(wedges, 2) butterflies for this (start, endpoint) pair.
        same_counts[unique_endpoints] += pair_butterflies
        same_counts[start] += int(pair_butterflies.sum())
        # Opposite-side contribution: the middle vertex of a wedge pairs with
        # the other (wedges - 1) wedges sharing the same endpoint.
        for mid, endpoints in per_mid:
            other_counts[mid] += int(wedge_buffer[endpoints].sum()) - endpoints.size

        wedge_buffer[unique_endpoints] = 0

    return wedges_traversed


def _count_wedges_through_mids(
    graph: BipartiteGraph,
    mid_side: str,
    mid_ranks: np.ndarray,
    endpoint_ranks: np.ndarray,
    endpoint_counts: np.ndarray,
    mid_counts: np.ndarray,
) -> int:
    """Vectorised traversal of all priority-filtered wedges centred on ``mid_side``.

    For every middle vertex ``mp`` the wedges ``sp - mp - ep`` with
    ``rank(ep) < rank(mp)`` and ``rank(ep) < rank(sp)`` are enumerated by
    the shared :func:`~repro.kernels.wedges.ranked_wedge_pairs` kernel (the
    exact wedge set Alg. 1 visits), then butterflies are attributed to the
    endpoints (``C(pair wedges, 2)`` each) and to the middle vertices
    (``pair wedges - 1`` per wedge) in a single grouped pass.  All
    aggregation is integer ``np.add.at`` — float-weighted ``np.bincount``
    would silently lose precision once counts exceed 2**53.  Returns the
    number of wedges traversed.
    """
    n_endpoint_side = endpoint_counts.shape[0]
    offsets, neighbors = graph.csr(mid_side)
    all_sp, all_ep, all_mid = ranked_wedge_pairs(
        offsets, neighbors, mid_ranks, endpoint_ranks
    )
    if all_sp.size == 0:
        return 0

    pair_keys = all_sp * np.int64(n_endpoint_side) + all_ep
    unique_keys, inverse, pair_wedges = np.unique(
        pair_keys, return_inverse=True, return_counts=True
    )
    pair_sp = unique_keys // n_endpoint_side
    pair_ep = unique_keys % n_endpoint_side
    pair_butterflies = pair_wedges * (pair_wedges - 1) // 2

    np.add.at(endpoint_counts, pair_sp, pair_butterflies)
    np.add.at(endpoint_counts, pair_ep, pair_butterflies)
    mid_contribution = pair_wedges[inverse] - 1
    np.add.at(mid_counts, all_mid, mid_contribution)
    return int(all_sp.shape[0])


def count_per_vertex_priority(graph: BipartiteGraph) -> ButterflyCounts:
    """Sequential vertex-priority per-vertex butterfly counting (Alg. 1).

    The implementation enumerates the priority-filtered wedges from the
    middle vertices instead of the start vertices; the wedge set, the work
    bound and the resulting counts are identical to Alg. 1, but the grouped
    aggregation vectorises far better in numpy.
    """
    priority = degree_priority(graph)
    u_counts = np.zeros(graph.n_u, dtype=np.int64)
    v_counts = np.zeros(graph.n_v, dtype=np.int64)

    # Wedges with endpoints in U are centred on V vertices and vice versa.
    wedges = _count_wedges_through_mids(
        graph, "V", priority.v_rank, priority.u_rank, u_counts, v_counts
    )
    wedges += _count_wedges_through_mids(
        graph, "U", priority.u_rank, priority.v_rank, v_counts, u_counts
    )
    return ButterflyCounts(u_counts=u_counts, v_counts=v_counts,
                           wedges_traversed=wedges, algorithm="vertex-priority")


def count_per_vertex_parallel(
    graph: BipartiteGraph, context: ExecutionContext | None = None
) -> ButterflyCounts:
    """Vertex-priority counting parallelised over start vertices.

    Start vertices are split into work-balanced chunks; every chunk
    accumulates into private buffers which are merged after the implicit
    barrier, mirroring the batch-aggregation mode the paper adopts from
    ParButterfly.  Counts are identical to the sequential kernel.
    """
    context = context or ExecutionContext()
    priority = degree_priority(graph)
    u_adjacency = _rank_sorted_adjacency(graph, "U", priority.v_rank)
    v_adjacency = _rank_sorted_adjacency(graph, "V", priority.u_rank)

    u_counts = np.zeros(graph.n_u, dtype=np.int64)
    v_counts = np.zeros(graph.n_v, dtype=np.int64)
    total_wedges = 0

    for side, start_count, start_ranks, mid_ranks, start_adj, mid_adj, same_target, other_target in (
        ("U", graph.n_u, priority.u_rank, priority.v_rank, u_adjacency, v_adjacency, u_counts, v_counts),
        ("V", graph.n_v, priority.v_rank, priority.u_rank, v_adjacency, u_adjacency, v_counts, u_counts),
    ):
        starts = np.arange(start_count)
        work = graph.degrees(side).astype(np.float64)

        def chunk_body(chunk, *, _side=side, _ranks=start_ranks, _mid_ranks=mid_ranks,
                       _start_adj=start_adj, _mid_adj=mid_adj,
                       _n_same=same_target.shape[0], _n_other=other_target.shape[0]):
            local_same = np.zeros(_n_same, dtype=np.int64)
            local_other = np.zeros(_n_other, dtype=np.int64)
            traversed = _count_from_starts(
                graph, _side, np.asarray(chunk, dtype=np.int64), _ranks, _mid_ranks,
                _start_adj, _mid_adj, local_same, local_other,
            )
            return local_same, local_other, traversed

        results = context.map_chunks(
            list(starts), chunk_body, name=f"pvBcnt[{side}]", work_per_item=list(work)
        )
        for local_same, local_other, traversed in results:
            same_target += local_same
            other_target += local_other
            total_wedges += traversed

    return ButterflyCounts(u_counts=u_counts, v_counts=v_counts,
                           wedges_traversed=total_wedges, algorithm="vertex-priority-parallel")


def count_per_vertex(
    graph: BipartiteGraph,
    *,
    algorithm: str = "vertex-priority",
    context: ExecutionContext | None = None,
) -> ButterflyCounts:
    """Count per-vertex butterflies with the requested algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph.
    algorithm:
        ``"vertex-priority"`` (default, Alg. 1), ``"parallel"`` (the same
        kernel over an execution context), or ``"wedge"`` (simple wedge
        aggregation, mainly for cross-checking).
    context:
        Execution context for the parallel kernel.
    """
    if algorithm == "vertex-priority":
        return count_per_vertex_priority(graph)
    if algorithm == "parallel":
        return count_per_vertex_parallel(graph, context)
    if algorithm == "wedge":
        u_counts, wedges_u = count_per_vertex_wedge(graph, "U")
        v_counts, wedges_v = count_per_vertex_wedge(graph, "V")
        return ButterflyCounts(u_counts=u_counts, v_counts=v_counts,
                               wedges_traversed=wedges_u + wedges_v, algorithm="wedge")
    raise ReproError(f"unknown butterfly counting algorithm {algorithm!r}")


def count_total_butterflies(graph: BipartiteGraph) -> int:
    """Total number of butterflies in the graph (``⋈_G`` in Table 2)."""
    return count_per_vertex_priority(graph).total_butterflies
