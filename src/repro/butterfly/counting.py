"""Per-vertex butterfly counting (Alg. 1 of the paper).

The production kernel is the *vertex-priority* algorithm of Chiba &
Nishizeki as refined by Wang et al.: vertices are ranked by decreasing
degree and a wedge ``sp - mp - ep`` is traversed only from the start vertex
``sp`` when the end point ``ep`` outranks both ``sp`` and ``mp``.  This
bounds traversal by ``O(sum_{(u,v) in E} min(d_u, d_v)) = O(alpha * m)``
wedges while still attributing every butterfly to all four of its vertices.

The enumeration is *start-major*: a rank-sorted adjacency index is built
once per side (:func:`_build_ranked_index`), the rank-filtered wedge prefix
of every ``(start, mid)`` edge is located with one global ``searchsorted``,
and the wedge endpoints are gathered and aggregated start-by-start in
wedge-budgeted chunks.  Because every wedge of a ``(start, endpoint)`` pair
is enumerated under its start vertex, chunking over starts folds partial
``C(wedges, 2)`` results into the running per-vertex counts *exactly* —
peak scratch is bounded by the workspace's wedge budget while counts and
the wedge-traversal counter stay bit-identical to the monolithic
enumeration (the wedge set is precisely the one Alg. 1 visits).

Three entry points are provided:

* :func:`count_per_vertex` — the public API; picks an algorithm by name.
* :func:`count_per_vertex_priority` — sequential vertex-priority counting.
* :func:`count_per_vertex_parallel` — the same kernel executed over an
  :class:`~repro.parallel.threadpool.ExecutionContext` with per-thread
  buffers (the "batch aggregation" mode of ParButterfly that the paper
  adopts for support initialisation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..graph.bipartite import BipartiteGraph
from ..graph.relabel import degree_priority
from ..kernels.csr import (
    gather_ranges,
    gather_rows,
    segment_ids,
    segment_offsets,
    segment_sums,
)
from ..kernels.workspace import (
    WedgeWorkspace,
    budget_spans,
    workspace_or_default,
)
from ..parallel.threadpool import ExecutionContext
from .naive import count_per_vertex_wedge

__all__ = [
    "ButterflyCounts",
    "count_per_vertex",
    "count_per_vertex_priority",
    "count_per_vertex_parallel",
    "count_total_butterflies",
]


@dataclass(frozen=True)
class ButterflyCounts:
    """Per-vertex butterfly counts for both sides plus traversal statistics.

    Attributes
    ----------
    u_counts, v_counts:
        ``u_counts[u]`` is the number of butterflies vertex ``u`` (of side
        ``U``) participates in; likewise for ``v_counts``.
    wedges_traversed:
        Wedge endpoints touched by the counting kernel.
    algorithm:
        Name of the kernel that produced the counts.
    """

    u_counts: np.ndarray
    v_counts: np.ndarray
    wedges_traversed: int
    algorithm: str

    @property
    def total_butterflies(self) -> int:
        """Total number of butterflies in the graph.

        Every butterfly has exactly two vertices on each side, so the total
        is half the sum of either side's per-vertex counts.
        """
        return int(self.u_counts.sum()) // 2

    def counts(self, side: str) -> np.ndarray:
        """Per-vertex counts for the requested side."""
        return self.u_counts if side.upper() == "U" else self.v_counts


@dataclass(frozen=True)
class _RankedWedgeIndex:
    """Rank-sorted flat CSR of one (middle) side plus its lookup keys.

    ``neighbors`` holds every middle vertex's endpoint-side neighbours
    sorted by increasing endpoint rank; ``entry_keys[e] = mid(e) *
    rank_bound + rank(neighbor(e))`` is then globally sorted, so the
    rank-filtered prefix length of any ``(mid, cutoff)`` query is one
    ``searchsorted`` away.  Neighbor ids are narrowed to int32 when the
    endpoint side fits, halving the bytes of every wedge gather.
    """

    offsets: np.ndarray
    neighbors: np.ndarray
    entry_keys: np.ndarray
    rank_bound: int


def _build_ranked_index(
    graph: BipartiteGraph,
    mid_side: str,
    endpoint_ranks: np.ndarray,
    workspace: WedgeWorkspace,
) -> _RankedWedgeIndex:
    offsets, neighbors = graph.csr(mid_side)
    lengths = np.diff(offsets)
    mid_of_entry = segment_ids(lengths)
    neighbor_ranks = endpoint_ranks[neighbors]
    order = np.lexsort((neighbor_ranks, mid_of_entry))
    # Ranks are a global permutation of U ∪ V, so cutoff queries range up
    # to the total vertex count.
    rank_bound = graph.n_u + graph.n_v + 1
    return _RankedWedgeIndex(
        offsets=offsets,
        neighbors=neighbors[order].astype(
            workspace.ids_dtype(endpoint_ranks.shape[0])
        ),
        entry_keys=mid_of_entry * np.int64(rank_bound) + neighbor_ranks[order],
        rank_bound=rank_bound,
    )


def _fold_priority_starts(
    graph: BipartiteGraph,
    start_side: str,
    starts: np.ndarray,
    endpoint_ranks: np.ndarray,
    mid_ranks: np.ndarray,
    index: _RankedWedgeIndex,
    endpoint_counts: np.ndarray,
    mid_counts: np.ndarray,
    workspace: WedgeWorkspace,
) -> int:
    """Aggregate every priority-filtered wedge of the given start vertices.

    For each start ``sp`` the wedges ``sp - mp - ep`` with ``rank(ep) <
    min(rank(sp), rank(mp))`` are gathered through the ranked index and
    grouped by ``(start, endpoint)`` pair: the pair's two endpoint-side
    vertices each gain ``C(wedges, 2)`` butterflies and every wedge's
    middle vertex gains ``wedges - 1``.  Work is streamed in
    wedge-budgeted spans of starts; partial sums fold exactly because a
    pair's wedges never cross its start's span.  Returns the number of
    wedges traversed (one per gathered endpoint).
    """
    start_offsets, start_neighbors = graph.csr(start_side)
    mids, mids_per_start = gather_rows(start_offsets, start_neighbors, starts)
    if mids.size == 0:
        return 0
    # Rank-filtered prefix length of every (start, mid) edge in one global
    # searchsorted over the index keys.
    cutoffs = np.minimum(
        np.repeat(endpoint_ranks[starts], mids_per_start), mid_ranks[mids]
    )
    positions = np.searchsorted(
        index.entry_keys, mids * np.int64(index.rank_bound) + cutoffs, side="left"
    )
    row_starts = index.offsets[mids]
    prefix = positions - row_starts
    wedges_per_start = segment_sums(prefix, mids_per_start)
    entry_offsets = segment_offsets(mids_per_start)

    n_endpoint = np.int64(endpoint_counts.shape[0])
    wedges_traversed = 0
    for lo, hi in budget_spans(wedges_per_start, workspace.wedge_budget):
        e_lo, e_hi = int(entry_offsets[lo]), int(entry_offsets[hi])
        endpoints = gather_ranges(
            index.neighbors, row_starts[e_lo:e_hi], prefix[e_lo:e_hi],
            workspace=workspace, name="pc_ep",
        )
        n_wedges = int(endpoints.shape[0])
        if n_wedges == 0:
            continue
        wedges_traversed += n_wedges

        # (start, endpoint) pair keys, narrowed to the span's bound.
        span = hi - lo
        key_dtype = workspace.ids_dtype(span * int(n_endpoint))
        keys = np.repeat(
            (np.arange(span, dtype=np.int64) * n_endpoint).astype(key_dtype),
            wedges_per_start[lo:hi],
        )
        np.add(keys, endpoints, out=keys, casting="unsafe")
        sort_keys = workspace.take("pc_sort", n_wedges, key_dtype)
        np.copyto(sort_keys, keys)
        sort_keys.sort()
        boundary = workspace.take("pc_boundary", n_wedges, np.bool_)
        boundary[0] = True
        np.not_equal(sort_keys[1:], sort_keys[:-1], out=boundary[1:])
        run_starts = np.flatnonzero(boundary)
        pair_wedges = np.empty(run_starts.shape[0], dtype=np.int64)
        np.subtract(run_starts[1:], run_starts[:-1], out=pair_wedges[:-1])
        pair_wedges[-1] = n_wedges - run_starts[-1]
        unique_keys = sort_keys[run_starts]

        # Endpoint-side attribution: both pair members gain C(wedges, 2).
        pair_butterflies = pair_wedges * (pair_wedges - 1) // 2
        unique64 = unique_keys.astype(np.int64)
        pair_position = unique64 // n_endpoint
        pair_endpoint = unique64 - pair_position * n_endpoint
        np.add.at(endpoint_counts, pair_endpoint, pair_butterflies)
        np.add.at(endpoint_counts, starts[lo + pair_position], pair_butterflies)

        # Middle-vertex attribution: a wedge's mid pairs with the other
        # (pair wedges - 1) wedges sharing its (start, endpoint) key.
        pair_of_wedge = np.searchsorted(unique_keys, keys)
        contribution = workspace.take("pc_contrib", n_wedges, np.int64)
        np.take(pair_wedges, pair_of_wedge, out=contribution, mode="clip")
        contribution -= 1
        mid_of_wedge = np.repeat(mids[e_lo:e_hi], prefix[e_lo:e_hi])
        np.add.at(mid_counts, mid_of_wedge, contribution)
    return wedges_traversed


def _count_priority_side(
    graph: BipartiteGraph,
    mid_side: str,
    mid_ranks: np.ndarray,
    endpoint_ranks: np.ndarray,
    endpoint_counts: np.ndarray,
    mid_counts: np.ndarray,
    workspace: WedgeWorkspace,
) -> int:
    """All priority-filtered wedges centred on ``mid_side``, folded serially."""
    start_side = "U" if mid_side == "V" else "V"
    index = _build_ranked_index(graph, mid_side, endpoint_ranks, workspace)
    starts = np.arange(graph.side_size(start_side), dtype=np.int64)
    return _fold_priority_starts(
        graph, start_side, starts, endpoint_ranks, mid_ranks, index,
        endpoint_counts, mid_counts, workspace,
    )


def count_per_vertex_priority(
    graph: BipartiteGraph, *, workspace: WedgeWorkspace | None = None
) -> ButterflyCounts:
    """Sequential vertex-priority per-vertex butterfly counting (Alg. 1).

    The implementation enumerates the priority-filtered wedges start-major
    through the shared memory-bounded pipeline; the wedge set, the work
    bound and the resulting counts are identical to Alg. 1, but the grouped
    aggregation vectorises far better in numpy and peak scratch is capped
    by the workspace's wedge budget.
    """
    workspace = workspace_or_default(workspace)
    priority = degree_priority(graph)
    u_counts = np.zeros(graph.n_u, dtype=np.int64)
    v_counts = np.zeros(graph.n_v, dtype=np.int64)

    # Wedges with endpoints in U are centred on V vertices and vice versa.
    wedges = _count_priority_side(
        graph, "V", priority.v_rank, priority.u_rank, u_counts, v_counts, workspace
    )
    wedges += _count_priority_side(
        graph, "U", priority.u_rank, priority.v_rank, v_counts, u_counts, workspace
    )
    return ButterflyCounts(u_counts=u_counts, v_counts=v_counts,
                           wedges_traversed=wedges, algorithm="vertex-priority")


def count_per_vertex_parallel(
    graph: BipartiteGraph,
    context: ExecutionContext | None = None,
    *,
    workspace: WedgeWorkspace | None = None,
) -> ButterflyCounts:
    """Vertex-priority counting parallelised over start vertices.

    Start vertices are split into work-balanced chunks; every chunk runs
    the same start-major fold as the sequential kernel into private buffers
    which are merged after the implicit barrier, mirroring the
    batch-aggregation mode the paper adopts from ParButterfly.  Counts are
    identical to the sequential kernel (pairs never span two chunks).
    """
    context = context or ExecutionContext()
    workspace = workspace_or_default(workspace)
    priority = degree_priority(graph)

    u_counts = np.zeros(graph.n_u, dtype=np.int64)
    v_counts = np.zeros(graph.n_v, dtype=np.int64)
    total_wedges = 0

    for start_side, mid_side, start_count, endpoint_ranks, mid_ranks, same_target, other_target in (
        ("U", "V", graph.n_u, priority.u_rank, priority.v_rank, u_counts, v_counts),
        ("V", "U", graph.n_v, priority.v_rank, priority.u_rank, v_counts, u_counts),
    ):
        index = _build_ranked_index(graph, mid_side, endpoint_ranks, workspace)
        starts = np.arange(start_count)
        work = graph.degrees(start_side).astype(np.float64)

        def chunk_body(chunk, *, _start_side=start_side, _ep_ranks=endpoint_ranks,
                       _mid_ranks=mid_ranks, _index=index,
                       _n_same=same_target.shape[0], _n_other=other_target.shape[0]):
            # A private arena per chunk carrying the run's memory policy:
            # the wedge budget and narrowing apply inside workers too, and
            # the chunk's peak folds back into the run's accounting below.
            local_workspace = WedgeWorkspace(
                wedge_budget=workspace.wedge_budget,
                narrow_ids=workspace.narrow_ids,
            )
            local_same = np.zeros(_n_same, dtype=np.int64)
            local_other = np.zeros(_n_other, dtype=np.int64)
            traversed = _fold_priority_starts(
                graph, _start_side, np.asarray(chunk, dtype=np.int64),
                _ep_ranks, _mid_ranks, _index, local_same, local_other,
                local_workspace,
            )
            return local_same, local_other, traversed, local_workspace.peak_scratch_bytes

        results = context.map_chunks(
            list(starts), chunk_body, name=f"pvBcnt[{start_side}]", work_per_item=list(work)
        )
        for local_same, local_other, traversed, local_peak in results:
            same_target += local_same
            other_target += local_other
            total_wedges += traversed
            if local_peak > workspace.peak_scratch_bytes:
                workspace.peak_scratch_bytes = local_peak

    return ButterflyCounts(u_counts=u_counts, v_counts=v_counts,
                           wedges_traversed=total_wedges, algorithm="vertex-priority-parallel")


def count_per_vertex(
    graph: BipartiteGraph,
    *,
    algorithm: str = "vertex-priority",
    context: ExecutionContext | None = None,
    workspace: WedgeWorkspace | None = None,
) -> ButterflyCounts:
    """Count per-vertex butterflies with the requested algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph.
    algorithm:
        ``"vertex-priority"`` (default, Alg. 1), ``"parallel"`` (the same
        kernel over an execution context), or ``"wedge"`` (simple wedge
        aggregation, mainly for cross-checking).
    context:
        Execution context for the parallel kernel.
    workspace:
        Scratch arena + memory policy shared with the caller's wider run.
    """
    if algorithm == "vertex-priority":
        return count_per_vertex_priority(graph, workspace=workspace)
    if algorithm == "parallel":
        return count_per_vertex_parallel(graph, context, workspace=workspace)
    if algorithm == "wedge":
        u_counts, wedges_u = count_per_vertex_wedge(graph, "U")
        v_counts, wedges_v = count_per_vertex_wedge(graph, "V")
        return ButterflyCounts(u_counts=u_counts, v_counts=v_counts,
                               wedges_traversed=wedges_u + wedges_v, algorithm="wedge")
    raise ReproError(f"unknown butterfly counting algorithm {algorithm!r}")


def count_total_butterflies(graph: BipartiteGraph) -> int:
    """Total number of butterflies in the graph (``⋈_G`` in Table 2)."""
    return count_per_vertex_priority(graph).total_butterflies
