"""Reference butterfly counting implementations.

Two algorithms live here:

* :func:`enumerate_butterflies` — exhaustive enumeration of every
  ``(u1, u2, v1, v2)`` biclique.  Exponentially more expensive than the real
  algorithms, usable only on tiny graphs, but trivially correct; the test
  suite uses it as ground truth.
* :func:`count_per_vertex_wedge` — the straightforward per-vertex counting
  that aggregates wedges from every start vertex (complexity
  ``O(sum_u sum_{v in N(u)} d_v)``).  This is the "simple way" described at
  the start of Sec. 2.1 and doubles as the support-recount kernel used by
  the HUC optimization.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

import numpy as np

from ..graph.bipartite import BipartiteGraph, opposite_side, validate_side
from .wedges import wedge_counts_from_vertex

__all__ = [
    "enumerate_butterflies",
    "count_butterflies_exhaustive",
    "count_per_vertex_wedge",
    "count_per_vertex_wedge_restricted",
]


def enumerate_butterflies(graph: BipartiteGraph) -> Iterator[tuple[int, int, int, int]]:
    """Yield every butterfly as ``(u1, u2, v1, v2)`` with ``u1 < u2, v1 < v2``.

    Only suitable for tiny graphs (tests / examples).
    """
    for v1, v2 in combinations(range(graph.n_v), 2):
        common = np.intersect1d(
            graph.neighbors_v(v1), graph.neighbors_v(v2), assume_unique=True
        )
        for u1, u2 in combinations(common.tolist(), 2):
            yield int(u1), int(u2), int(v1), int(v2)


def count_butterflies_exhaustive(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-vertex and total butterfly counts by explicit enumeration."""
    u_counts = np.zeros(graph.n_u, dtype=np.int64)
    v_counts = np.zeros(graph.n_v, dtype=np.int64)
    total = 0
    for u1, u2, v1, v2 in enumerate_butterflies(graph):
        u_counts[u1] += 1
        u_counts[u2] += 1
        v_counts[v1] += 1
        v_counts[v2] += 1
        total += 1
    return u_counts, v_counts, total


def count_per_vertex_wedge(
    graph: BipartiteGraph, side: str = "U"
) -> tuple[np.ndarray, int]:
    """Per-vertex butterfly counts for one side via wedge aggregation.

    For every start vertex the wedge counts to all endpoints are aggregated
    and combined as ``C(count, 2)``.  Each butterfly incident on ``u`` is
    counted exactly once from ``u``'s perspective, so no halving is needed.

    Returns the counts and the number of wedge endpoints traversed.
    """
    side = validate_side(side)
    n_side = graph.side_size(side)
    counts = np.zeros(n_side, dtype=np.int64)
    wedges_traversed = 0
    for vertex in range(n_side):
        pair_counts, traversed = wedge_counts_from_vertex(graph, vertex, side)
        wedges_traversed += traversed
        counts[vertex] = int((pair_counts * (pair_counts - 1) // 2).sum())
    return counts, wedges_traversed


def count_per_vertex_wedge_restricted(
    graph: BipartiteGraph,
    side: str,
    alive_mask: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Wedge-aggregation counting restricted to the still-alive vertices.

    This is the recount kernel HUC invokes: butterflies are counted in the
    subgraph induced by the alive vertices of ``side`` (and the full other
    side).  Endpoint contributions from peeled vertices are masked out before
    combining wedges, so the result equals a fresh count on the residual
    graph without physically rebuilding it.
    """
    side = validate_side(side)
    other = opposite_side(side)
    n_side = graph.side_size(side)
    alive_mask = np.asarray(alive_mask, dtype=bool)
    counts = np.zeros(n_side, dtype=np.int64)
    wedges_traversed = 0
    for vertex in np.flatnonzero(alive_mask):
        centers = graph.neighbors(int(vertex), side)
        if centers.size == 0:
            continue
        pieces = [graph.neighbors(int(center), other) for center in centers]
        endpoints = np.concatenate(pieces)
        wedges_traversed += int(endpoints.size)
        endpoints = endpoints[alive_mask[endpoints]]
        pair_counts = np.bincount(endpoints, minlength=n_side)
        pair_counts[vertex] = 0
        counts[vertex] = int((pair_counts * (pair_counts - 1) // 2).sum())
    return counts, wedges_traversed
