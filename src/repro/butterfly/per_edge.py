"""Per-edge butterfly counting.

Wing decomposition (the edge-peeling analogue of tip decomposition that the
paper discusses as an extension in Sec. 7) initialises edge supports with
the number of butterflies each edge participates in.  An edge ``(u, v)``
lies in one butterfly for every pair ``(u', v')`` with ``u' ∈ N(v)\\{u}``,
``v' ∈ N(u)\\{v}`` and ``(u', v') ∈ E``; equivalently, for every other
``U``-neighbour ``u'`` of ``v`` the edge gains ``|N(u) ∩ N(u')| - 1``
butterflies (the ``-1`` removes the wedge through ``v`` itself).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..kernels.csr import gather_rows, segment_sums

__all__ = ["EdgeButterflyCounts", "count_per_edge"]


@dataclass(frozen=True)
class EdgeButterflyCounts:
    """Per-edge butterfly counts.

    Attributes
    ----------
    edges:
        ``(m, 2)`` array of ``[u, v]`` pairs in the graph's canonical edge
        order (grouped by ``u``, neighbours ascending).
    counts:
        ``counts[i]`` is the number of butterflies containing ``edges[i]``.
    wedges_traversed:
        Work performed by the counting kernel.
    """

    edges: np.ndarray
    counts: np.ndarray
    wedges_traversed: int

    @property
    def total_butterflies(self) -> int:
        """Total butterflies (each butterfly contains exactly four edges)."""
        return int(self.counts.sum()) // 4

    def as_dict(self) -> dict[tuple[int, int], int]:
        """Counts keyed by ``(u, v)`` pairs."""
        return {
            (int(u), int(v)): int(count)
            for (u, v), count in zip(self.edges, self.counts)
        }

    def edge_index(self) -> dict[tuple[int, int], int]:
        """Mapping from ``(u, v)`` to position in :attr:`edges`."""
        return {(int(u), int(v)): i for i, (u, v) in enumerate(self.edges)}


def count_per_edge(graph: BipartiteGraph) -> EdgeButterflyCounts:
    """Count butterflies per edge.

    The kernel reuses the per-start wedge aggregation: for a ``U`` vertex
    ``u`` the array ``pair_wedges[u']`` holds ``|N(u) ∩ N(u')|``; the count
    for edge ``(u, v)`` is then ``sum_{u' in N(v), u' != u}
    (pair_wedges[u'] - 1)``.  Complexity is
    ``O(sum_u sum_{v in N(u)} d_v)`` — the same bound as bottom-up peeling,
    which is acceptable because wing decomposition itself dominates it.
    """
    edges = graph.edge_array()
    counts = np.zeros(edges.shape[0], dtype=np.int64)
    wedges_traversed = 0

    offsets, _ = graph.csr("U")
    v_offsets, v_neighbors = graph.csr("V")
    pair_wedges = np.zeros(graph.n_u, dtype=np.int64)

    for u in range(graph.n_u):
        centers = graph.neighbors_u(u)
        if centers.size == 0:
            continue
        # One flat-CSR gather collects the wedge endpoints through every
        # center of ``u``; the per-center segment sums then yield each edge's
        # contribution without re-walking the neighbor lists.
        endpoints, endpoints_per_center = gather_rows(v_offsets, v_neighbors, centers)
        np.add.at(pair_wedges, endpoints, 1)
        pair_wedges[u] = 0

        edge_start = int(offsets[u])
        contributions = segment_sums(pair_wedges[endpoints], endpoints_per_center)
        counts[edge_start: edge_start + centers.size] = (
            contributions - (endpoints_per_center - 1)
        )
        # The kernel touches every endpoint twice: once to aggregate pair
        # wedges and once to read them back per edge.
        wedges_traversed += 2 * int(endpoints.size)

        # Reset the buffer for the next start vertex.
        pair_wedges[endpoints] = 0

    return EdgeButterflyCounts(edges=edges, counts=counts, wedges_traversed=wedges_traversed)
