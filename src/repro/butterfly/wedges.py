"""Wedge-level utilities.

A *wedge* is a path ``u - v - u'`` of length two.  Throughout the paper a
wedge's two *endpoints* (``u``, ``u'``) are on the peeled side and its
*center* (``v``) on the other side.  Butterflies are pairs of wedges sharing
both endpoints, so wedge exploration is the unit of work every algorithm in
this library accounts for.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..graph.bipartite import BipartiteGraph, opposite_side, validate_side

__all__ = [
    "wedge_counts_from_vertex",
    "pair_wedge_count",
    "shared_butterflies",
    "iterate_wedges",
    "total_wedges",
]


def wedge_counts_from_vertex(
    graph: BipartiteGraph, vertex: int, side: str = "U"
) -> tuple[np.ndarray, int]:
    """Wedge counts from ``vertex`` to every same-side endpoint.

    Returns
    -------
    counts:
        Array of length ``|side|``; ``counts[u']`` is the number of wedges
        ``vertex - v - u'`` (i.e. ``|N(vertex) ∩ N(u')|``).  The entry for
        ``vertex`` itself is zeroed.
    wedges_traversed:
        Number of wedge endpoints touched while computing the counts, i.e.
        ``sum_{v in N(vertex)} d_v`` — the paper's peel-work unit.
    """
    side = validate_side(side)
    other = opposite_side(side)
    centers = graph.neighbors(vertex, side)
    if centers.size == 0:
        return np.zeros(graph.side_size(side), dtype=np.int64), 0
    pieces = [graph.neighbors(int(center), other) for center in centers]
    endpoints = np.concatenate(pieces)
    counts = np.bincount(endpoints, minlength=graph.side_size(side)).astype(np.int64)
    counts[vertex] = 0
    return counts, int(endpoints.size)


def pair_wedge_count(graph: BipartiteGraph, u1: int, u2: int, side: str = "U") -> int:
    """Number of wedges between two same-side vertices (= common neighbors)."""
    side = validate_side(side)
    first = graph.neighbors(u1, side)
    second = graph.neighbors(u2, side)
    return int(np.intersect1d(first, second, assume_unique=True).size)


def shared_butterflies(graph: BipartiteGraph, u1: int, u2: int, side: str = "U") -> int:
    """Butterflies shared by two same-side vertices: ``C(common neighbors, 2)``.

    This is the quantity the peeling update subtracts from the support of
    ``u2`` when ``u1`` is deleted (and vice versa).
    """
    common = pair_wedge_count(graph, u1, u2, side)
    return common * (common - 1) // 2


def iterate_wedges(graph: BipartiteGraph, side: str = "U") -> Iterator[tuple[int, int, int]]:
    """Yield every wedge ``(endpoint_1, center, endpoint_2)`` with ordered endpoints.

    Intended for tests and tiny graphs only: the number of wedges grows with
    ``sum_v C(d_v, 2)`` which is quadratic in the center degrees.
    """
    side = validate_side(side)
    other = opposite_side(side)
    for center in range(graph.side_size(other)):
        endpoints = graph.neighbors(center, other)
        for i in range(endpoints.size):
            for j in range(i + 1, endpoints.size):
                yield int(endpoints[i]), int(center), int(endpoints[j])


def total_wedges(graph: BipartiteGraph, side: str = "U") -> int:
    """Number of wedges with both endpoints on ``side`` (``sum_v C(d_v, 2)``)."""
    return graph.wedge_endpoint_count(side)
