"""Command-line interface for the RECEIPT reproduction.

Installed as ``repro`` (with ``repro-tip`` kept as an alias, see
``pyproject.toml``) and also runnable via ``python -m repro``.
Sub-commands:

* ``datasets`` — list the registered paper-dataset stand-ins.
* ``stats`` — structural statistics of a graph (Table 2 style).
* ``count`` — per-vertex butterfly counting.
* ``decompose`` — tip decomposition with RECEIPT / BUP / ParB.
* ``compare`` — run two algorithms and verify they agree (Table 3 style).
* ``build-index`` — decompose and persist a queryable tip-index artifact.
* ``query`` — answer θ / top-k / k-tip / community queries from an
  artifact offline, without re-peeling.
* ``update`` — apply an insert/delete edge batch to an artifact through
  the streaming engine (incremental support maintenance + bounded
  tip-number repair) instead of rebuilding it.
* ``serve`` — expose one or more artifacts over the JSON HTTP API;
  ``--transport {thread,async}`` picks between the threaded server and
  the asyncio batch-coalescing front end (identical answers, the async
  one batches concurrent point-θ requests into one vectorized lookup
  per event-loop tick and admission-controls updates).  Both transports
  expose Prometheus metrics on ``GET /metrics``.  ``--shards N`` serves
  through the scatter/gather :class:`ShardRouter` (bit-identical
  answers); ``--role leader --follower URL`` / ``--role follower
  --leader URL`` run the replicated topology where the leader fans
  validated update batches out to read-only followers.
* ``shard-plan`` — split a ``*.tipidx`` artifact into per-shard
  artifacts keyed on disjoint θ ranges (the paper's CD subsets) and
  write a loadable ``tip-shard-plan`` directory.
* ``trace-summary`` — phase-time breakdown of a trace file written by
  ``--trace-out`` (available on ``decompose``, ``build-index``,
  ``compare``, ``update`` and ``serve``), mirroring the paper's
  counting / CD / FD split and covering streaming-repair and wing
  phases.
* ``bench-history`` — ingest ``BENCH_*.json`` benchmark snapshots into
  an append-only ``BENCH_history.jsonl``, show per-metric trends, and
  ``check`` fresh runs against a rolling-median baseline (non-zero exit
  on regression; the CI gate).

``decompose`` and ``build-index`` additionally take ``--profile-out
FILE`` — run under the zero-dependency sampling profiler and write a
folded-stack flamegraph input (or the full JSON payload for ``*.json``
paths) plus a top-N self-time table on stderr.

Global flags: ``--log-format {text,json}`` switches the ``repro.*``
loggers to JSON-lines output (one object per line, machine-parseable)
and ``--log-level`` sets their threshold.

``decompose`` and ``compare`` accept ``--backend {serial,thread,process}``
to pick the execution engine for RECEIPT FD's task fan-out: ``process``
places the graph in shared memory and dispatches the per-subset peels to
``--threads`` worker processes (bit-identical results, real wall-clock
scaling on multicore hardware); ``serial`` is the single-process default.
``compare`` forwards the same ``--peel-kernel`` / ``--partitions`` /
``--threads`` / ``--backend`` configuration to both algorithms so the
comparison exercises exactly the configured kernels.

Every decomposition command also accepts ``--wedge-budget N`` — the cap on
wedge endpoints a kernel chunk may materialise at once, which bounds the
wedge pipeline's peak scratch memory without changing any result; the
run's ``peak_scratch_bytes`` shows up in summaries, artifact manifests and
the ``/stats`` endpoint.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Sequence

from .analysis.verification import compare_results
from .butterfly.counting import count_per_vertex
from .core.receipt import tip_decomposition
from .datasets.registry import DATASETS, load_dataset
from .errors import ReproError
from .graph.bipartite import BipartiteGraph
from .graph.io import load_graph
from .graph.statistics import graph_statistics
from .parallel.threadpool import BACKEND_NAMES
from .peeling.update import PEEL_KERNELS

__all__ = ["main", "build_parser"]


def _load(args: argparse.Namespace) -> BipartiteGraph:
    """Load the graph named on the command line (file path or dataset key)."""
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if args.path is not None:
        return load_graph(args.path)
    raise ReproError("either --dataset or --path must be given")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="registered dataset key (it, de, or, lj, en, tr)")
    source.add_argument("--path", help="path to an edge list / KONECT / MatrixMarket file")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier for generated datasets (default 1.0)")
    parser.add_argument("--seed", type=int, default=None, help="random seed for generated datasets")


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every command that runs a decomposition."""
    parser.add_argument("--partitions", type=int, default=None,
                        help="number of RECEIPT partitions P (default: library default)")
    parser.add_argument("--peel-kernel", default="batched",
                        choices=list(PEEL_KERNELS),
                        help="support-update kernel: the vectorized batch kernel "
                             "(default) or the per-vertex reference loop "
                             "(ablation baseline)")
    parser.add_argument("--threads", type=int, default=1,
                        help="worker count for RECEIPT's execution backend")
    parser.add_argument("--backend", default="serial", choices=list(BACKEND_NAMES),
                        help="execution engine for RECEIPT FD's task fan-out: "
                             "in-process serial (default), a thread pool, or a "
                             "multiprocess worker pool over a shared-memory "
                             "graph store (bit-identical results)")
    parser.add_argument("--wedge-budget", type=int, default=None,
                        help="wedge endpoints a kernel chunk may materialise at "
                             "once — caps the wedge pipeline's peak scratch "
                             "memory (default: library default; 0 disables "
                             "chunking).  Results are bit-identical for any "
                             "budget; the run's peak_scratch_bytes is reported "
                             "in the summary")


def _algorithm_kwargs(args: argparse.Namespace, algorithm: str) -> dict:
    """Keyword arguments for one algorithm from the shared execution flags.

    Every algorithm takes the peel kernel; the RECEIPT variants additionally
    take the thread count, backend and partition count.  Building the dict
    per algorithm lets ``compare`` forward one configuration to two
    different algorithms without tripping unknown-argument errors.
    """
    kwargs: dict = {"peel_kernel": args.peel_kernel}
    if algorithm.lower().startswith("receipt"):
        kwargs["n_threads"] = args.threads
        kwargs["backend"] = args.backend
        kwargs["wedge_budget"] = args.wedge_budget
        if args.partitions is not None:
            kwargs["n_partitions"] = args.partitions
    else:
        # The sequential baselines take the memory policy as a workspace
        # object (their own ``wedge_budget`` argument is the traversal cap
        # reproducing the paper's DNF entries, a different knob).
        from .kernels.workspace import WedgeWorkspace, resolve_wedge_budget

        kwargs["workspace"] = WedgeWorkspace(
            wedge_budget=resolve_wedge_budget(args.wedge_budget)
        )
    return kwargs


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="record a phase-level execution trace and write it "
                             "to FILE as Chrome-tracing JSON; inspect with "
                             "chrome://tracing / Perfetto or summarise with "
                             "`repro trace-summary FILE`")


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile-out", default=None, metavar="FILE",
                        help="run under the sampling profiler and write the "
                             "profile to FILE: folded stacks (flamegraph.pl "
                             "input) by default, the full JSON payload when "
                             "FILE ends in .json; a top self-time table is "
                             "printed to stderr")
    parser.add_argument("--profile-interval-ms", type=float, default=5.0,
                        help="sampling interval in milliseconds (default 5)")


@contextmanager
def _maybe_profile(args: argparse.Namespace):
    """Run the with-body under ``--profile-out``'s sampling profiler."""
    profile_out = getattr(args, "profile_out", None)
    if not profile_out:
        yield
        return
    from .obs.profile import profile_to_file

    with profile_to_file(profile_out,
                         interval=args.profile_interval_ms / 1000.0):
        yield


@contextmanager
def _maybe_trace(trace_out: str | None):
    """Record spans and write the trace file when ``--trace-out`` was given.

    Yields nothing; the traced code simply runs with a recording tracer
    installed as the process-wide active tracer (zero overhead otherwise).
    """
    if not trace_out:
        yield
        return
    from .obs.report import write_trace
    from .obs.trace import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        yield
    payload = write_trace(tracer, trace_out)
    print(f"trace written to {trace_out} ({len(payload['spans'])} spans)",
          file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RECEIPT: parallel tip decomposition of bipartite graphs (reproduction)",
    )
    parser.add_argument("--log-format", default="text", choices=["text", "json"],
                        help="repro.* log output: human-readable text (default) "
                             "or JSON lines (one object per line)")
    parser.add_argument("--log-level", default="INFO",
                        help="log level for the repro.* loggers (default INFO)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list registered datasets")

    stats_parser = subparsers.add_parser("stats", help="structural statistics of a graph")
    _add_graph_arguments(stats_parser)

    count_parser = subparsers.add_parser("count", help="per-vertex butterfly counting")
    _add_graph_arguments(count_parser)
    count_parser.add_argument("--algorithm", default="vertex-priority",
                              choices=["vertex-priority", "parallel", "wedge"])

    decompose_parser = subparsers.add_parser("decompose", help="tip decomposition")
    _add_graph_arguments(decompose_parser)
    decompose_parser.add_argument("--side", default="U", choices=["U", "V", "u", "v"])
    decompose_parser.add_argument("--algorithm", default="receipt",
                                  choices=["receipt", "receipt-", "receipt--", "bup", "parb"])
    _add_execution_arguments(decompose_parser)
    decompose_parser.add_argument("--output", help="write per-vertex tip numbers to this JSON file")
    _add_trace_argument(decompose_parser)
    _add_profile_argument(decompose_parser)

    compare_parser = subparsers.add_parser("compare", help="run two algorithms and verify agreement")
    _add_graph_arguments(compare_parser)
    compare_parser.add_argument("--side", default="U", choices=["U", "V", "u", "v"])
    compare_parser.add_argument("--first", default="receipt")
    compare_parser.add_argument("--second", default="bup")
    _add_execution_arguments(compare_parser)
    _add_trace_argument(compare_parser)

    build_parser_ = subparsers.add_parser(
        "build-index", help="decompose and persist a queryable tip-index artifact")
    _add_graph_arguments(build_parser_)
    build_parser_.add_argument("--side", default="U", choices=["U", "V", "u", "v"])
    build_parser_.add_argument("--algorithm", default="receipt",
                               choices=["receipt", "receipt-", "receipt--", "bup", "parb"])
    _add_execution_arguments(build_parser_)
    build_parser_.add_argument("--output", required=True,
                               help="artifact directory to write (conventionally *.tipidx)")
    build_parser_.add_argument("--force", action="store_true",
                               help="replace an existing artifact at --output")
    _add_trace_argument(build_parser_)
    _add_profile_argument(build_parser_)

    query_parser = subparsers.add_parser(
        "query", help="query a tip-index artifact offline (no re-peeling)")
    query_parser.add_argument("artifact", help="path to a *.tipidx artifact directory")
    query_parser.add_argument("--op", default="stats",
                              choices=["theta", "batch", "top-k", "k-tip", "community",
                                       "histogram", "stats"],
                              help="which query to run (default: stats)")
    query_parser.add_argument("--vertex", type=int, help="vertex id for theta/community")
    query_parser.add_argument("--vertices", help="comma-separated vertex ids for batch")
    query_parser.add_argument("--k", type=int, help="level for top-k / k-tip / community")
    query_parser.add_argument("--limit", type=int, default=None,
                              help="cap the number of vertices returned by k-tip")

    update_parser = subparsers.add_parser(
        "update", help="apply an edge-update batch to a tip-index artifact in place")
    update_parser.add_argument("artifact", help="path to a *.tipidx artifact directory")
    update_parser.add_argument("--insert", help='edges to insert as comma-separated u:v '
                                                'pairs, e.g. "3:7,9:2"')
    update_parser.add_argument("--delete", help="edges to delete as comma-separated u:v pairs")
    update_parser.add_argument("--updates-file",
                               help='JSON file {"insert": [[u,v],...], "delete": [[u,v],...]}')
    update_parser.add_argument("--damage-threshold", type=float, default=None,
                               help="re-peel work share beyond which the update falls "
                                    "back to a full re-decomposition")
    _add_trace_argument(update_parser)

    shard_parser = subparsers.add_parser(
        "shard-plan",
        help="split a tip-index artifact into per-θ-range shard artifacts")
    shard_parser.add_argument("artifact", help="path to a *.tipidx artifact directory")
    shard_parser.add_argument("--shards", type=int, required=True,
                              help="requested shard count (cuts snap to tip-number "
                                   "level boundaries, so fewer shards may result)")
    shard_parser.add_argument("--out", required=True,
                              help="shard-plan directory to write "
                                   "(conventionally *.tipshards)")
    shard_parser.add_argument("--force", action="store_true",
                              help="replace an existing plan at --out")

    serve_parser = subparsers.add_parser(
        "serve", help="serve tip-index artifacts over the JSON HTTP API")
    serve_parser.add_argument("artifacts", nargs="+",
                              help="one or more *.tipidx artifact directories "
                                   "(or *.tipshards shard-plan directories)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8750,
                              help="TCP port (0 picks a free one)")
    serve_parser.add_argument("--cache-capacity", type=int, default=8,
                              help="maximum number of indexes kept in memory")
    serve_parser.add_argument("--no-mmap", action="store_true",
                              help="load artifact arrays eagerly instead of mmap")
    serve_parser.add_argument("--transport", default="thread",
                              choices=["thread", "async"],
                              help="HTTP front end: one thread per connection "
                                   "(default) or the asyncio event loop that "
                                   "coalesces concurrent point-θ requests into "
                                   "one vectorized lookup per tick and "
                                   "admission-controls updates behind the "
                                   "readers")
    serve_parser.add_argument("--coalesce-max-batch", type=int, default=1024,
                              help="async transport: cap on one coalesced "
                                   "point-θ batch (default 1024)")
    serve_parser.add_argument("--coalesce-max-delay-ms", type=float, default=0.0,
                              help="async transport: wait up to this long to "
                                   "grow a batch (default 0: flush every "
                                   "event-loop tick, zero added latency)")
    serve_parser.add_argument("--max-pending-updates", type=int, default=4,
                              help="async transport: bounded /update admission "
                                   "queue; overflow answers 503 + Retry-After "
                                   "(default 4)")
    serve_parser.add_argument("--shards", type=int, default=None,
                              help="answer queries through an in-memory θ-range "
                                   "ShardRouter with this many shards "
                                   "(bit-identical to unsharded serving)")
    serve_parser.add_argument("--role", default="standalone",
                              choices=["standalone", "leader", "follower"],
                              help="replication role: standalone (default, no "
                                   "replication), leader (applies updates and "
                                   "fans them out), or follower (read-only "
                                   "replica applying the leader's log)")
    serve_parser.add_argument("--leader", default=None, metavar="URL",
                              help="follower role: base URL of the leader, "
                                   "e.g. http://127.0.0.1:8750")
    serve_parser.add_argument("--follower", action="append", default=None,
                              metavar="URL",
                              help="leader role: base URL of a follower to push "
                                   "update records to (repeatable)")
    serve_parser.add_argument("--replication-log", default=None, metavar="FILE",
                              help="leader role: replication log path (default: "
                                   "<artifact>.replog next to the artifact)")
    serve_parser.add_argument("--poll-interval", type=float, default=1.0,
                              help="follower role: seconds between catch-up "
                                   "polls of the leader's log (default 1.0)")
    serve_parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                              help="arm deterministic fault injection: "
                                   "'site:action[:key=value]...' rules joined "
                                   "by ';', or a JSON file/object (also via "
                                   "the REPRO_FAULT_PLAN environment variable;"
                                   " see docs/RESILIENCE.md)")
    serve_parser.add_argument("--fault-seed", type=int, default=None,
                              help="seed for the fault plan's RNGs (same seed "
                                   "= same fault schedule)")
    serve_parser.add_argument("--retry-attempts", type=int, default=3,
                              help="replication: attempts per push/poll before "
                                   "giving up (default 3)")
    serve_parser.add_argument("--retry-base-delay-ms", type=float, default=50.0,
                              help="replication: first-retry backoff ceiling; "
                                   "later retries double it, with full jitter "
                                   "(default 50)")
    serve_parser.add_argument("--retry-budget-seconds", type=float, default=5.0,
                              help="replication: wall-clock cap across one "
                                   "call's retries (default 5.0)")
    serve_parser.add_argument("--breaker-threshold", type=int, default=5,
                              help="consecutive failures that open a circuit "
                                   "breaker (default 5)")
    serve_parser.add_argument("--breaker-reset-seconds", type=float, default=15.0,
                              help="seconds an open breaker waits before its "
                                   "half-open probe (default 15.0)")
    serve_parser.add_argument("--log-compact-threshold", type=int, default=None,
                              help="leader role: checkpoint-compact the "
                                   "replication log once it holds more than "
                                   "this many records (default: never)")
    _add_trace_argument(serve_parser)

    trace_parser = subparsers.add_parser(
        "trace-summary",
        help="phase-time breakdown of a --trace-out trace file")
    trace_parser.add_argument("trace", help="trace JSON written by --trace-out")
    trace_parser.add_argument("--top", type=int, default=20,
                              help="number of hottest span names to list (default 20)")

    history_parser = subparsers.add_parser(
        "bench-history",
        help="append-only benchmark history with a rolling regression gate")
    history_parser.add_argument("action", choices=["ingest", "check", "show"],
                                help="ingest: append BENCH_*.json headline metrics "
                                     "to the history; check: judge fresh BENCH "
                                     "files against the rolling baseline (exit 1 "
                                     "on regression); show: print the history's "
                                     "per-metric trends")
    history_parser.add_argument("bench", nargs="*",
                                help="BENCH_*.json files (default: BENCH_*.json "
                                     "in the current directory)")
    history_parser.add_argument("--history", default=None, metavar="FILE",
                                help="history JSONL file (default "
                                     "BENCH_history.jsonl next to the bench files)")
    history_parser.add_argument("--window", type=int, default=None,
                                help="rolling-baseline window in runs (default 5)")

    return parser


def _command_datasets() -> int:
    for key, spec in DATASETS.items():
        stats = spec.paper_stats
        print(
            f"{key:>3}  {spec.description}\n"
            f"     paper: |U|={stats['n_u']:,} |V|={stats['n_v']:,} |E|={stats['n_edges']:,}"
        )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph = _load(args)
    print(json.dumps(graph_statistics(graph).as_dict(), indent=2))
    return 0


def _command_count(args: argparse.Namespace) -> int:
    graph = _load(args)
    counts = count_per_vertex(graph, algorithm=args.algorithm)
    print(json.dumps(
        {
            "algorithm": counts.algorithm,
            "total_butterflies": counts.total_butterflies,
            "wedges_traversed": counts.wedges_traversed,
            "max_count_u": int(counts.u_counts.max()) if counts.u_counts.size else 0,
            "max_count_v": int(counts.v_counts.max()) if counts.v_counts.size else 0,
        },
        indent=2,
    ))
    return 0


def _command_decompose(args: argparse.Namespace) -> int:
    graph = _load(args)
    kwargs = _algorithm_kwargs(args, args.algorithm)
    with _maybe_profile(args), _maybe_trace(args.trace_out):
        result = tip_decomposition(graph, args.side.upper(),
                                   algorithm=args.algorithm, **kwargs)
    print(json.dumps(result.summary(), indent=2))
    if args.output:
        with open(args.output, "wt", encoding="utf-8") as handle:
            json.dump({"side": result.side,
                       "tip_numbers": [int(value) for value in result.tip_numbers]}, handle)
        print(f"tip numbers written to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    graph = _load(args)
    side = args.side.upper()
    # Both algorithms receive the same execution configuration, so the
    # comparison exercises the configured kernel/partitions/backend rather
    # than silently falling back to library defaults.  One trace covers
    # both runs; the root spans name the algorithms apart.
    with _maybe_trace(args.trace_out):
        first = tip_decomposition(graph, side, algorithm=args.first,
                                  **_algorithm_kwargs(args, args.first))
        second = tip_decomposition(graph, side, algorithm=args.second,
                                   **_algorithm_kwargs(args, args.second))
    report = compare_results(first, second)
    print(json.dumps(
        {
            "first": first.summary(),
            "second": second.summary(),
            "agree": report.passed,
            "failures": report.failures,
        },
        indent=2,
    ))
    return 0 if report.passed else 1


def _command_build_index(args: argparse.Namespace) -> int:
    from .service.build import build_index_artifact

    graph = _load(args)
    with _maybe_profile(args), _maybe_trace(args.trace_out):
        manifest = build_index_artifact(
            graph,
            args.output,
            side=args.side.upper(),
            algorithm=args.algorithm,
            peel_kernel=args.peel_kernel,
            backend=args.backend,
            n_threads=args.threads,
            n_partitions=args.partitions,
            wedge_budget=args.wedge_budget,
            overwrite=args.force,
        )
    print(json.dumps(
        {
            "artifact": args.output,
            "name": manifest.name,
            "fingerprint": manifest.fingerprint,
            "graph": manifest.graph,
            "decomposition": manifest.decomposition,
            "elapsed_seconds": manifest.counters.get("elapsed_seconds"),
            "peak_scratch_bytes": manifest.counters.get("peak_scratch_bytes"),
        },
        indent=2,
    ))
    return 0


def _command_query(args: argparse.Namespace) -> int:
    # Answers are produced by the same TipService route handlers the HTTP
    # server uses, so offline queries are identical to served ones.
    from .service.server import TipService, to_jsonable

    service = TipService([args.artifact])
    params: dict = {}
    if args.op == "theta":
        if args.vertex is None:
            raise ReproError("--op theta requires --vertex")
        route, params = "/theta", {"vertex": args.vertex}
    elif args.op == "batch":
        if not args.vertices:
            raise ReproError("--op batch requires --vertices 1,2,3")
        route, params = "/theta/batch", {"vertices": args.vertices}
    elif args.op == "top-k":
        if args.k is None:
            raise ReproError("--op top-k requires --k")
        route, params = "/top-k", {"k": args.k}
    elif args.op == "k-tip":
        if args.k is None:
            raise ReproError("--op k-tip requires --k")
        route, params = "/k-tip", {"k": args.k}
        if args.limit is not None:
            params["limit"] = args.limit
    elif args.op == "community":
        if args.k is None:
            raise ReproError("--op community requires --k")
        route, params = "/community", {"k": args.k}
        if args.vertex is not None:
            params["vertex"] = args.vertex
    elif args.op == "histogram":
        route, params = "/stats", {"histogram": "1"}
    else:  # stats
        route = "/stats"
    print(json.dumps(to_jsonable(service.handle(route, params)), indent=2))
    return 0


def _parse_edge_pairs(text: str) -> list[list[int]]:
    """Parse ``"3:7,9:2"`` into ``[[3, 7], [9, 2]]``."""
    pairs = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        head, separator, tail = piece.partition(":")
        if not separator:
            raise ReproError(f"edge {piece!r} is not a u:v pair")
        try:
            pairs.append([int(head), int(tail)])
        except ValueError:
            raise ReproError(f"edge {piece!r} is not an integer u:v pair") from None
    return pairs


def _command_update(args: argparse.Namespace) -> int:
    # The batch is routed through the same TipService handler the HTTP
    # POST /update uses, so offline updates behave identically to served
    # ones (validation, repair, atomic artifact refresh, staleness stats).
    from .service.server import TipService, to_jsonable

    body: dict = {}
    if args.updates_file:
        with open(args.updates_file, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ReproError("--updates-file must hold a JSON object")
        body.update({key: payload[key] for key in ("insert", "delete") if key in payload})
    if args.insert:
        body["insert"] = body.get("insert", []) + _parse_edge_pairs(args.insert)
    if args.delete:
        body["delete"] = body.get("delete", []) + _parse_edge_pairs(args.delete)
    if not body.get("insert") and not body.get("delete"):
        raise ReproError("update needs edges: pass --insert, --delete or --updates-file")
    if args.damage_threshold is not None:
        body["damage_threshold"] = args.damage_threshold

    service = TipService([args.artifact])
    with _maybe_trace(args.trace_out):
        payload = service.handle("/update", {}, body)
    print(json.dumps(to_jsonable(payload), indent=2))
    return 0


def _command_shard_plan(args: argparse.Namespace) -> int:
    from .service.sharding import write_shard_plan

    payload = write_shard_plan(
        args.artifact, args.out, args.shards, overwrite=args.force)
    print(json.dumps(payload, indent=2))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # The TipService is built here (rather than inside serve/serve_async)
    # so a replication coordinator can attach to it before the transport
    # starts accepting requests; --trace-out wraps the whole serving
    # session and the trace is written at shutdown (Ctrl-C).
    from .service.server import TipService

    if args.role == "follower" and not args.leader:
        raise ReproError("--role follower requires --leader URL")
    if args.role != "follower" and args.leader:
        raise ReproError("--leader only applies to --role follower")
    if args.role != "leader" and args.follower:
        raise ReproError("--follower only applies to --role leader")

    from .service import faults

    if args.fault_plan:
        plan = faults.install(
            faults.FaultPlan.parse(args.fault_plan, seed=args.fault_seed))
        print(f"fault injection ARMED (seed {plan.seed}): "
              + "; ".join(f"{r.site}:{r.action}" for r in plan.rules))
    else:
        faults.arm_from_env()

    service = TipService(
        args.artifacts,
        cache_capacity=args.cache_capacity,
        mmap=not args.no_mmap,
        shards=args.shards,
    )
    service.breakers.configure(
        failure_threshold=args.breaker_threshold,
        reset_seconds=args.breaker_reset_seconds,
    )
    coordinator = None
    if args.role != "standalone":
        from .errors import ReplicationError
        from .service.replication import ReplicationCoordinator
        from .service.resilience import RetryPolicy

        coordinator = ReplicationCoordinator(
            service,
            role=args.role,
            log_path=args.replication_log,
            leader_url=args.leader,
            follower_urls=tuple(args.follower or ()),
            poll_interval=args.poll_interval,
            retry_policy=RetryPolicy(
                max_attempts=args.retry_attempts,
                base_delay=args.retry_base_delay_ms / 1000.0,
                budget_seconds=args.retry_budget_seconds,
                retryable=(ReplicationError,),
            ),
            log_compact_threshold=args.log_compact_threshold,
        )
        coordinator.start()

    try:
        with _maybe_trace(args.trace_out):
            if args.transport == "async":
                from .service.aserver import serve_async

                serve_async(
                    args.artifacts,
                    host=args.host,
                    port=args.port,
                    quiet=False,
                    max_batch=args.coalesce_max_batch,
                    max_delay=args.coalesce_max_delay_ms / 1000.0,
                    max_pending_updates=args.max_pending_updates,
                    service=service,
                )
                return 0
            from .service.server import serve

            serve(
                args.artifacts,
                host=args.host,
                port=args.port,
                quiet=False,
                service=service,
            )
        return 0
    finally:
        if coordinator is not None:
            coordinator.stop()


def _command_bench_history(args: argparse.Namespace) -> int:
    import glob
    import os
    import time

    from .obs.history import (
        BASELINE_WINDOW,
        DEFAULT_HISTORY_FILENAME,
        append_history,
        baseline_for,
        check_regressions,
        format_report,
        load_history,
        record_from_bench,
    )

    window = args.window if args.window is not None else BASELINE_WINDOW

    bench_files = list(args.bench) or sorted(glob.glob("BENCH_*.json"))
    bench_files = [path for path in bench_files
                   if not path.endswith(".jsonl")]  # the history is not a run
    history_path = args.history
    if history_path is None:
        # Default: next to the bench files so repo-root invocations and CI
        # working directories both find the committed history.
        base = os.path.dirname(bench_files[0]) if bench_files else "."
        history_path = os.path.join(base, DEFAULT_HISTORY_FILENAME)

    if args.action == "show":
        history = load_history(history_path)
        if not history:
            print(f"bench-history: no history at {history_path}")
            return 0
        seen: dict = {}
        fingerprints: dict = {}
        for record in history:
            run_key = (record["benchmark"], record.get("mode", ""))
            # Same field name as /stats: base_fingerprint identifies the
            # artifact content a run measured (older rows may lack it).
            if record.get("base_fingerprint"):
                fingerprints[run_key] = str(record["base_fingerprint"])
            for metric, value in record.get("metrics", {}).items():
                seen.setdefault(run_key + (metric,), []).append(float(value))
        print(f"bench-history: {len(history)} run(s) in {history_path}")
        for (benchmark, mode, metric), values in sorted(seen.items()):
            baseline = baseline_for(history, benchmark, mode, metric, window=window)
            trail = " ".join(f"{value:.4g}" for value in values[-window:])
            fingerprint = fingerprints.get((benchmark, mode))
            suffix = f" base_fingerprint={fingerprint[:12]}" if fingerprint else ""
            print(f"  {benchmark}/{mode} {metric}: latest={values[-1]:.4g} "
                  f"baseline(median of {min(len(values), window)})={baseline:.4g} "
                  f"[{trail}]{suffix}")
        return 0

    if not bench_files:
        raise ReproError("no BENCH_*.json files found; pass them explicitly")
    records = []
    now = time.time()
    for path in bench_files:
        try:
            with open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ReproError(f"cannot read bench file {path!r}: {error}") from None
        record = record_from_bench(
            payload, source=os.path.basename(path), recorded_unix=now)
        if record is not None:
            records.append(record)
    if not records:
        raise ReproError(
            "none of the bench files carry gated metrics: " + ", ".join(bench_files))

    if args.action == "ingest":
        count = append_history(history_path, records)
        print(f"bench-history: appended {count} record(s) to {history_path}")
        return 0

    # check: judge the fresh records against the history's baselines.
    history = load_history(history_path)
    findings = check_regressions(history, records, window=window)
    print(format_report(findings))
    return 1 if any(f["status"] == "regression" for f in findings) else 0


def _command_trace_summary(args: argparse.Namespace) -> int:
    from .obs.report import format_summary, load_trace

    try:
        spans = load_trace(args.trace)
    except (OSError, ValueError) as error:
        raise ReproError(f"cannot read trace {args.trace!r}: {error}") from None
    print(format_summary(spans, top=args.top))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``repro`` / ``repro-tip`` console scripts."""
    from .obs.log import configure_logging

    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_format, args.log_level)
    try:
        if args.command == "datasets":
            return _command_datasets()
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "count":
            return _command_count(args)
        if args.command == "decompose":
            return _command_decompose(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "build-index":
            return _command_build_index(args)
        if args.command == "query":
            return _command_query(args)
        if args.command == "update":
            return _command_update(args)
        if args.command == "shard-plan":
            return _command_shard_plan(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "trace-summary":
            return _command_trace_summary(args)
        if args.command == "bench-history":
            return _command_bench_history(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
