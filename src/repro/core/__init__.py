"""RECEIPT: the paper's primary contribution (coarse + fine decomposition)."""

from .cd import CoarseDecompositionResult, coarse_grained_decomposition
from .fd import FineDecompositionResult, SubsetPeelRecord, fine_grained_decomposition
from .hybrid import RecountOutcome, peel_cost, recount_cost, recount_supports, should_recount
from .ranges import AdaptiveRangeTargeter, find_range_upper_bound
from .receipt import DEFAULT_PARTITIONS, ReceiptConfig, receipt_decomposition, tip_decomposition
from .scheduling import Schedule, greedy_schedule, lpt_schedule, workload_aware_order
from .stats import (
    PhaseBreakdown,
    build_cost_model,
    peel_to_count_ratio,
    projected_speedups,
    time_breakdown,
    wedge_breakdown,
)

__all__ = [
    "CoarseDecompositionResult",
    "coarse_grained_decomposition",
    "FineDecompositionResult",
    "SubsetPeelRecord",
    "fine_grained_decomposition",
    "RecountOutcome",
    "peel_cost",
    "recount_cost",
    "recount_supports",
    "should_recount",
    "AdaptiveRangeTargeter",
    "find_range_upper_bound",
    "DEFAULT_PARTITIONS",
    "ReceiptConfig",
    "receipt_decomposition",
    "tip_decomposition",
    "Schedule",
    "greedy_schedule",
    "lpt_schedule",
    "workload_aware_order",
    "PhaseBreakdown",
    "build_cost_model",
    "peel_to_count_ratio",
    "projected_speedups",
    "time_breakdown",
    "wedge_breakdown",
]
