"""RECEIPT Coarse-grained Decomposition (RECEIPT CD, Alg. 3).

CD partitions the peeled vertex set into ``P`` subsets whose tip numbers
fall into ``P`` disjoint, increasing ranges.  Every peeling iteration
deletes *all* vertices whose support lies inside the current range, which is
what gives RECEIPT its large per-iteration workload and its small number of
synchronization rounds.  Alongside the subsets, CD records the ``⋈init``
support snapshot that Fine-grained Decomposition later uses to initialise
each subset's independent peel.

This module always peels the ``U`` side; the public entry point
(:func:`repro.core.receipt.receipt_decomposition`) swaps the sides of the
graph when the caller asks for ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..graph.dynamic import PeelableAdjacency
from ..kernels.workspace import WedgeWorkspace, workspace_or_default
from ..obs.trace import current_tracer
from ..parallel.threadpool import ExecutionContext
from ..peeling.base import PeelingCounters
from ..peeling.update import peel_batch
from .hybrid import peel_cost, recount_cost, recount_supports, should_recount
from .ranges import AdaptiveRangeTargeter, find_range_upper_bound

__all__ = ["CoarseDecompositionResult", "coarse_grained_decomposition"]


@dataclass
class CoarseDecompositionResult:
    """Output of RECEIPT CD.

    Attributes
    ----------
    bounds:
        Range boundaries ``θ(1) .. θ(P + 1)``; subset ``i`` (0-based) holds
        vertices whose tip numbers lie in ``[bounds[i], bounds[i + 1])``.
    subsets:
        One array of parent-graph ``U`` ids per range, in peel order.
    init_supports:
        The ``⋈init`` vector: for a vertex of subset ``i``, its support
        after every vertex of subsets ``< i`` was peeled and before any
        vertex of subset ``i`` was.
    counters:
        Work counters for the CD phase (excluding the initial pvBcnt).
    iteration_records:
        One record per peeling iteration: subset index, vertices peeled,
        wedges traversed and whether HUC re-counted — the raw material for
        the ablation figures and the parallel cost model.
    targeter_history:
        Adaptive range determination trace (targets, covered work, scaling).
    """

    bounds: np.ndarray
    subsets: list[np.ndarray]
    init_supports: np.ndarray
    counters: PeelingCounters
    iteration_records: list[dict] = field(default_factory=list)
    targeter_history: list[dict] = field(default_factory=list)

    @property
    def n_subsets(self) -> int:
        return len(self.subsets)

    def subset_of_vertex(self) -> np.ndarray:
        """Array mapping every ``U`` vertex to its subset index (-1 if absent)."""
        membership = np.full(self.init_supports.shape[0], -1, dtype=np.int64)
        for index, subset in enumerate(self.subsets):
            membership[subset] = index
        return membership

    def range_of_subset(self, index: int) -> tuple[int, int]:
        """Tip-number range ``[θ(i), θ(i+1))`` of one subset."""
        return int(self.bounds[index]), int(self.bounds[index + 1])


def coarse_grained_decomposition(
    graph: BipartiteGraph,
    initial_supports: np.ndarray,
    n_partitions: int,
    *,
    enable_huc: bool = True,
    enable_dgm: bool = True,
    huc_cost_factor: float = 1.0,
    adaptive_targets: bool = True,
    context: ExecutionContext | None = None,
    peel_kernel: str = "batched",
    workspace: WedgeWorkspace | None = None,
) -> CoarseDecompositionResult:
    """Partition the ``U`` side into tip-number-range subsets (Alg. 3).

    Parameters
    ----------
    graph:
        Bipartite graph whose ``U`` side is being decomposed.
    initial_supports:
        Per-vertex butterfly counts of the ``U`` side (from pvBcnt).
    n_partitions:
        The parameter ``P``: number of ranges to create.  One extra subset
        may be appended for leftover vertices, as in the paper.
    enable_huc:
        Toggle Hybrid Update Computation (re-count instead of peel when
        cheaper).
    enable_dgm:
        Toggle Dynamic Graph Maintenance (periodic adjacency compaction).
    huc_cost_factor:
        Multiplier applied to the re-count cost estimate before comparing it
        to the peel cost.  The paper compares raw wedge bounds (factor 1);
        a factor above one accounts for the higher per-wedge constant of the
        counting kernel relative to the vectorised batch peel in this
        Python implementation.
    adaptive_targets:
        Use the two-way adaptive range determination of Sec. 3.1.1 (dynamic
        per-subset targets plus overshoot scaling).  When ``False`` every
        subset aims at the static average ``total work / P`` — the naive
        scheme the paper's adaptive mechanism improves on; exposed for the
        design-choice ablation benchmark.
    context:
        Execution context used for synchronization-round accounting and for
        the parallel cost model.  With more than one thread, each range-peel
        iteration fans its wedge gather out over batch slices
        (``map_chunks`` with private buffers merged by the kernel).
    peel_kernel:
        Support-update kernel used by the range-peel iterations: the shared
        vectorized ``"batched"`` kernel (default) or the per-vertex
        ``"reference"`` loop (ablation / equivalence runs).
    workspace:
        Scratch arena + memory policy (wedge budget, int32 narrowing) every
        peel iteration and HUC recount runs on; the calling thread's
        default arena when omitted.  Its high-water mark is reported as
        ``counters.peak_scratch_bytes``.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    context = context or ExecutionContext()
    workspace = workspace_or_default(workspace)
    counters = PeelingCounters()
    tracer = current_tracer()
    # The CD wall time is derived from this span (not a separate clock), so
    # the reported counters can never drift from the trace.
    cd_span = tracer.timed("cd", n_partitions=n_partitions)
    with cd_span:
        n_u = graph.n_u
        supports = np.array(initial_supports, dtype=np.int64, copy=True)
        if supports.shape[0] != n_u:
            raise ValueError(
                f"initial_supports has {supports.shape[0]} entries, expected {n_u}"
            )
        init_supports = supports.copy()

        wedge_work = graph.wedge_work_per_vertex("U")
        adjacency = PeelableAdjacency(graph, "U", enable_dgm=enable_dgm,
                                      narrow_ids=workspace.narrow_ids)
        alive = adjacency.alive_mask()

        targeter = AdaptiveRangeTargeter(n_partitions=n_partitions)
        static_target = float(wedge_work.sum()) / n_partitions
        bounds: list[int] = [0]
        subsets: list[np.ndarray] = []
        iteration_records: list[dict] = []

        while alive.any() and not targeter.exhausted:
            lower_bound = bounds[-1]
            alive_vertices = np.flatnonzero(alive)

            # Snapshot ⋈init for every remaining vertex: this is its support
            # after all earlier subsets were peeled (lines 6-7 of Alg. 3).
            init_supports[alive_vertices] = supports[alive_vertices]
            context.record_barrier("cd_support_init", n_tasks=int(alive_vertices.size),
                                   total_work=float(alive_vertices.size), scheduling="static")

            remaining_work = float(wedge_work[alive_vertices].sum())
            if adaptive_targets:
                target_work = targeter.next_target(remaining_work)
            else:
                target_work = static_target
            upper_bound = find_range_upper_bound(
                supports[alive_vertices], wedge_work[alive_vertices], target_work
            )
            upper_bound = max(upper_bound, lower_bound + 1)
            context.record_barrier("cd_find_hi", n_tasks=int(alive_vertices.size),
                                   total_work=float(alive_vertices.size), scheduling="static")

            subset_pieces: list[np.ndarray] = []
            active_set = alive_vertices[supports[alive_vertices] < upper_bound]

            while active_set.size:
                counters.synchronization_rounds += 1
                subset_pieces.append(active_set)
                counters.vertices_peeled += int(active_set.size)

                cost_of_peeling = peel_cost(wedge_work, active_set)
                use_recount = False
                if enable_huc:
                    cost_of_recounting = recount_cost(
                        graph, alive & ~_mask_of(active_set, n_u)
                    )
                    use_recount = should_recount(
                        cost_of_peeling, huc_cost_factor * cost_of_recounting
                    )

                with tracer.span("cd.peel_iteration") as iteration_span:
                    if use_recount:
                        adjacency.mark_peeled_many(active_set)
                        still_alive = np.flatnonzero(alive)
                        outcome = recount_supports(graph, alive, alive_vertices=still_alive,
                                                   workspace=workspace)
                        supports[still_alive] = np.maximum(
                            outcome.supports[still_alive], lower_bound
                        )
                        adjacency.record_traversal(outcome.wedges_traversed)
                        counters.wedges_traversed += outcome.wedges_traversed
                        counters.counting_wedges += outcome.wedges_traversed
                        counters.recount_invocations += 1
                        wedges_this_iteration = outcome.wedges_traversed
                        candidate_vertices = still_alive
                    else:
                        update = peel_batch(adjacency, supports, active_set, lower_bound,
                                            kernel=peel_kernel, context=context,
                                            workspace=workspace)
                        counters.wedges_traversed += update.wedges_traversed
                        counters.peeling_wedges += update.wedges_traversed
                        counters.support_updates += update.support_updates
                        wedges_this_iteration = update.wedges_traversed
                        candidate_vertices = update.updated_vertices
                if iteration_span.recording:
                    iteration_span.set(
                        subset=len(subsets),
                        vertices_peeled=int(active_set.size),
                        wedges_traversed=int(wedges_this_iteration),
                        recounted=bool(use_recount),
                    )

                if adjacency.maybe_compact():
                    counters.dgm_compactions += 1

                context.record_barrier(
                    "cd_peel_iteration",
                    n_tasks=int(active_set.size),
                    total_work=float(wedges_this_iteration),
                    task_work=list(wedge_work[active_set].astype(np.float64)),
                )
                iteration_records.append(
                    {
                        "subset": len(subsets),
                        "vertices_peeled": int(active_set.size),
                        "wedges_traversed": int(wedges_this_iteration),
                        "recounted": bool(use_recount),
                        "lower_bound": int(lower_bound),
                        "upper_bound": int(upper_bound),
                    }
                )

                if candidate_vertices.size:
                    candidate_vertices = candidate_vertices[alive[candidate_vertices]]
                    active_set = candidate_vertices[supports[candidate_vertices] < upper_bound]
                    # Sort the next batch: within an iteration vertex order is
                    # semantically arbitrary (updates commute), but it fixes where
                    # DGM compaction lands mid-batch, so it must not depend on the
                    # peel kernel's internal update ordering.
                    active_set = np.sort(active_set)
                else:
                    active_set = np.zeros(0, dtype=np.int64)

            subset = (
                np.concatenate(subset_pieces) if subset_pieces else np.zeros(0, dtype=np.int64)
            )
            covered_work = float(wedge_work[subset].sum()) if subset.size else 0.0
            targeter.record_subset(target_work, covered_work)
            subsets.append(subset)
            bounds.append(int(upper_bound))

        # Leftover vertices (the planned P subsets did not exhaust U): the paper
        # places them all in one extra subset U_{P+1}.
        leftover = np.flatnonzero(alive)
        if leftover.size:
            init_supports[leftover] = supports[leftover]
            subsets.append(leftover)
            bounds.append(int(supports[leftover].max()) + 1)
            counters.vertices_peeled += int(leftover.size)

    counters.elapsed_seconds = cd_span.duration
    counters.peak_scratch_bytes = workspace.peak_scratch_bytes
    if cd_span.recording:
        cd_span.set(
            n_subsets=len(subsets),
            wedges_traversed=counters.wedges_traversed,
            vertices_peeled=counters.vertices_peeled,
            synchronization_rounds=counters.synchronization_rounds,
            peak_scratch_bytes=counters.peak_scratch_bytes,
        )
    return CoarseDecompositionResult(
        bounds=np.asarray(bounds, dtype=np.int64),
        subsets=subsets,
        init_supports=init_supports,
        counters=counters,
        iteration_records=iteration_records,
        targeter_history=targeter.history,
    )


def _mask_of(vertices: np.ndarray, size: int) -> np.ndarray:
    mask = np.zeros(size, dtype=bool)
    mask[vertices] = True
    return mask
