"""RECEIPT Fine-grained Decomposition (RECEIPT FD, Alg. 4).

FD receives the vertex subsets and tip-number ranges produced by CD and
computes exact tip numbers.  Each subset is processed completely
independently: a subgraph is induced on the subset (plus the whole ``V``
side), supports are initialised from the ``⋈init`` snapshot, and sequential
bottom-up peeling runs inside the subgraph.  The work is expressed as
picklable task descriptors (:mod:`repro.engine.tasks`) handed to the
execution context's backend — serial, thread pool, or a multiprocess worker
pool over a shared-memory graph store — through a workload-aware dynamic
task queue (largest estimated work first); workers only synchronise once,
when the queue drains, and results are bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.tasks import FdJob, build_fd_tasks
from ..graph.bipartite import BipartiteGraph
from ..kernels.workspace import resolve_wedge_budget
from ..obs.trace import current_tracer
from ..parallel.threadpool import ExecutionContext
from ..peeling.base import PeelingCounters
from .cd import CoarseDecompositionResult
from .scheduling import workload_aware_order

__all__ = ["SubsetPeelRecord", "FineDecompositionResult", "fine_grained_decomposition"]


@dataclass(frozen=True)
class SubsetPeelRecord:
    """Per-subset statistics gathered while FD peels it."""

    subset_index: int
    n_vertices: int
    induced_edges: int
    induced_wedge_work: int
    wedges_traversed: int
    support_updates: int
    elapsed_seconds: float
    peak_scratch_bytes: int = 0


@dataclass
class FineDecompositionResult:
    """Output of RECEIPT FD: exact tip numbers plus per-subset statistics."""

    tip_numbers: np.ndarray
    counters: PeelingCounters
    subset_records: list[SubsetPeelRecord] = field(default_factory=list)
    schedule_order: list[int] = field(default_factory=list)

    def subset_work(self) -> np.ndarray:
        """Measured wedge work per subset, indexed by subset id."""
        work = np.zeros(len(self.subset_records), dtype=np.float64)
        for record in self.subset_records:
            work[record.subset_index] = record.wedges_traversed
        return work


def fine_grained_decomposition(
    graph: BipartiteGraph,
    cd_result: CoarseDecompositionResult,
    *,
    enable_dgm: bool = False,
    context: ExecutionContext | None = None,
    workload_aware: bool = True,
    peel_kernel: str = "batched",
    wedge_budget: int | None = None,
    narrow_ids: bool = True,
) -> FineDecompositionResult:
    """Compute exact tip numbers from CD's subsets (Alg. 4).

    Parameters
    ----------
    graph:
        The original graph whose ``U`` side is being decomposed.
    cd_result:
        Output of :func:`~repro.core.cd.coarse_grained_decomposition`.
    enable_dgm:
        Whether the per-subset sequential peels compact their induced
        adjacency (the induced subgraphs are small, so the paper leaves this
        off by default; it is exposed for ablations).
    context:
        Execution context; its configured backend (``serial`` / ``thread`` /
        ``process``) executes the task queue, and FD records a single
        synchronization round (the final barrier of the queue).
    workload_aware:
        Sort the task queue by decreasing estimated work (WaS).  Disabling
        it reproduces the "original order" schedule of Fig. 3.
    peel_kernel:
        Support-update kernel for the per-subset sequential peels
        (``"batched"`` or ``"reference"``); each pop consumes one batched
        :class:`~repro.peeling.update.SupportUpdate` through the shared
        kernel layer.
    wedge_budget, narrow_ids:
        Memory policy forwarded into every task's per-worker
        :class:`~repro.kernels.workspace.WedgeWorkspace`; the maximum task
        peak is reported as ``counters.peak_scratch_bytes``.
        ``wedge_budget`` follows the user-facing convention everywhere in
        the library: ``None`` means the library default, zero or negative
        disables chunking.
    """
    context = context or ExecutionContext()
    counters = PeelingCounters()
    tracer = current_tracer()
    fd_span = tracer.timed("fd", n_subsets=len(cd_result.subsets))
    with fd_span:
        n_u = graph.n_u
        tip_numbers = np.zeros(n_u, dtype=np.int64)
        subset_records: list[SubsetPeelRecord] = []

        # Estimated work per subset: wedges (in G) of its vertices.  The paper
        # uses this same proxy because induced-subgraph wedges are unknown until
        # the subgraph is built.
        wedge_work = graph.wedge_work_per_vertex("U")
        estimated_work = np.array(
            [float(wedge_work[subset].sum()) if subset.size else 0.0
             for subset in cd_result.subsets]
        )
        if workload_aware:
            order = workload_aware_order(estimated_work)
        else:
            order = np.arange(len(cd_result.subsets), dtype=np.int64)

        # FD work as data: descriptors ranging into the flat subset array, plus
        # one job holding the heavyweight shared inputs.  The process backend
        # exports the job to shared memory; descriptors pickle in O(1).
        subsets_flat, all_tasks = build_fd_tasks(cd_result.subsets, estimated_work)
        job = FdJob(
            graph=graph,
            subsets_flat=subsets_flat,
            init_supports=np.ascontiguousarray(cd_result.init_supports, dtype=np.int64),
            enable_dgm=enable_dgm,
            peel_kernel=peel_kernel,
            wedge_budget=resolve_wedge_budget(wedge_budget),
            narrow_ids=narrow_ids,
            trace=tracer.recording,
        )
        ordered_tasks = [all_tasks[int(index)] for index in order]
        results = context.run_fd_tasks(
            job, ordered_tasks, name="fd_task_queue",
            scheduling="lpt" if workload_aware else "dynamic",
        )

        for result in results:
            subset = cd_result.subsets[result.subset_index]
            if result.n_vertices:
                tip_numbers[subset] = result.tip_numbers
            subset_records.append(
                SubsetPeelRecord(
                    subset_index=result.subset_index,
                    n_vertices=result.n_vertices,
                    induced_edges=result.induced_edges,
                    induced_wedge_work=result.induced_wedge_work,
                    wedges_traversed=result.wedges_traversed,
                    support_updates=result.support_updates,
                    elapsed_seconds=result.elapsed_seconds,
                    peak_scratch_bytes=getattr(result, "peak_scratch_bytes", 0),
                )
            )
            # Worker spans travelled back over the engine's pickle channel
            # (serial, thread and process backends all populate them the same
            # way); re-base them under this phase's span.
            if tracer.recording and result.spans:
                tracer.add_spans(result.spans, parent=fd_span)

        for record in subset_records:
            counters.wedges_traversed += record.wedges_traversed
            counters.peeling_wedges += record.wedges_traversed
            counters.support_updates += record.support_updates
            counters.vertices_peeled += record.n_vertices
            # Tasks run on independent arenas (possibly concurrently), so the
            # phase peak is the largest per-task peak, not a sum.
            counters.peak_scratch_bytes = max(
                counters.peak_scratch_bytes, record.peak_scratch_bytes
            )
        # FD workers synchronise exactly once, at the end of the task queue.
        counters.synchronization_rounds = 0

    counters.elapsed_seconds = fd_span.duration
    if fd_span.recording:
        fd_span.set(
            wedges_traversed=counters.wedges_traversed,
            vertices_peeled=counters.vertices_peeled,
            peak_scratch_bytes=counters.peak_scratch_bytes,
        )

    return FineDecompositionResult(
        tip_numbers=tip_numbers,
        counters=counters,
        subset_records=subset_records,
        schedule_order=[int(index) for index in order],
    )
