"""Hybrid Update Computation (HUC, Sec. 4.1).

When a CD peeling iteration is about to delete a set of vertices whose
cumulative wedge work exceeds the cost of simply re-counting butterflies on
the residual graph, RECEIPT re-counts instead of peeling.  Correctness is
unaffected: after all vertices of earlier subsets are removed, the support
of a remaining vertex equals the number of butterflies it shares with the
remaining vertices, which is exactly what a fresh count on the residual
graph produces.

The cost comparison uses

* ``C_peel = sum_{u in activeSet} w[u]`` with ``w[u] = sum_{v in N(u)} d_v``
  (the wedge work of the vertices about to be peeled), and
* ``C_rcnt = sum_{(u, v) in E, u alive} min(d_u, d_v')`` where ``d_v'`` is
  the residual degree of the center vertex — the traversal bound of
  vertex-priority counting on the residual graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..butterfly.counting import count_per_vertex_priority
from ..graph.bipartite import BipartiteGraph
from ..kernels.csr import int_bincount

__all__ = ["RecountOutcome", "peel_cost", "recount_cost", "should_recount", "recount_supports"]


@dataclass(frozen=True)
class RecountOutcome:
    """Result of a HUC re-count on the residual graph.

    Attributes
    ----------
    supports:
        Butterfly counts of the still-alive vertices, indexed by the parent
        graph's ``U`` ids (entries of peeled vertices are zero).
    wedges_traversed:
        Wedges traversed by the counting kernel (charged as counting work).
    """

    supports: np.ndarray
    wedges_traversed: int


def peel_cost(wedge_work: np.ndarray, active_set: np.ndarray) -> int:
    """Wedge cost of peeling ``active_set`` (``C_peel``)."""
    if active_set.size == 0:
        return 0
    return int(wedge_work[active_set].sum())


def recount_cost(graph: BipartiteGraph, alive_mask: np.ndarray) -> int:
    """Traversal bound of re-counting butterflies on the residual graph (``C_rcnt``).

    The residual graph keeps all ``V`` vertices and only the alive ``U``
    vertices; the bound is ``sum over residual edges of min(d_u,
    residual d_v)``.
    """
    alive_mask = np.asarray(alive_mask, dtype=bool)
    if not alive_mask.any():
        return 0
    edges = graph.edge_array()
    keep = alive_mask[edges[:, 0]]
    if not keep.any():
        return 0
    residual_u = edges[keep, 0]
    residual_v = edges[keep, 1]
    degrees_u = graph.degrees_u().astype(np.int64)
    residual_center_degree = int_bincount(residual_v, None, graph.n_v)
    return int(np.minimum(degrees_u[residual_u], residual_center_degree[residual_v]).sum())


def should_recount(cost_of_peeling: int, cost_of_recounting: int) -> bool:
    """The HUC decision: re-count when peeling would traverse more wedges."""
    return cost_of_peeling > cost_of_recounting


def recount_supports(
    graph: BipartiteGraph,
    alive_mask: np.ndarray,
    *,
    alive_vertices: np.ndarray | None = None,
    workspace=None,
) -> RecountOutcome:
    """Re-count butterflies of the alive ``U`` vertices on the residual graph.

    Builds the subgraph induced on the alive vertices (and the full ``V``
    side, as butterflies only need their two ``U`` endpoints alive) and runs
    the vertex-priority counting kernel on it.  ``alive_vertices`` may be
    supplied when the caller already materialised ``flatnonzero(alive_mask)``
    (CD's range loop does); when every vertex is still alive the induction
    is skipped entirely and the kernel runs on ``graph`` itself — same
    counts, same wedge traversal, no subgraph rebuild.  ``workspace``
    carries the caller's scratch arena into the counting kernel so HUC
    recounts share the peel run's buffers and budget.
    """
    alive_mask = np.asarray(alive_mask, dtype=bool)
    supports = np.zeros(alive_mask.shape[0], dtype=np.int64)
    if alive_vertices is None:
        alive_vertices = np.flatnonzero(alive_mask)
    if alive_vertices.size == 0:
        return RecountOutcome(supports=supports, wedges_traversed=0)

    if alive_vertices.size == alive_mask.shape[0]:
        counts = count_per_vertex_priority(graph, workspace=workspace)
        supports[:] = counts.u_counts
        return RecountOutcome(supports=supports, wedges_traversed=counts.wedges_traversed)

    induced = graph.induced_on_u_subset(alive_vertices)
    counts = count_per_vertex_priority(induced.graph, workspace=workspace)
    supports[alive_vertices] = counts.u_counts
    return RecountOutcome(supports=supports, wedges_traversed=counts.wedges_traversed)
