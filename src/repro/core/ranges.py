"""Tip-number range determination for RECEIPT CD (Alg. 3, ``findHi``).

RECEIPT CD must pick the upper bound ``θ(i + 1)`` of the next tip-number
range so that the wedge workload of the resulting vertex subset is roughly
``1/P``-th of the total.  Neither the induced subgraphs nor the exact tip
numbers are known yet, so the paper uses two proxies: the wedge count of
every vertex in the *original* graph and the vertices' *current supports*.
Wedge counts are binned by support value, a prefix sum is taken over the
sorted bins and the smallest support whose cumulative work reaches the
target becomes the (inclusive) top of the range.

The adaptive behaviour of Sec. 3.1.1 — a dynamic per-subset target and a
scaling factor that corrects for the previous subset's overshoot — lives in
:class:`AdaptiveRangeTargeter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["find_range_upper_bound", "AdaptiveRangeTargeter"]


def find_range_upper_bound(
    supports: np.ndarray,
    wedge_work: np.ndarray,
    target_work: float,
) -> int:
    """Return the exclusive upper bound ``θ(i + 1)`` of the next range.

    Parameters
    ----------
    supports:
        Current supports of the vertices still to be partitioned.
    wedge_work:
        Their wedge counts in the original graph (the work proxy).
    target_work:
        Desired cumulative wedge work for the next subset.

    Returns
    -------
    int
        The smallest support value ``θ`` such that vertices with support
        ``<= θ`` carry at least ``target_work`` wedges, plus one (the bound
        is exclusive).  When the total work of all remaining vertices is
        below the target, the maximum support plus one is returned so that
        everything lands in the final subset.
    """
    supports = np.asarray(supports, dtype=np.int64)
    wedge_work = np.asarray(wedge_work, dtype=np.int64)
    if supports.size == 0:
        return 1
    if supports.shape != wedge_work.shape:
        raise ValueError("supports and wedge_work must have the same shape")

    order = np.argsort(supports, kind="stable")
    sorted_supports = supports[order]
    cumulative_work = np.cumsum(wedge_work[order].astype(np.float64))

    position = int(np.searchsorted(cumulative_work, float(target_work), side="left"))
    if position >= sorted_supports.size:
        chosen_support = int(sorted_supports[-1])
    else:
        chosen_support = int(sorted_supports[position])
    return chosen_support + 1


@dataclass
class AdaptiveRangeTargeter:
    """Two-way adaptive target computation for subset wedge work.

    Implements both mechanisms of Sec. 3.1.1:

    1. the target is recomputed for every subset from the wedge work of the
       *remaining* vertices and the number of subsets still to create, and
    2. the target is scaled by ``s = tgt / covered <= 1`` of the previous
       subset, assuming consecutive subsets overshoot similarly
       ("predictive local behaviour").
    """

    n_partitions: int
    partitions_created: int = 0
    scaling_factor: float = 1.0
    history: list[dict] = field(default_factory=list)

    def next_target(self, remaining_work: float) -> float:
        """Target wedge work for the next subset."""
        remaining_partitions = max(self.n_partitions - self.partitions_created, 1)
        base_target = float(remaining_work) / remaining_partitions
        return base_target * self.scaling_factor

    def record_subset(self, target_work: float, covered_work: float) -> None:
        """Record a finished subset and update the scaling factor."""
        self.partitions_created += 1
        if covered_work > 0 and target_work > 0:
            self.scaling_factor = min(1.0, float(target_work) / float(covered_work))
        else:
            self.scaling_factor = 1.0
        self.history.append(
            {
                "subset": self.partitions_created,
                "target_work": float(target_work),
                "covered_work": float(covered_work),
                "scaling_factor": self.scaling_factor,
            }
        )

    @property
    def exhausted(self) -> bool:
        """Whether the planned number of partitions has been created."""
        return self.partitions_created >= self.n_partitions
