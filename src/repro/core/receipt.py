"""Top-level RECEIPT tip decomposition (CD + FD with all optimizations).

This is the library's flagship entry point.  It composes the three phases
the paper analyses:

1. **pvBcnt** — per-vertex butterfly counting to initialise supports.
2. **RECEIPT CD** — coarse-grained decomposition into tip-number ranges.
3. **RECEIPT FD** — independent per-subset peeling for exact tip numbers.

and records per-phase counters so that every evaluation figure of the paper
(work / time breakdowns, ablations, scalability projections) can be
regenerated from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..butterfly.counting import ButterflyCounts, count_per_vertex
from ..errors import ReproError
from ..graph.bipartite import BipartiteGraph, validate_side
from ..kernels.workspace import WedgeWorkspace, resolve_wedge_budget
from ..obs.log import log_phase
from ..obs.trace import current_tracer
from ..parallel.threadpool import ExecutionContext
from ..peeling.base import PeelingCounters, TipDecompositionResult
from .cd import coarse_grained_decomposition
from .fd import fine_grained_decomposition

__all__ = ["ReceiptConfig", "receipt_decomposition", "tip_decomposition"]

#: Number of vertex subsets the paper settles on after the Fig. 5 sweep.
DEFAULT_PARTITIONS = 150

_VARIANTS = {
    "receipt": {"enable_huc": True, "enable_dgm": True},
    "receipt-": {"enable_huc": True, "enable_dgm": False},
    "receipt--": {"enable_huc": False, "enable_dgm": False},
}


@dataclass
class ReceiptConfig:
    """Configuration of a RECEIPT run.

    Attributes
    ----------
    n_partitions:
        The parameter ``P``: number of tip-number ranges CD creates.
    enable_huc:
        Hybrid Update Computation (Sec. 4.1).
    enable_dgm:
        Dynamic Graph Maintenance (Sec. 4.2).
    huc_cost_factor:
        Multiplier on the re-count cost in the HUC decision; 1.0 reproduces
        the paper's pure wedge-count comparison, larger values bias towards
        peeling to compensate for Python's higher per-wedge counting cost.
    adaptive_range_targets:
        Two-way adaptive range determination (Sec. 3.1.1); disable to fall
        back to a static per-subset wedge target (ablation only).
    n_threads:
        Logical thread count used for work partitioning and reported to the
        parallel cost model; also the worker count of the execution backend.
    use_real_threads:
        Execute parallel regions on OS threads (off by default; the GIL
        makes this a losing proposition for the pure-Python kernels).
        Equivalent to ``backend="thread"`` for the FD task queue.
    backend:
        Execution backend for FD's task fan-out: ``"serial"`` (default),
        ``"thread"``, or ``"process"`` — the multiprocess engine that puts
        the graph in shared memory and dispatches task descriptors to a
        worker pool (:mod:`repro.engine`).  Results are bit-identical
        across backends.
    workload_aware_scheduling:
        Sort FD's task queue by decreasing estimated work.
    counting_algorithm:
        Kernel used for support initialisation (``"parallel"`` or
        ``"vertex-priority"``).
    peel_kernel:
        Support-update kernel used by CD's range peeling and FD's per-subset
        peeling: the shared vectorized ``"batched"`` kernel (default) or the
        per-vertex ``"reference"`` loop kept for ablation and equivalence
        runs (the CLI exposes this as ``--peel-kernel``).
    wedge_budget:
        Wedge endpoints a kernel chunk may materialise at once — the cap on
        the wedge pipeline's peak scratch.  ``None`` (default) uses the
        library default (:data:`repro.kernels.workspace.DEFAULT_WEDGE_BUDGET`);
        zero or a negative value disables chunking.  Exposed on the CLI as
        ``--wedge-budget``.
    """

    n_partitions: int = DEFAULT_PARTITIONS
    enable_huc: bool = True
    enable_dgm: bool = True
    huc_cost_factor: float = 3.0
    adaptive_range_targets: bool = True
    n_threads: int = 1
    use_real_threads: bool = False
    backend: str = "serial"
    workload_aware_scheduling: bool = True
    counting_algorithm: str = "parallel"
    peel_kernel: str = "batched"
    wedge_budget: int | None = None

    @classmethod
    def from_variant(cls, variant: str, **overrides) -> "ReceiptConfig":
        """Build a config from an ablation variant name.

        ``"receipt"`` enables everything, ``"receipt-"`` disables DGM and
        ``"receipt--"`` disables both DGM and HUC — the three configurations
        compared in Figs. 6 and 7.
        """
        key = variant.lower()
        if key not in _VARIANTS:
            raise ReproError(
                f"unknown RECEIPT variant {variant!r}; expected one of {sorted(_VARIANTS)}"
            )
        settings = dict(_VARIANTS[key])
        settings.update(overrides)
        return cls(**settings)


def receipt_decomposition(
    graph: BipartiteGraph,
    side: str = "U",
    *,
    config: ReceiptConfig | None = None,
    counts: ButterflyCounts | None = None,
    context: ExecutionContext | None = None,
    **config_overrides,
) -> TipDecompositionResult:
    """Tip-decompose one side of a bipartite graph with RECEIPT.

    Parameters
    ----------
    graph:
        The bipartite graph.
    side:
        Side to decompose (``"U"`` or ``"V"``).
    config:
        Full configuration object; keyword overrides (e.g.
        ``n_partitions=50``) may be passed directly instead.
    counts:
        Pre-computed per-vertex butterfly counts.  They must have been
        counted on ``graph`` (not on a swapped copy); when omitted they are
        computed as part of the run and charged to the pvBcnt phase.
    context:
        Execution context to reuse; a fresh one matching the configuration
        is created when omitted.

    Returns
    -------
    TipDecompositionResult
        Tip numbers plus per-phase counters and RECEIPT-specific metadata
        (range bounds, subset sizes, per-iteration and per-subset records,
        recorded parallel regions).
    """
    side = validate_side(side)
    if config is None:
        config = ReceiptConfig(**config_overrides)
    elif config_overrides:
        raise ReproError("pass either a config object or keyword overrides, not both")

    workspace = WedgeWorkspace(wedge_budget=resolve_wedge_budget(config.wedge_budget))
    owns_context = context is None
    if context is None:
        effective_backend = config.backend
        if effective_backend == "serial" and config.use_real_threads:
            effective_backend = "thread"
        context = ExecutionContext(
            config.n_threads,
            use_real_threads=config.use_real_threads,
            backend=effective_backend,
        )
    total_counters = PeelingCounters()
    phase_counters: dict[str, PeelingCounters] = {}
    tracer = current_tracer()
    run_span = tracer.timed("receipt", side=side, backend=config.backend,
                            n_partitions=config.n_partitions)

    with run_span:
        try:
            # RECEIPT CD / FD always peel the "U" side of their working graph;
            # for a "V"-side decomposition we simply swap the vertex-set roles.
            working_graph = graph if side == "U" else graph.swap_sides()

            # Phase 1: per-vertex butterfly counting (pvBcnt).
            with tracer.timed("pvBcnt") as counting_span:
                if counts is None:
                    counts = count_per_vertex(graph, algorithm=config.counting_algorithm,
                                              context=context, workspace=workspace)
            counting_counters = PeelingCounters(
                wedges_traversed=counts.wedges_traversed,
                counting_wedges=counts.wedges_traversed,
                elapsed_seconds=counting_span.duration,
                peak_scratch_bytes=workspace.peak_scratch_bytes,
            )
            if counting_span.recording:
                counting_span.set(wedges_traversed=counts.wedges_traversed)
            phase_counters["pvBcnt"] = counting_counters
            log_phase("pvBcnt", counting_counters.elapsed_seconds,
                      wedges_traversed=counting_counters.wedges_traversed)
            initial_butterflies = counts.counts(side).copy()

            # Phase 2: coarse-grained decomposition.
            cd_result = coarse_grained_decomposition(
                working_graph,
                initial_butterflies,
                config.n_partitions,
                enable_huc=config.enable_huc,
                enable_dgm=config.enable_dgm,
                huc_cost_factor=config.huc_cost_factor,
                adaptive_targets=config.adaptive_range_targets,
                context=context,
                peel_kernel=config.peel_kernel,
                workspace=workspace,
            )
            phase_counters["cd"] = cd_result.counters
            log_phase("cd", cd_result.counters.elapsed_seconds,
                      wedges_traversed=cd_result.counters.wedges_traversed,
                      n_subsets=len(cd_result.subsets))

            # Phase 3: fine-grained decomposition.
            fd_result = fine_grained_decomposition(
                working_graph,
                cd_result,
                context=context,
                workload_aware=config.workload_aware_scheduling,
                peel_kernel=config.peel_kernel,
                wedge_budget=config.wedge_budget,
                narrow_ids=workspace.narrow_ids,
            )
            phase_counters["fd"] = fd_result.counters
            log_phase("fd", fd_result.counters.elapsed_seconds,
                      wedges_traversed=fd_result.counters.wedges_traversed,
                      n_subsets=len(fd_result.subset_records))
            context.record_barrier(
                "fd_subsets",
                n_tasks=len(fd_result.subset_records),
                total_work=float(sum(r.wedges_traversed for r in fd_result.subset_records)),
                task_work=[float(r.wedges_traversed) for r in fd_result.subset_records],
                scheduling="lpt" if config.workload_aware_scheduling else "dynamic",
            )
        finally:
            if owns_context:
                # Release pooled workers (threads or processes) the run created;
                # callers who passed a context keep ownership of its pools.
                context.shutdown()

    for phase in phase_counters.values():
        total_counters.merge(phase)
    # The run's wall time is the root span's duration: counters and traces
    # share one clock by construction.
    total_counters.elapsed_seconds = run_span.duration

    return TipDecompositionResult(
        tip_numbers=fd_result.tip_numbers,
        side=side,
        initial_butterflies=initial_butterflies,
        algorithm="RECEIPT",
        counters=total_counters,
        phase_counters=phase_counters,
        extra={
            "config": config,
            "bounds": cd_result.bounds,
            "subset_sizes": [int(subset.size) for subset in cd_result.subsets],
            "subsets": cd_result.subsets,
            "init_supports": cd_result.init_supports,
            "iteration_records": cd_result.iteration_records,
            "targeter_history": cd_result.targeter_history,
            "subset_records": fd_result.subset_records,
            "fd_schedule_order": fd_result.schedule_order,
            "parallel_regions": context.parallel_regions,
            "total_butterflies": counts.total_butterflies,
        },
    )


def tip_decomposition(
    graph: BipartiteGraph,
    side: str = "U",
    *,
    algorithm: str = "receipt",
    **kwargs,
) -> TipDecompositionResult:
    """Convenience dispatcher over all tip-decomposition algorithms.

    ``algorithm`` may be ``"receipt"`` (default; also accepts the ablation
    variants ``"receipt-"`` / ``"receipt--"``), ``"bup"`` for sequential
    bottom-up peeling, or ``"parb"`` for the ParButterfly-style baseline.
    Remaining keyword arguments are forwarded to the chosen implementation.
    """
    from ..peeling.bup import bup_decomposition
    from ..peeling.parbutterfly import parbutterfly_decomposition

    name = algorithm.lower()
    if name in _VARIANTS:
        config = ReceiptConfig.from_variant(name, **{
            key: value for key, value in kwargs.items() if key in ReceiptConfig.__dataclass_fields__
        })
        passthrough = {key: value for key, value in kwargs.items()
                       if key not in ReceiptConfig.__dataclass_fields__}
        return receipt_decomposition(graph, side, config=config, **passthrough)
    if name == "bup":
        return bup_decomposition(graph, side, **kwargs)
    if name in {"parb", "parbutterfly"}:
        return parbutterfly_decomposition(graph, side, **kwargs)
    raise ReproError(f"unknown tip decomposition algorithm {algorithm!r}")
