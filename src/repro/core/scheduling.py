"""Task scheduling for RECEIPT FD (Sec. 3.2.1 and Fig. 3).

RECEIPT FD distributes vertex subsets to threads with two ingredients:

* **Dynamic task allocation** — idle threads pop subset ids from a shared
  queue, so no thread sits idle while tasks remain.
* **Workload-aware scheduling (WaS)** — the queue is sorted by decreasing
  estimated work (induced wedge count), which turns the dynamic allocation
  into the classic Longest-Processing-Time rule, a 4/3-approximation of the
  optimal makespan (Graham).

The functions here compute schedules and makespans from per-task work
estimates; FD uses them to order its task queue and the Fig. 3 benchmark
uses them to quantify the benefit of WaS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Schedule", "greedy_schedule", "lpt_schedule", "workload_aware_order"]


@dataclass(frozen=True)
class Schedule:
    """Assignment of tasks to threads plus the resulting makespan.

    Attributes
    ----------
    assignments:
        ``assignments[t]`` lists the task indices executed by thread ``t``
        in execution order.
    loads:
        Total work per thread.
    makespan:
        ``max(loads)`` — the simulated parallel completion time.
    order:
        The global order in which tasks were dequeued.
    """

    assignments: list[list[int]]
    loads: np.ndarray
    makespan: float
    order: list[int]

    @property
    def n_threads(self) -> int:
        return len(self.assignments)

    @property
    def total_work(self) -> float:
        return float(self.loads.sum())

    @property
    def imbalance(self) -> float:
        """Ratio of makespan to the ideal (perfectly balanced) time."""
        if self.total_work == 0:
            return 1.0
        ideal = self.total_work / self.n_threads
        return float(self.makespan / ideal) if ideal > 0 else 1.0


def greedy_schedule(task_work: np.ndarray, n_threads: int, order: np.ndarray | None = None) -> Schedule:
    """Simulate dynamic task allocation: each task goes to the least-loaded thread.

    ``order`` is the sequence in which tasks arrive at the queue; by default
    it is the natural task order, which models dynamic allocation *without*
    workload-aware sorting (the left-hand side of Fig. 3).
    """
    task_work = np.asarray(task_work, dtype=np.float64)
    n_threads = max(1, int(n_threads))
    if order is None:
        order = np.arange(task_work.shape[0])
    order = np.asarray(order, dtype=np.int64)

    loads = np.zeros(n_threads, dtype=np.float64)
    assignments: list[list[int]] = [[] for _ in range(n_threads)]
    for task in order:
        thread = int(np.argmin(loads))
        loads[thread] += task_work[task]
        assignments[thread].append(int(task))
    makespan = float(loads.max()) if n_threads else 0.0
    return Schedule(assignments=assignments, loads=loads, makespan=makespan,
                    order=[int(task) for task in order])


def workload_aware_order(task_work: np.ndarray) -> np.ndarray:
    """Task order used by WaS: decreasing estimated work, ties by task id."""
    task_work = np.asarray(task_work)
    return np.lexsort((np.arange(task_work.shape[0]), -task_work)).astype(np.int64)


def lpt_schedule(task_work: np.ndarray, n_threads: int) -> Schedule:
    """Longest-Processing-Time schedule (dynamic allocation + WaS ordering)."""
    return greedy_schedule(task_work, n_threads, order=workload_aware_order(task_work))
