"""Post-run analysis helpers for RECEIPT results.

These utilities turn a :class:`~repro.peeling.base.TipDecompositionResult`
produced by :func:`~repro.core.receipt.receipt_decomposition` into the
derived quantities the paper's evaluation section reports: per-phase wedge
and time breakdowns (Figs. 8 and 9), the peel-vs-count work ratio ``r`` that
predicts HUC's benefit (Sec. 5.2.2), and the parallel cost model behind the
speedup projections (Figs. 10 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.costmodel import DEFAULT_BARRIER_COST, ParallelCostModel
from ..peeling.base import TipDecompositionResult

__all__ = [
    "PhaseBreakdown",
    "wedge_breakdown",
    "time_breakdown",
    "peel_to_count_ratio",
    "build_cost_model",
    "projected_speedups",
]

_PHASES = ("pvBcnt", "cd", "fd")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Absolute and fractional contribution of each RECEIPT phase."""

    absolute: dict[str, float]
    fraction: dict[str, float]

    @property
    def total(self) -> float:
        return float(sum(self.absolute.values()))


def _breakdown(values: dict[str, float]) -> PhaseBreakdown:
    total = sum(values.values())
    fractions = {
        phase: (value / total if total > 0 else 0.0) for phase, value in values.items()
    }
    return PhaseBreakdown(absolute=values, fraction=fractions)


def wedge_breakdown(result: TipDecompositionResult) -> PhaseBreakdown:
    """Wedges traversed by pvBcnt / CD / FD (the Fig. 8 bars)."""
    if not result.phase_counters:
        return _breakdown({"total": float(result.counters.wedges_traversed)})
    values = {
        phase: float(result.phase_counters[phase].wedges_traversed)
        for phase in _PHASES
        if phase in result.phase_counters
    }
    return _breakdown(values)


def time_breakdown(result: TipDecompositionResult) -> PhaseBreakdown:
    """Execution time of pvBcnt / CD / FD (the Fig. 9 bars)."""
    if not result.phase_counters:
        return _breakdown({"total": float(result.counters.elapsed_seconds)})
    values = {
        phase: float(result.phase_counters[phase].elapsed_seconds)
        for phase in _PHASES
        if phase in result.phase_counters
    }
    return _breakdown(values)


def peel_to_count_ratio(result: TipDecompositionResult) -> float:
    """The ratio ``r = ∧peel / ∧cnt`` of Sec. 5.2.2.

    Large ``r`` (the paper quotes > 1000 for ItU, LjU, EnU, TrU) predicts a
    large benefit from HUC; ``r < 5`` predicts none.  The numerator is the
    peel work of sequential BUP (``sum_u sum_{v in N(u)} d_v``), which is a
    property of the graph, so the ratio is computed from the result's
    recorded totals when available and falls back to phase counters.
    """
    extra = result.extra or {}
    peel_work = extra.get("bup_peel_work")
    count_work = None
    if result.phase_counters and "pvBcnt" in result.phase_counters:
        count_work = float(result.phase_counters["pvBcnt"].wedges_traversed)
    if peel_work is None or count_work is None or count_work == 0:
        counting = float(result.counters.counting_wedges)
        peeling = float(result.counters.peeling_wedges)
        return peeling / counting if counting > 0 else float("inf")
    return float(peel_work) / float(count_work)


def build_cost_model(
    result: TipDecompositionResult,
    *,
    barrier_cost: float = DEFAULT_BARRIER_COST,
    numa_threshold: int = 18,
    numa_penalty: float = 0.25,
) -> ParallelCostModel:
    """Construct the parallel cost model from a RECEIPT run's recorded regions.

    Every parallel region recorded by the execution context (counting
    chunks, CD peel iterations, the FD task queue with its measured
    per-subset work) becomes one region of the model; replaying them for a
    given thread count yields the projected execution cost.
    """
    regions = (result.extra or {}).get("parallel_regions")
    if not regions:
        raise ValueError(
            "result does not carry recorded parallel regions; "
            "run receipt_decomposition to obtain them"
        )
    # The raw "fd_task_queue" barrier duplicates the richer "fd_subsets"
    # region recorded with measured per-subset work, so it is dropped.
    filtered = [region for region in regions if region.name != "fd_task_queue"]
    return ParallelCostModel.from_region_records(
        filtered,
        barrier_cost=barrier_cost,
        numa_threshold=numa_threshold,
        numa_penalty=numa_penalty,
    )


def projected_speedups(
    result: TipDecompositionResult,
    thread_counts: tuple[int, ...] = (1, 2, 4, 9, 18, 36),
    **model_kwargs,
) -> dict[int, float]:
    """Projected self-relative speedups for the paper's thread counts."""
    model = build_cost_model(result, **model_kwargs)
    return {point.n_threads: point.speedup for point in model.speedup_curve(thread_counts)}
