"""Synthetic dataset generators and the registry of paper-dataset stand-ins."""

from .generators import (
    affiliation_graph,
    nested_tip_hierarchy,
    planted_blocks,
    power_law_bipartite,
    random_bipartite,
)
from .registry import DATASETS, DatasetSpec, dataset_names, dataset_sides, load_dataset

__all__ = [
    "affiliation_graph",
    "nested_tip_hierarchy",
    "planted_blocks",
    "power_law_bipartite",
    "random_bipartite",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "dataset_sides",
    "load_dataset",
]
