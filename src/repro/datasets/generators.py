"""Synthetic bipartite graph generators.

The paper evaluates on six large KONECT datasets that cannot be shipped or
processed at full scale in pure Python.  These generators produce scaled
stand-ins that preserve the structural properties the algorithms are
sensitive to:

* **degree skew** — heavy-tailed degrees on one or both sides drive the
  wedge counts (``sum_v C(d_v, 2)``) that dominate peeling cost;
* **butterfly density** — planted dense blocks (near-bicliques) create the
  deep tip-number hierarchies that make decomposition non-trivial;
* **side asymmetry** — the U and V sides of each dataset differ by orders
  of magnitude in wedge count, which is why the paper decomposes both.

All generators are deterministic given a ``numpy`` random seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..graph.bipartite import BipartiteGraph

__all__ = [
    "random_bipartite",
    "power_law_bipartite",
    "planted_blocks",
    "affiliation_graph",
    "nested_tip_hierarchy",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _edges_to_graph(n_u: int, n_v: int, edges: np.ndarray, name: str) -> BipartiteGraph:
    if edges.size == 0:
        return BipartiteGraph(n_u, n_v, [], name=name)
    unique_edges = np.unique(edges, axis=0)
    return BipartiteGraph(n_u, n_v, unique_edges, name=name)


def random_bipartite(
    n_u: int,
    n_v: int,
    n_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
    name: str = "random",
) -> BipartiteGraph:
    """Uniform random bipartite graph with (approximately) ``n_edges`` edges.

    Edges are sampled uniformly with replacement and de-duplicated, so the
    realised edge count can be slightly below the request for dense settings.
    """
    if n_u <= 0 or n_v <= 0:
        raise DatasetError("random_bipartite requires positive vertex counts")
    if n_edges < 0:
        raise DatasetError("n_edges must be non-negative")
    max_edges = n_u * n_v
    if n_edges > max_edges:
        raise DatasetError(f"requested {n_edges} edges but only {max_edges} are possible")
    generator = _rng(seed)
    u_ids = generator.integers(0, n_u, size=n_edges, dtype=np.int64)
    v_ids = generator.integers(0, n_v, size=n_edges, dtype=np.int64)
    return _edges_to_graph(n_u, n_v, np.column_stack([u_ids, v_ids]), name)


def _power_law_weights(n: int, exponent: float, generator: np.random.Generator) -> np.ndarray:
    """Expected-degree weights following a discrete power law with the given exponent."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / max(exponent - 1.0, 1e-6))
    generator.shuffle(weights)
    return weights / weights.sum()


def power_law_bipartite(
    n_u: int,
    n_v: int,
    n_edges: int,
    *,
    exponent_u: float = 2.5,
    exponent_v: float = 2.0,
    seed: int | np.random.Generator | None = None,
    name: str = "power-law",
) -> BipartiteGraph:
    """Chung–Lu style bipartite graph with power-law expected degrees.

    Endpoints of each edge are drawn independently from per-side weight
    distributions ``w_i ∝ rank^{-1/(γ-1)}``; smaller exponents give heavier
    tails.  This is the workhorse generator for the KONECT stand-ins: the
    ``V``-side exponent controls how many wedges land on the ``U`` side.
    """
    if n_u <= 0 or n_v <= 0:
        raise DatasetError("power_law_bipartite requires positive vertex counts")
    generator = _rng(seed)
    u_weights = _power_law_weights(n_u, exponent_u, generator)
    v_weights = _power_law_weights(n_v, exponent_v, generator)
    u_ids = generator.choice(n_u, size=n_edges, p=u_weights).astype(np.int64)
    v_ids = generator.choice(n_v, size=n_edges, p=v_weights).astype(np.int64)
    return _edges_to_graph(n_u, n_v, np.column_stack([u_ids, v_ids]), name)


def planted_blocks(
    n_u: int,
    n_v: int,
    blocks: list[tuple[int, int]],
    *,
    background_edges: int = 0,
    block_density: float = 0.9,
    seed: int | np.random.Generator | None = None,
    name: str = "planted-blocks",
) -> BipartiteGraph:
    """Graph with dense planted blocks over a sparse random background.

    Each ``(block_u, block_v)`` entry plants a near-biclique between
    ``block_u`` fresh ``U`` vertices and ``block_v`` fresh ``V`` vertices
    (each potential edge kept with probability ``block_density``).  Blocks
    are laid out consecutively; remaining vertices only receive background
    edges.  Dense blocks are butterfly factories, so the planted vertices
    acquire large tip numbers while background vertices stay near zero —
    the structure tip decomposition is designed to reveal.
    """
    generator = _rng(seed)
    edges: list[np.ndarray] = []
    u_cursor, v_cursor = 0, 0
    for block_u, block_v in blocks:
        if u_cursor + block_u > n_u or v_cursor + block_v > n_v:
            raise DatasetError("planted blocks exceed the requested vertex counts")
        block_u_ids = np.arange(u_cursor, u_cursor + block_u, dtype=np.int64)
        block_v_ids = np.arange(v_cursor, v_cursor + block_v, dtype=np.int64)
        grid_u = np.repeat(block_u_ids, block_v)
        grid_v = np.tile(block_v_ids, block_u)
        keep = generator.random(grid_u.shape[0]) < block_density
        edges.append(np.column_stack([grid_u[keep], grid_v[keep]]))
        u_cursor += block_u
        v_cursor += block_v
    if background_edges > 0:
        u_ids = generator.integers(0, n_u, size=background_edges, dtype=np.int64)
        v_ids = generator.integers(0, n_v, size=background_edges, dtype=np.int64)
        edges.append(np.column_stack([u_ids, v_ids]))
    all_edges = np.concatenate(edges) if edges else np.zeros((0, 2), dtype=np.int64)
    return _edges_to_graph(n_u, n_v, all_edges, name)


def affiliation_graph(
    n_u: int,
    n_v: int,
    n_communities: int,
    *,
    community_size_u: int = 30,
    community_size_v: int = 8,
    membership_probability: float = 0.6,
    background_edges: int = 0,
    seed: int | np.random.Generator | None = None,
    name: str = "affiliation",
) -> BipartiteGraph:
    """Affiliation-network model (users × groups with overlapping communities).

    Each community picks ``community_size_u`` random users and
    ``community_size_v`` random groups and connects each user-group pair
    with ``membership_probability``.  Unlike :func:`planted_blocks`, the
    communities *overlap* (vertices are drawn with replacement across
    communities), producing the butterfly-connected hierarchies typical of
    the social-membership datasets (Orkut, LiveJournal) in the paper.
    """
    generator = _rng(seed)
    edges: list[np.ndarray] = []
    for _ in range(n_communities):
        users = generator.choice(n_u, size=min(community_size_u, n_u), replace=False)
        groups = generator.choice(n_v, size=min(community_size_v, n_v), replace=False)
        grid_u = np.repeat(users, groups.shape[0])
        grid_v = np.tile(groups, users.shape[0])
        keep = generator.random(grid_u.shape[0]) < membership_probability
        edges.append(np.column_stack([grid_u[keep], grid_v[keep]]).astype(np.int64))
    if background_edges > 0:
        u_ids = generator.integers(0, n_u, size=background_edges, dtype=np.int64)
        v_ids = generator.integers(0, n_v, size=background_edges, dtype=np.int64)
        edges.append(np.column_stack([u_ids, v_ids]))
    all_edges = np.concatenate(edges) if edges else np.zeros((0, 2), dtype=np.int64)
    return _edges_to_graph(n_u, n_v, all_edges, name)


def nested_tip_hierarchy(
    n_levels: int = 4,
    *,
    base_u: int = 6,
    base_v: int = 4,
    growth: int = 2,
    seed: int | np.random.Generator | None = None,
    name: str = "nested-hierarchy",
) -> BipartiteGraph:
    """A deterministic graph with a nested dense structure.

    ``U`` vertices added at level ``k`` connect to every ``V`` vertex of
    levels ``0 .. k``; deeper levels therefore share progressively larger
    neighbourhoods, participate in more butterflies and survive longer under
    peeling.  Useful in tests and examples where a non-trivial but
    reproducible hierarchy is needed.  The ``seed`` argument is accepted for
    API symmetry with the random generators but has no effect.
    """
    if n_levels < 1:
        raise DatasetError("n_levels must be at least 1")
    edges: list[tuple[int, int]] = []
    u_total, v_total = 0, 0
    for level in range(n_levels):
        new_u = base_u + growth * level
        new_v = base_v + growth * level
        v_total += new_v
        for u in range(u_total, u_total + new_u):
            for v in range(v_total):
                edges.append((u, v))
        u_total += new_u
    return _edges_to_graph(u_total, v_total, np.asarray(edges, dtype=np.int64), name)
