"""Registry of the paper's evaluation datasets and their synthetic stand-ins.

The paper evaluates on six KONECT bipartite graphs (Table 2) ranging from
12.6M to 327M edges.  Those graphs cannot be redistributed here and pure
Python cannot traverse the trillions of wedges they contain, so each entry
of this registry pairs the *published* statistics of the original dataset
with a generator for a laptop-scale stand-in that preserves the structural
traits the algorithms respond to: the ``U``/``V`` size ratio, the degree
skew of each side (and therefore the extreme wedge asymmetry between
peeling ``U`` and peeling ``V``), and butterfly-dense communities.

Use :func:`load_dataset` to obtain a stand-in graph and
:func:`dataset_names` to enumerate them; the benchmark harness iterates the
registry exactly like the paper iterates Table 2.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import DatasetError
from ..graph.bipartite import BipartiteGraph
from .generators import affiliation_graph, power_law_bipartite

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "CACHE_ENV",
    "dataset_names",
    "load_dataset",
    "dataset_sides",
]

#: Opt-in on-disk caching of generated stand-ins: set this environment
#: variable to a directory path and :func:`load_dataset` will store / reuse
#: graphs keyed by ``(key, scale, seed)`` instead of regenerating them.
#: Intended for CI's benchmark jobs, where the same synthetic graphs are
#: otherwise rebuilt on every run.
CACHE_ENV = "REPRO_DATASET_CACHE"

_CACHE_FORMAT = 1
_CODE_FINGERPRINT: str | None = None


def _merge(name: str, *graphs: BipartiteGraph) -> BipartiteGraph:
    """Union of edge sets over graphs sharing the same vertex-id spaces."""
    n_u = max(graph.n_u for graph in graphs)
    n_v = max(graph.n_v for graph in graphs)
    edges = np.concatenate([graph.edge_array() for graph in graphs])
    edges = np.unique(edges, axis=0)
    return BipartiteGraph(n_u, n_v, edges, name=name)


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: published statistics plus a stand-in generator.

    Attributes
    ----------
    key:
        Short lower-case identifier (``"it"``, ``"de"``, ...).  The paper's
        per-side labels (``ItU``, ``ItV``) append the peeled side.
    description:
        What the original graph models.
    paper_stats:
        The original Table 2 row (sizes, average degrees, butterfly and
        wedge counts in billions, maximum tip numbers) for reference in
        EXPERIMENTS.md.
    builder:
        Callable producing the stand-in graph given ``(scale, seed)``.
    default_seed:
        Seed used when the caller does not supply one, keeping benchmark
        outputs reproducible.
    """

    key: str
    description: str
    paper_stats: dict = field(repr=False)
    builder: Callable[[float, int], BipartiteGraph] = field(repr=False)
    default_seed: int = 7

    def generate(self, scale: float = 1.0, seed: int | None = None) -> BipartiteGraph:
        """Build the stand-in graph at the requested scale."""
        if scale <= 0:
            raise DatasetError("scale must be positive")
        graph = self.builder(scale, self.default_seed if seed is None else seed)
        graph.name = self.key
        return graph


def _scaled(value: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(value * scale)))


def _build_it(scale: float, seed: int) -> BipartiteGraph:
    # Italian Wikipedia pages (U) x editors (V): few very prolific editors
    # give the U side a wedge count three orders of magnitude above the V
    # side.
    rng = np.random.default_rng(seed)
    skeleton = power_law_bipartite(
        _scaled(3000, scale), _scaled(240, scale), _scaled(15000, scale),
        exponent_u=2.6, exponent_v=1.9, seed=rng, name="it",
    )
    communities = affiliation_graph(
        skeleton.n_u, skeleton.n_v, _scaled(25, scale),
        community_size_u=20, community_size_v=6, membership_probability=0.7,
        seed=rng, name="it-communities",
    )
    return _merge("it", skeleton, communities)


def _build_de(scale: float, seed: int) -> BipartiteGraph:
    # Delicious users (U) x tags (V): popular tags are reused by thousands
    # of users.
    rng = np.random.default_rng(seed)
    skeleton = power_law_bipartite(
        _scaled(4500, scale), _scaled(800, scale), _scaled(28000, scale),
        exponent_u=2.2, exponent_v=2.0, seed=rng, name="de",
    )
    communities = affiliation_graph(
        skeleton.n_u, skeleton.n_v, _scaled(40, scale),
        community_size_u=25, community_size_v=8, membership_probability=0.6,
        seed=rng, name="de-communities",
    )
    return _merge("de", skeleton, communities)


def _build_or(scale: float, seed: int) -> BipartiteGraph:
    # Orkut users (U) x groups (V): both sides dense, strong community
    # structure, the largest butterfly count of the collection.
    rng = np.random.default_rng(seed)
    skeleton = power_law_bipartite(
        _scaled(3000, scale), _scaled(3600, scale), _scaled(36000, scale),
        exponent_u=2.3, exponent_v=1.95, seed=rng, name="or",
    )
    communities = affiliation_graph(
        skeleton.n_u, skeleton.n_v, _scaled(60, scale),
        community_size_u=30, community_size_v=10, membership_probability=0.6,
        seed=rng, name="or-communities",
    )
    return _merge("or", skeleton, communities)


def _build_lj(scale: float, seed: int) -> BipartiteGraph:
    # LiveJournal users (U) x groups (V).
    rng = np.random.default_rng(seed)
    skeleton = power_law_bipartite(
        _scaled(4000, scale), _scaled(5500, scale), _scaled(25000, scale),
        exponent_u=2.5, exponent_v=2.0, seed=rng, name="lj",
    )
    communities = affiliation_graph(
        skeleton.n_u, skeleton.n_v, _scaled(50, scale),
        community_size_u=24, community_size_v=9, membership_probability=0.55,
        seed=rng, name="lj-communities",
    )
    return _merge("lj", skeleton, communities)


def _build_en(scale: float, seed: int) -> BipartiteGraph:
    # English Wikipedia pages (U) x editors (V): like It but larger and even
    # more editor-skewed.
    rng = np.random.default_rng(seed)
    skeleton = power_law_bipartite(
        _scaled(7000, scale), _scaled(1200, scale), _scaled(28000, scale),
        exponent_u=2.5, exponent_v=1.9, seed=rng, name="en",
    )
    communities = affiliation_graph(
        skeleton.n_u, skeleton.n_v, _scaled(35, scale),
        community_size_u=22, community_size_v=7, membership_probability=0.65,
        seed=rng, name="en-communities",
    )
    return _merge("en", skeleton, communities)


def _build_tr(scale: float, seed: int) -> BipartiteGraph:
    # Internet domains (U) x trackers (V): a handful of trackers appear on a
    # huge fraction of all domains, producing the most extreme U-side wedge
    # count of the collection (the paper's flagship "only RECEIPT finishes"
    # dataset).
    rng = np.random.default_rng(seed)
    skeleton = power_law_bipartite(
        _scaled(9000, scale), _scaled(3500, scale), _scaled(30000, scale),
        exponent_u=2.5, exponent_v=1.8, seed=rng, name="tr",
    )
    communities = affiliation_graph(
        skeleton.n_u, skeleton.n_v, _scaled(30, scale),
        community_size_u=28, community_size_v=6, membership_probability=0.7,
        seed=rng, name="tr-communities",
    )
    return _merge("tr", skeleton, communities)


DATASETS: dict[str, DatasetSpec] = {
    "it": DatasetSpec(
        key="it",
        description="Pages and editors from the Italian Wikipedia (KONECT: edit-itwiki)",
        paper_stats={
            "n_u": 2_255_875, "n_v": 137_693, "n_edges": 12_644_802,
            "avg_degree_u": 5.6, "avg_degree_v": 91.8,
            "butterflies_billions": 298, "wedges_billions": 361,
            "theta_max_u": 1_555_462, "theta_max_v": 5_328_302_365,
            "bup_wedges_billions_u": 723, "bup_wedges_billions_v": 0.57,
        },
        builder=_build_it,
        default_seed=11,
    ),
    "de": DatasetSpec(
        key="de",
        description="Users and tags from delicious.com (KONECT: delicious-ut)",
        paper_stats={
            "n_u": 4_512_099, "n_v": 833_081, "n_edges": 81_989_133,
            "avg_degree_u": 18.2, "avg_degree_v": 98.4,
            "butterflies_billions": 26_683, "wedges_billions": 1_446,
            "theta_max_u": 936_468_800, "theta_max_v": 91_968_444_615,
            "bup_wedges_billions_u": 2_861, "bup_wedges_billions_v": 70.1,
        },
        builder=_build_de,
        default_seed=13,
    ),
    "or": DatasetSpec(
        key="or",
        description="User group memberships in Orkut (KONECT: orkut-groupmemberships)",
        paper_stats={
            "n_u": 2_783_196, "n_v": 8_730_857, "n_edges": 327_037_487,
            "avg_degree_u": 117.5, "avg_degree_v": 37.5,
            "butterflies_billions": 22_131, "wedges_billions": 2_528,
            "theta_max_u": 88_812_453, "theta_max_v": 29_285_249_823,
            "bup_wedges_billions_u": 4_975, "bup_wedges_billions_v": 231.4,
        },
        builder=_build_or,
        default_seed=17,
    ),
    "lj": DatasetSpec(
        key="lj",
        description="User group memberships in LiveJournal (KONECT: livejournal-groupmemberships)",
        paper_stats={
            "n_u": 3_201_203, "n_v": 7_489_073, "n_edges": 112_307_385,
            "avg_degree_u": 35.1, "avg_degree_v": 15.0,
            "butterflies_billions": 3_297, "wedges_billions": 2_703,
            "theta_max_u": 4_670_317, "theta_max_v": 82_785_273_931,
            "bup_wedges_billions_u": 5_403, "bup_wedges_billions_v": 14.3,
        },
        builder=_build_lj,
        default_seed=19,
    ),
    "en": DatasetSpec(
        key="en",
        description="Pages and editors from the English Wikipedia (KONECT: edit-enwiki)",
        paper_stats={
            "n_u": 21_504_191, "n_v": 3_819_691, "n_edges": 122_075_170,
            "avg_degree_u": 5.7, "avg_degree_v": 32.0,
            "butterflies_billions": 2_036, "wedges_billions": 6_299,
            "theta_max_u": 37_217_466, "theta_max_v": 96_241_348_356,
            "bup_wedges_billions_u": 12_583, "bup_wedges_billions_v": 29.6,
        },
        builder=_build_en,
        default_seed=23,
    ),
    "tr": DatasetSpec(
        key="tr",
        description="Internet domains and the trackers embedded in them (KONECT: trackers-trackers)",
        paper_stats={
            "n_u": 27_665_730, "n_v": 12_756_244, "n_edges": 140_613_762,
            "avg_degree_u": 5.1, "avg_degree_v": 11.0,
            "butterflies_billions": 20_068, "wedges_billions": 106_441,
            "theta_max_u": 18_667_660_476, "theta_max_v": 3_030_765_085_153,
            "bup_wedges_billions_u": 211_156, "bup_wedges_billions_v": 1_740,
        },
        builder=_build_tr,
        default_seed=29,
    ),
}


def _code_fingerprint() -> str:
    """Digest of the generator code, part of every cache key.

    Editing ``generators.py`` or this module changes what a given
    ``(key, scale, seed)`` produces; folding a source digest into the file
    name invalidates stale entries automatically instead of relying on a
    manual ``_CACHE_FORMAT`` bump.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import hashlib

        from . import generators

        digest = hashlib.sha256()
        for module_file in (generators.__file__, __file__):
            try:
                digest.update(Path(module_file).read_bytes())
            except OSError:
                digest.update(module_file.encode())
        _CODE_FINGERPRINT = digest.hexdigest()[:10]
    return _CODE_FINGERPRINT


def _cache_file(cache_dir: str, key: str, scale: float, seed: int) -> Path:
    # repr(float) is round-trip exact, so distinct scales never collide.
    return Path(cache_dir) / (
        f"{key}-scale{repr(float(scale))}-seed{seed}"
        f"-v{_CACHE_FORMAT}-{_code_fingerprint()}.npz"
    )


def _load_cached(path: Path, key: str) -> BipartiteGraph | None:
    """Rebuild a cached stand-in, or ``None`` when absent/corrupt."""
    if not path.is_file():
        return None
    try:
        with np.load(path) as payload:
            graph = BipartiteGraph(
                int(payload["n_u"]), int(payload["n_v"]),
                np.asarray(payload["edges"], dtype=np.int64),
                name=key,
            )
        return graph
    except Exception:
        # A truncated or stale file must never poison the run — fall back
        # to regeneration (which also rewrites the entry).
        return None


def _store_cached(path: Path, graph: BipartiteGraph) -> None:
    """Best-effort atomic write; caching failures never fail the caller."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp.npz"
        )
        os.close(handle)
        try:
            np.savez_compressed(
                tmp_name,
                n_u=np.int64(graph.n_u),
                n_v=np.int64(graph.n_v),
                edges=graph.edge_array(),
            )
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    except OSError:
        pass


def dataset_names() -> list[str]:
    """Keys of all registered datasets, in the paper's Table 2 order."""
    return list(DATASETS.keys())


def dataset_sides() -> list[tuple[str, str]]:
    """All (dataset, side) pairs the paper evaluates: ItU, ItV, DeU, ..."""
    return [(key, side) for key in DATASETS for side in ("U", "V")]


def load_dataset(key: str, *, scale: float = 1.0, seed: int | None = None) -> BipartiteGraph:
    """Generate the stand-in graph for one registered dataset.

    Parameters
    ----------
    key:
        Dataset key (``"it"``, ``"de"``, ``"or"``, ``"lj"``, ``"en"``,
        ``"tr"``), case-insensitive; the per-side suffix of the paper's
        labels (``"ItU"``) is accepted and ignored.
    scale:
        Multiplier on vertex and edge counts (1.0 ≈ tens of thousands of
        edges; use smaller values in quick tests).
    seed:
        Random seed; the spec's default keeps results reproducible.

    Notes
    -----
    When the ``REPRO_DATASET_CACHE`` environment variable names a
    directory, generated graphs are cached there as ``.npz`` files keyed by
    ``(key, scale, seed)`` and reused on subsequent calls — generation is
    deterministic, so a cache hit is byte-identical to a fresh build.
    """
    normalised = key.lower()
    if normalised not in DATASETS and normalised[:-1] in DATASETS and normalised[-1] in ("u", "v"):
        normalised = normalised[:-1]
    if normalised not in DATASETS:
        raise DatasetError(f"unknown dataset {key!r}; known: {', '.join(dataset_names())}")
    spec = DATASETS[normalised]
    resolved_seed = spec.default_seed if seed is None else int(seed)

    cache_dir = os.environ.get(CACHE_ENV, "").strip()
    if cache_dir:
        if scale <= 0:
            raise DatasetError("scale must be positive")
        path = _cache_file(cache_dir, normalised, scale, resolved_seed)
        cached = _load_cached(path, normalised)
        if cached is not None:
            return cached
        graph = spec.generate(scale=scale, seed=resolved_seed)
        _store_cached(path, graph)
        return graph

    return spec.generate(scale=scale, seed=resolved_seed)
