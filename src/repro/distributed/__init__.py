"""Distributed-memory simulation of RECEIPT CD (paper Sec. 7 extension)."""

from .simulation import DistributedCdReport, partition_vertices, simulate_distributed_cd

__all__ = ["DistributedCdReport", "partition_vertices", "simulate_distributed_cd"]
