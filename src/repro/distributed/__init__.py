"""Distributed-memory simulation of RECEIPT CD/FD (paper Sec. 7 extension)."""

from .simulation import (
    DistributedCdReport,
    FdFanoutReport,
    partition_vertices,
    simulate_distributed_cd,
    simulate_fd_fanout,
)

__all__ = [
    "DistributedCdReport",
    "FdFanoutReport",
    "partition_vertices",
    "simulate_distributed_cd",
    "simulate_fd_fanout",
]
