"""Simulation of distributed-memory coarse-grained decomposition (Sec. 7).

The paper's future-work discussion argues that RECEIPT's independent
tip-number ranges are a good fit for distributed-memory systems, but that
support updates crossing process boundaries would have to be communicated
and could limit scalability.  This module quantifies that trade-off without
an actual cluster: it replays RECEIPT CD's range peeling with the ``U``
vertices partitioned across ``W`` workers and counts, per synchronization
round,

* the wedge work performed by each worker (load balance),
* support updates whose target vertex lives on the same worker (local), and
* support updates that would travel over the network (remote messages),
  optionally aggregated per (source worker, target worker) pair per round —
  the bulk-synchronous aggregation a real implementation would use.

The peeling itself is exactly the shared-memory CD schedule, so the subsets
produced match :func:`repro.core.cd.coarse_grained_decomposition` (with HUC
disabled, as recounting is a shared-memory optimization); only the
accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..butterfly.counting import count_per_vertex
from ..core.ranges import AdaptiveRangeTargeter, find_range_upper_bound
from ..core.scheduling import Schedule, greedy_schedule, lpt_schedule
from ..engine.tasks import FdTask, build_fd_tasks
from ..errors import ReproError
from ..graph.bipartite import BipartiteGraph, validate_side
from ..graph.dynamic import PeelableAdjacency
from ..peeling.update import peel_vertex

__all__ = [
    "partition_vertices",
    "DistributedCdReport",
    "simulate_distributed_cd",
    "FdFanoutReport",
    "simulate_fd_fanout",
]


def partition_vertices(
    graph: BipartiteGraph,
    n_workers: int,
    *,
    side: str = "U",
    strategy: str = "work-balanced",
    seed: int | None = None,
) -> np.ndarray:
    """Assign every ``side`` vertex to one of ``n_workers`` workers.

    Strategies
    ----------
    ``"block"``
        Contiguous equal-count ranges of vertex ids.
    ``"hash"``
        Pseudo-random assignment (uniform expected counts).
    ``"work-balanced"``
        LPT assignment over the per-vertex wedge work, the natural choice
        when the goal is to balance peel work across processes.
    """
    side = validate_side(side)
    n_vertices = graph.side_size(side)
    if n_workers < 1:
        raise ReproError("n_workers must be at least 1")
    if strategy == "block":
        return np.minimum(
            (np.arange(n_vertices, dtype=np.int64) * n_workers) // max(n_vertices, 1),
            n_workers - 1,
        )
    if strategy == "hash":
        rng = np.random.default_rng(seed)
        return rng.integers(0, n_workers, size=n_vertices, dtype=np.int64)
    if strategy == "work-balanced":
        work = graph.wedge_work_per_vertex(side).astype(np.float64)
        schedule = lpt_schedule(work, n_workers)
        owners = np.zeros(n_vertices, dtype=np.int64)
        for worker, tasks in enumerate(schedule.assignments):
            owners[np.asarray(tasks, dtype=np.int64)] = worker
        return owners
    raise ReproError(f"unknown partitioning strategy {strategy!r}")


@dataclass
class DistributedCdReport:
    """Communication and load-balance profile of distributed RECEIPT CD."""

    n_workers: int
    n_partitions: int
    strategy: str
    synchronization_rounds: int = 0
    local_updates: int = 0
    remote_updates: int = 0
    aggregated_messages: int = 0
    wedges_traversed: int = 0
    per_worker_work: np.ndarray = field(default_factory=lambda: np.zeros(0))
    subsets: list[np.ndarray] = field(default_factory=list)
    bounds: list[int] = field(default_factory=list)

    @property
    def remote_fraction(self) -> float:
        """Fraction of support updates that cross worker boundaries."""
        total = self.local_updates + self.remote_updates
        return self.remote_updates / total if total else 0.0

    @property
    def load_imbalance(self) -> float:
        """Max-to-mean ratio of per-worker wedge work (1.0 = perfect)."""
        if self.per_worker_work.size == 0 or self.per_worker_work.sum() == 0:
            return 1.0
        return float(self.per_worker_work.max() / self.per_worker_work.mean())

    def summary(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "strategy": self.strategy,
            "synchronization_rounds": self.synchronization_rounds,
            "local_updates": self.local_updates,
            "remote_updates": self.remote_updates,
            "remote_fraction": round(self.remote_fraction, 4),
            "aggregated_messages": self.aggregated_messages,
            "wedges_traversed": self.wedges_traversed,
            "load_imbalance": round(self.load_imbalance, 3),
        }


def simulate_distributed_cd(
    graph: BipartiteGraph,
    n_partitions: int,
    n_workers: int,
    *,
    strategy: str = "work-balanced",
    owners: np.ndarray | None = None,
    initial_supports: np.ndarray | None = None,
    seed: int | None = None,
) -> DistributedCdReport:
    """Replay RECEIPT CD with ``U`` distributed over ``n_workers`` workers.

    Parameters
    ----------
    graph:
        Bipartite graph whose ``U`` side is decomposed.
    n_partitions:
        Number of tip-number ranges (the CD parameter ``P``).
    n_workers:
        Number of simulated distributed-memory processes.
    strategy / owners:
        Either a partitioning strategy name (see :func:`partition_vertices`)
        or an explicit owner array.
    initial_supports:
        Optional pre-computed butterfly counts of the ``U`` side.
    """
    if n_partitions < 1:
        raise ReproError("n_partitions must be at least 1")
    if owners is None:
        owners = partition_vertices(graph, n_workers, strategy=strategy, seed=seed)
    owners = np.asarray(owners, dtype=np.int64)
    if owners.shape[0] != graph.n_u:
        raise ReproError("owners array must cover every U vertex")

    if initial_supports is None:
        initial_supports = count_per_vertex(graph).u_counts
    supports = np.array(initial_supports, dtype=np.int64, copy=True)

    wedge_work = graph.wedge_work_per_vertex("U")
    adjacency = PeelableAdjacency(graph, "U", enable_dgm=True)
    alive = adjacency.alive_mask()
    targeter = AdaptiveRangeTargeter(n_partitions=n_partitions)

    report = DistributedCdReport(
        n_workers=int(n_workers),
        n_partitions=int(n_partitions),
        strategy=strategy if owners is None else strategy,
        per_worker_work=np.zeros(int(n_workers), dtype=np.float64),
        bounds=[0],
    )

    while alive.any() and not targeter.exhausted:
        lower_bound = report.bounds[-1]
        alive_vertices = np.flatnonzero(alive)
        remaining_work = float(wedge_work[alive_vertices].sum())
        target = targeter.next_target(remaining_work)
        upper_bound = max(
            find_range_upper_bound(supports[alive_vertices], wedge_work[alive_vertices], target),
            lower_bound + 1,
        )

        subset_pieces: list[np.ndarray] = []
        active = alive_vertices[supports[alive_vertices] < upper_bound]
        while active.size:
            report.synchronization_rounds += 1
            subset_pieces.append(active)
            adjacency.mark_peeled_many(active)

            # Message aggregation: within one bulk-synchronous round, each
            # (source worker -> target worker) pair exchanges one message
            # carrying all its accumulated updates.
            message_pairs: set[tuple[int, int]] = set()
            for vertex in active:
                vertex = int(vertex)
                source_worker = int(owners[vertex])
                update = peel_vertex(adjacency, supports, vertex, lower_bound)
                report.wedges_traversed += update.wedges_traversed
                report.per_worker_work[source_worker] += update.wedges_traversed
                target_workers = owners[update.updated_vertices]
                local = int(np.count_nonzero(target_workers == source_worker))
                report.local_updates += local
                report.remote_updates += int(target_workers.size - local)
                for target_worker in np.unique(target_workers):
                    if int(target_worker) != source_worker:
                        message_pairs.add((source_worker, int(target_worker)))
            report.aggregated_messages += len(message_pairs)
            adjacency.maybe_compact()

            candidates = np.flatnonzero(alive)
            active = candidates[supports[candidates] < upper_bound]

        subset = (
            np.concatenate(subset_pieces) if subset_pieces else np.zeros(0, dtype=np.int64)
        )
        covered = float(wedge_work[subset].sum()) if subset.size else 0.0
        targeter.record_subset(target, covered)
        report.subsets.append(subset)
        report.bounds.append(int(upper_bound))

    leftovers = np.flatnonzero(alive)
    if leftovers.size:
        report.subsets.append(leftovers)
        report.bounds.append(int(supports[leftovers].max()) + 1)

    return report


@dataclass
class FdFanoutReport:
    """Projected multi-worker profile of RECEIPT FD's task fan-out.

    Built from the *same* task descriptors the execution engine dispatches
    (:func:`repro.engine.tasks.build_fd_tasks`), so the projection and the
    real ``process`` backend agree on task granularity and LPT weights.
    """

    n_workers: int
    tasks: list[FdTask]
    schedule: Schedule

    @property
    def makespan(self) -> float:
        """Simulated completion time (max per-worker estimated work)."""
        return float(self.schedule.makespan)

    @property
    def projected_speedup(self) -> float:
        """Total estimated work over makespan — the Fig. 10-style bound."""
        total = float(self.schedule.total_work)
        return total / self.makespan if self.makespan > 0 else 1.0

    def summary(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "n_tasks": len(self.tasks),
            "total_estimated_work": float(self.schedule.total_work),
            "makespan": self.makespan,
            "projected_speedup": round(self.projected_speedup, 3),
            "load_imbalance": round(self.schedule.imbalance, 3),
        }


def simulate_fd_fanout(
    graph: BipartiteGraph,
    subsets: list[np.ndarray],
    n_workers: int,
    *,
    workload_aware: bool = True,
) -> FdFanoutReport:
    """Project FD's task fan-out onto ``n_workers`` without running it.

    Builds the engine's task descriptors for CD's ``subsets`` (weighted by
    the same wedge-work proxy FD schedules with) and replays the dynamic
    task queue — LPT when ``workload_aware``, arrival order otherwise.
    The resulting makespan bounds what the ``process`` backend can achieve
    on ideal hardware, which makes it the cheap first check before paying
    for a real multiprocess run.
    """
    if n_workers < 1:
        raise ReproError("n_workers must be at least 1")
    wedge_work = graph.wedge_work_per_vertex("U")
    estimated_work = np.array(
        [float(wedge_work[subset].sum()) if subset.size else 0.0 for subset in subsets]
    )
    _, tasks = build_fd_tasks(subsets, estimated_work)
    if workload_aware:
        schedule = lpt_schedule(estimated_work, n_workers)
    else:
        schedule = greedy_schedule(estimated_work, n_workers)
    return FdFanoutReport(n_workers=int(n_workers), tasks=tasks, schedule=schedule)
