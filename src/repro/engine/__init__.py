"""Execution engine: shared-memory graph store + pluggable FD backends.

RECEIPT FD's subsets are independent tasks that synchronize exactly once
(Alg. 4); this subsystem turns that property into real multiprocess
execution.  It has three parts:

* :mod:`repro.engine.tasks` — FD work expressed as picklable descriptors
  (:class:`FdTask`) over a shared :class:`FdJob`, with one task body
  (:func:`execute_fd_task`) every backend runs, keeping results
  bit-identical.
* :mod:`repro.engine.shm` — the shared-memory store: dual-CSR graph arrays,
  flat subsets and ``⋈init`` supports exported once per fan-out and
  attached zero-copy by workers.
* :mod:`repro.engine.backends` — ``serial`` / ``thread`` / ``process``
  backends behind one interface, selected through
  :class:`~repro.parallel.threadpool.ExecutionContext` (``backend=...``,
  CLI ``--backend``).
"""

from .backends import (
    BACKEND_NAMES,
    EngineBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
    default_start_method,
)
from .shm import (
    AttachedFdJob,
    SharedFdJob,
    SharedFdJobSpec,
    ShmArraySpec,
    attach_fd_job,
    share_fd_job,
)
from .tasks import FdJob, FdTask, FdTaskResult, build_fd_tasks, execute_fd_task

__all__ = [
    "BACKEND_NAMES",
    "EngineBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
    "default_start_method",
    "ShmArraySpec",
    "SharedFdJobSpec",
    "SharedFdJob",
    "AttachedFdJob",
    "share_fd_job",
    "attach_fd_job",
    "FdJob",
    "FdTask",
    "FdTaskResult",
    "build_fd_tasks",
    "execute_fd_task",
]
