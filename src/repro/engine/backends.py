"""Pluggable execution backends for the FD task fan-out.

Three interchangeable implementations of :class:`EngineBackend` run the same
:func:`~repro.engine.tasks.execute_fd_task` bodies:

``serial``
    In-order execution on the calling thread — the reference semantics.
``thread``
    A ``ThreadPoolExecutor`` fan-out.  CPython's GIL serialises the pure
    Python portions, so this mostly overlaps the numpy segments; it exists
    as the cheap middle rung and for API parity with the paper's
    shared-memory threading.
``process``
    A persistent ``ProcessPoolExecutor`` whose workers attach to the job's
    shared-memory graph store (:mod:`repro.engine.shm`) zero-copy.  Tasks
    cross the boundary as picklable :class:`~repro.engine.tasks.FdTask`
    descriptors plus a small job spec; results return through the pool.
    This is the backend that produces real wall-clock scaling on multicore
    hardware (Fig. 10 of the paper).

Because every backend runs the identical task body on identical inputs and
the caller merges results in task order, tip numbers and work counters are
bit-identical across backends — only ``elapsed_seconds`` differs.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from ..errors import ReproError
from .shm import AttachedFdJob, SharedFdJobSpec, attach_fd_job, share_fd_job
from .tasks import FdJob, FdTask, FdTaskResult, execute_fd_task

__all__ = [
    "BACKEND_NAMES",
    "EngineBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
]

BACKEND_NAMES = ("serial", "thread", "process")

#: Environment override for the multiprocessing start method ("fork",
#: "spawn" or "forkserver"); the default prefers fork on Linux for its
#: near-zero pool startup cost.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


class EngineBackend:
    """Interface every execution backend implements."""

    name: str = "?"

    def __init__(self, n_workers: int = 1):
        if n_workers < 1:
            raise ReproError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)

    def run_fd_tasks(self, job: FdJob, tasks: list[FdTask]) -> list[FdTaskResult]:
        """Execute the tasks and return results in task order."""
        raise NotImplementedError

    def warmup(self) -> None:
        """Pay any one-time startup cost (worker spawn) ahead of timing."""

    def shutdown(self) -> None:
        """Release pooled resources; the backend may be reused afterwards."""


class SerialBackend(EngineBackend):
    """In-order execution on the calling thread (reference semantics)."""

    name = "serial"

    def run_fd_tasks(self, job: FdJob, tasks: list[FdTask]) -> list[FdTaskResult]:
        return [execute_fd_task(job, task) for task in tasks]


class ThreadBackend(EngineBackend):
    """Fan-out on a persistent ``ThreadPoolExecutor``.

    An already running executor may be borrowed (``executor=...``) so a
    caller that owns a thread pool — ``ExecutionContext`` with
    ``backend="thread"`` does — shares it instead of doubling the OS-thread
    count; borrowed executors are never shut down here.
    """

    name = "thread"

    def __init__(self, n_workers: int = 1, *, executor: ThreadPoolExecutor | None = None):
        super().__init__(n_workers)
        self._executor = executor
        self._owns_executor = executor is None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._executor

    def run_fd_tasks(self, job: FdJob, tasks: list[FdTask]) -> list[FdTaskResult]:
        if self.n_workers == 1 or len(tasks) <= 1:
            return [execute_fd_task(job, task) for task in tasks]
        executor = self._ensure_executor()
        futures = [executor.submit(execute_fd_task, job, task) for task in tasks]
        return [future.result() for future in futures]

    def warmup(self) -> None:
        self._ensure_executor()

    def shutdown(self) -> None:
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=True)
            self._executor = None


# ----------------------------------------------------------------------
# Process backend: worker-side machinery
# ----------------------------------------------------------------------
# One attached job is cached per worker process; FD dispatches typically
# send many tasks against the same job, so each worker attaches to the
# shared-memory store once and reuses the mapping zero-copy.
_WORKER_ATTACHMENT: dict[str, AttachedFdJob] = {}


def _attached_job(spec: SharedFdJobSpec) -> FdJob:
    cached = _WORKER_ATTACHMENT.get(spec.token)
    if cached is None:
        for stale in _WORKER_ATTACHMENT.values():
            stale.close()
        _WORKER_ATTACHMENT.clear()
        cached = attach_fd_job(spec)
        _WORKER_ATTACHMENT[spec.token] = cached
    return cached.job


def _run_shared_fd_task(payload: tuple[SharedFdJobSpec, FdTask]) -> FdTaskResult:
    """Worker entry point: attach (cached) and execute one descriptor."""
    spec, task = payload
    return execute_fd_task(_attached_job(spec), task)


def _worker_noop(_index: int) -> int:
    return 0


def default_start_method() -> str:
    """Start method for worker processes (env-overridable).

    ``fork`` on Linux: pool startup in milliseconds and no re-import cost.
    ``spawn`` elsewhere (and on platforms without fork), trading startup
    time for not inheriting arbitrary parent state.  The usual
    multiprocessing caveat applies to spawn: the caller's ``__main__`` must
    be importable (a real script guarded by ``if __name__ == "__main__"``,
    not stdin).
    """
    override = os.environ.get(START_METHOD_ENV, "").strip().lower()
    available = multiprocessing.get_all_start_methods()
    if override:
        if override not in available:
            raise ReproError(
                f"{START_METHOD_ENV}={override!r} is not available here; "
                f"choose one of {available}"
            )
        return override
    if sys.platform.startswith("linux") and "fork" in available:
        return "fork"
    return "spawn"


class ProcessBackend(EngineBackend):
    """Fan-out across a persistent process pool over a shared-memory store.

    The pool is created lazily and survives across dispatches, so repeated
    FD runs (benchmark rounds, successive decompositions) pay worker
    startup once.  Each dispatch exports the job to shared memory, ships
    ``(job spec, task)`` pairs — a few hundred bytes each — and tears the
    segments down after the final barrier.
    """

    name = "process"

    def __init__(self, n_workers: int = 1, *, start_method: str | None = None):
        super().__init__(n_workers)
        # Remember whether the method was chosen by the caller/environment
        # (pinned) or defaulted — only a defaulted "fork" may be demoted to
        # "spawn" when forking would be unsafe.
        pinned = start_method or os.environ.get(START_METHOD_ENV, "").strip().lower()
        self.start_method = start_method or default_start_method()
        self._start_method_pinned = bool(pinned)
        self._executor: ProcessPoolExecutor | None = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Start the parent's shared-memory resource tracker BEFORE
            # forking workers: children then inherit it and their attach
            # registrations deduplicate against the parent's, instead of
            # each worker spawning a private tracker that later "cleans up"
            # (and warns about) segments the parent already unlinked.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass
            method = self.start_method
            if (method == "fork" and not self._start_method_pinned
                    and threading.active_count() > 1):
                # Forking a multi-threaded parent (e.g. backend="process"
                # combined with use_real_threads) can deadlock the child on
                # locks held by parent threads; prefer the safe start method
                # unless the caller explicitly pinned fork.
                method = "spawn"
            context = multiprocessing.get_context(method)
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        return self._executor

    def run_fd_tasks(self, job: FdJob, tasks: list[FdTask]) -> list[FdTaskResult]:
        if not tasks:
            return []
        executor = self._ensure_executor()
        shared = share_fd_job(job)
        try:
            payloads = [(shared.spec, task) for task in tasks]
            # chunksize=1 keeps allocation dynamic: workers pull the next
            # descriptor as they finish, which together with the caller's
            # LPT ordering realises workload-aware scheduling (Sec. 3.2.1).
            return list(executor.map(_run_shared_fd_task, payloads, chunksize=1))
        finally:
            shared.destroy()

    def warmup(self) -> None:
        executor = self._ensure_executor()
        list(executor.map(_worker_noop, range(self.n_workers)))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def create_backend(name: str, *, n_workers: int = 1, **options) -> EngineBackend:
    """Instantiate a backend by name (``serial`` / ``thread`` / ``process``)."""
    key = str(name).lower()
    if key not in _BACKENDS:
        raise ReproError(
            f"unknown execution backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return _BACKENDS[key](n_workers, **options)
