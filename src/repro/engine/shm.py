"""Shared-memory graph store for the process backend.

Places the immutable inputs of an FD fan-out — the dual-CSR arrays of the
working graph, the flat subset array and the ``⋈init`` support snapshot —
into POSIX shared memory (``multiprocessing.shared_memory``) so that a
persistent worker pool attaches to them zero-copy.  What crosses the process
boundary per dispatch is only a :class:`SharedFdJobSpec`: segment names,
shapes and dtypes, a few hundred bytes regardless of graph size.

Workers wrap the attached buffers back into a :class:`~repro.graph.bipartite.
BipartiteGraph` through :meth:`BipartiteGraph.from_csr_arrays` (O(1), no
copy) and mark every view read-only — the store is strictly write-once by
the parent, matching the library's graph-immutability invariant.

Lifecycle: the parent owns the segments (:class:`SharedFdJob`), unlinking
them once the fan-out completes; workers cache one attached job at a time
and close stale attachments when a new job arrives (see
:mod:`repro.engine.backends`).  Attach-side resource tracking is disabled
(``track=False`` on Python >= 3.13, unregister otherwise) so worker exits
never unlink segments the parent still owns.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..graph.bipartite import BipartiteGraph
from .tasks import FdJob

__all__ = [
    "ShmArraySpec",
    "SharedFdJobSpec",
    "SharedFdJob",
    "AttachedFdJob",
    "live_segment_stats",
    "share_fd_job",
    "attach_fd_job",
]

# Owner-side accounting of live segments (name -> bytes) so the memory
# telemetry endpoint (repro.obs.memory) can report how much shared memory
# this process is currently holding.  Only the creating side registers;
# worker attaches map the same pages and would double-count.
_LIVE_LOCK = threading.Lock()
_LIVE_SEGMENTS: dict[str, int] = {}


def _register_segment(segment: shared_memory.SharedMemory) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[segment.name] = segment.size


def _unregister_segment(segment: shared_memory.SharedMemory) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.pop(segment.name, None)


def live_segment_stats() -> dict:
    """Count and total bytes of shared-memory segments this process owns."""
    with _LIVE_LOCK:
        sizes = list(_LIVE_SEGMENTS.values())
    return {"segments": len(sizes), "bytes": int(sum(sizes))}


@dataclass(frozen=True)
class ShmArraySpec:
    """Name + layout of one numpy array living in a shared-memory segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedFdJobSpec:
    """Picklable description of a shared FD job (what workers receive).

    ``token`` identifies the job for worker-side attachment caching; it is
    derived from the segment names, which the kernel guarantees unique among
    live segments.
    """

    token: str
    n_u: int
    n_v: int
    graph_name: str
    u_offsets: ShmArraySpec
    u_neighbors: ShmArraySpec
    v_offsets: ShmArraySpec
    v_neighbors: ShmArraySpec
    subsets_flat: ShmArraySpec
    init_supports: ShmArraySpec
    enable_dgm: bool
    peel_kernel: str
    wedge_budget: int | None = None
    narrow_ids: bool = True
    trace: bool = False

    def array_specs(self) -> tuple[ShmArraySpec, ...]:
        return (
            self.u_offsets, self.u_neighbors,
            self.v_offsets, self.v_neighbors,
            self.subsets_flat, self.init_supports,
        )


def _export_array(array: np.ndarray) -> tuple[shared_memory.SharedMemory, ShmArraySpec]:
    """Copy one array into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    # Zero-byte segments are rejected by the OS; keep a 1-byte segment and
    # rely on the recorded shape to reconstruct the empty array.
    segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
    _register_segment(segment)
    if array.size:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
    return segment, ShmArraySpec(name=segment.name, shape=array.shape, dtype=str(array.dtype))


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking cleanup ownership.

    On Python >= 3.13 ``track=False`` keeps the attach out of the resource
    tracker.  On older versions attaching re-registers the name, but pool
    workers share the parent's tracker process and its registry is a set,
    so the duplicate registration is a no-op and the parent's ``unlink``
    remains the single cleanup; unregistering here would instead break the
    parent's bookkeeping.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _attach_array(spec: ShmArraySpec) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    segment = _attach_segment(spec.name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    array.flags.writeable = False
    return segment, array


class SharedFdJob:
    """Parent-side handle owning the shared-memory segments of one job."""

    def __init__(self, spec: SharedFdJobSpec, segments: list[shared_memory.SharedMemory]):
        self.spec = spec
        self._segments = segments

    def destroy(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for segment in self._segments:
            _unregister_segment(segment)
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def __enter__(self) -> "SharedFdJob":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


class AttachedFdJob:
    """Worker-side handle: a reconstructed :class:`FdJob` over attached buffers."""

    def __init__(self, job: FdJob, segments: list[shared_memory.SharedMemory]):
        self.job = job
        self._segments = segments

    def close(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
            except Exception:
                pass
        self._segments = []


def share_fd_job(job: FdJob) -> SharedFdJob:
    """Export a job's arrays into shared memory and return the owning handle."""
    csr = job.graph.csr_arrays()
    segments: list[shared_memory.SharedMemory] = []
    specs: dict[str, ShmArraySpec] = {}
    try:
        for key, array in (
            ("u_offsets", csr["u_offsets"]),
            ("u_neighbors", csr["u_neighbors"]),
            ("v_offsets", csr["v_offsets"]),
            ("v_neighbors", csr["v_neighbors"]),
            ("subsets_flat", job.subsets_flat),
            ("init_supports", job.init_supports),
        ):
            segment, spec = _export_array(np.asarray(array, dtype=np.int64))
            segments.append(segment)
            specs[key] = spec
    except Exception:
        for segment in segments:
            _unregister_segment(segment)
            segment.close()
            segment.unlink()
        raise

    spec = SharedFdJobSpec(
        token="|".join(spec.name for spec in specs.values()),
        n_u=job.graph.n_u,
        n_v=job.graph.n_v,
        graph_name=job.graph.name,
        enable_dgm=bool(job.enable_dgm),
        peel_kernel=str(job.peel_kernel),
        wedge_budget=None if job.wedge_budget is None else int(job.wedge_budget),
        narrow_ids=bool(job.narrow_ids),
        trace=bool(job.trace),
        **specs,
    )
    return SharedFdJob(spec, segments)


def attach_fd_job(spec: SharedFdJobSpec) -> AttachedFdJob:
    """Reconstruct an :class:`FdJob` over the shared segments (zero-copy)."""
    segments: list[shared_memory.SharedMemory] = []
    arrays: dict[str, np.ndarray] = {}
    try:
        for key, array_spec in (
            ("u_offsets", spec.u_offsets),
            ("u_neighbors", spec.u_neighbors),
            ("v_offsets", spec.v_offsets),
            ("v_neighbors", spec.v_neighbors),
            ("subsets_flat", spec.subsets_flat),
            ("init_supports", spec.init_supports),
        ):
            segment, array = _attach_array(array_spec)
            segments.append(segment)
            arrays[key] = array
    except Exception:
        for segment in segments:
            segment.close()
        raise

    graph = BipartiteGraph.from_csr_arrays(
        spec.n_u, spec.n_v,
        arrays["u_offsets"], arrays["u_neighbors"],
        arrays["v_offsets"], arrays["v_neighbors"],
        name=spec.graph_name,
    )
    job = FdJob(
        graph=graph,
        subsets_flat=arrays["subsets_flat"],
        init_supports=arrays["init_supports"],
        enable_dgm=spec.enable_dgm,
        peel_kernel=spec.peel_kernel,
        wedge_budget=spec.wedge_budget,
        narrow_ids=spec.narrow_ids,
        trace=spec.trace,
    )
    return AttachedFdJob(job, segments)
