"""Picklable FD task descriptors and the shared per-subset peel routine.

RECEIPT FD (Alg. 4) is an embarrassingly parallel bag of per-subset peels
that synchronize exactly once.  To fan those tasks out across processes the
work must be expressed as *data*, not closures: an :class:`FdTask` names a
subset by its id and its range into a flat concatenation of all subsets,
while the heavyweight inputs — the immutable dual-CSR graph, the flat subset
array and the ``⋈init`` support snapshot — travel separately as an
:class:`FdJob` (by reference inside one process, through shared memory
across processes; see :mod:`repro.engine.shm`).

:func:`execute_fd_task` is the single implementation of one FD task; every
backend funnels through it, which is what keeps tip numbers and work
counters bit-identical regardless of where the task runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..graph.bipartite import BipartiteGraph
from ..kernels.workspace import WedgeWorkspace
from ..obs.trace import NOOP_TRACER, Tracer
from ..peeling.base import PeelingCounters
from ..peeling.bup import peel_sequential

__all__ = ["FdJob", "FdTask", "FdTaskResult", "build_fd_tasks", "execute_fd_task"]


@dataclass(frozen=True)
class FdTask:
    """One FD task: a subset id plus its range into the flat subset array.

    Deliberately graph-free so it pickles in O(1): ``subsets_flat[start:stop]``
    of the accompanying :class:`FdJob` recovers the subset's parent-graph
    ``U`` ids.  ``estimated_work`` carries the LPT scheduling weight (wedge
    work of the subset's vertices in the full graph).
    """

    subset_index: int
    start: int
    stop: int
    estimated_work: float = 0.0

    @property
    def n_vertices(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class FdTaskResult:
    """Everything a finished FD task sends back through the pool.

    ``tip_numbers`` are the exact tip numbers of the subset's vertices in
    subset order (``tip_numbers[k]`` belongs to ``subsets_flat[start + k]``);
    the counters mirror what the serial implementation records so receipts
    stay bit-identical across backends.
    """

    subset_index: int
    n_vertices: int
    induced_edges: int
    induced_wedge_work: int
    wedges_traversed: int
    support_updates: int
    tip_numbers: np.ndarray
    elapsed_seconds: float
    peak_scratch_bytes: int = 0
    # Exported tracing spans (plain dicts) when the job asked for a trace;
    # they ride the same pickle channel as the rest of the result and the
    # parent re-bases them into its own tracer (see core/fd.py).
    spans: tuple = ()


@dataclass
class FdJob:
    """Shared inputs of one FD fan-out: the graph plus per-task slices.

    Attributes
    ----------
    graph:
        The (immutable) working graph whose ``U`` side is decomposed.
    subsets_flat:
        Concatenation of all CD subsets; tasks address it by range.
    init_supports:
        The ``⋈init`` vector of CD, indexed by parent-graph ``U`` id.
    enable_dgm, peel_kernel:
        Per-subset peel configuration, forwarded to
        :func:`~repro.peeling.bup.peel_sequential`.
    wedge_budget, narrow_ids:
        Memory policy of the per-task
        :class:`~repro.kernels.workspace.WedgeWorkspace`: the wedge budget
        caps each task's scratch and ``narrow_ids`` enables int32
        adjacency/key narrowing.  Unlike the user-facing knobs this carries
        the *resolved* budget (``None`` = unbounded — callers apply
        :func:`~repro.kernels.workspace.resolve_wedge_budget` first).
        Plain data so the job still pickles in O(graph).
    trace:
        When true every task records its peel under a worker-local tracer
        and ships the spans back inside :class:`FdTaskResult`.
    """

    graph: BipartiteGraph
    subsets_flat: np.ndarray
    init_supports: np.ndarray
    enable_dgm: bool = False
    peel_kernel: str = "batched"
    wedge_budget: int | None = None
    narrow_ids: bool = True
    trace: bool = False


def build_fd_tasks(
    subsets: Sequence[np.ndarray],
    estimated_work: np.ndarray | Sequence[float] | None = None,
) -> tuple[np.ndarray, list[FdTask]]:
    """Flatten CD's subsets into ``(subsets_flat, tasks)``.

    Returns one :class:`FdTask` per subset (indexed by subset id) plus the
    flat int64 concatenation every task ranges into.  ``estimated_work``
    defaults to the subset sizes when no wedge-work proxy is supplied.
    """
    sizes = np.array([int(subset.size) for subset in subsets], dtype=np.int64)
    offsets = np.zeros(len(subsets) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if len(subsets):
        subsets_flat = np.ascontiguousarray(
            np.concatenate([np.asarray(subset, dtype=np.int64) for subset in subsets])
            if offsets[-1]
            else np.zeros(0, dtype=np.int64)
        )
    else:
        subsets_flat = np.zeros(0, dtype=np.int64)
    if estimated_work is None:
        estimated_work = sizes.astype(np.float64)
    tasks = [
        FdTask(
            subset_index=index,
            start=int(offsets[index]),
            stop=int(offsets[index + 1]),
            estimated_work=float(estimated_work[index]),
        )
        for index in range(len(subsets))
    ]
    return subsets_flat, tasks


def execute_fd_task(job: FdJob, task: FdTask) -> FdTaskResult:
    """Peel one FD subset to completion (the body of Alg. 4's task loop).

    Induces the subgraph on the subset (plus the whole ``V`` side),
    initialises supports from the ``⋈init`` snapshot and runs the sequential
    bottom-up peel.  Pure function of ``(job, task)`` — every backend calls
    exactly this, in-process or in a worker.
    """
    subset = job.subsets_flat[task.start:task.stop]
    if subset.size == 0:
        return FdTaskResult(
            subset_index=task.subset_index,
            n_vertices=0,
            induced_edges=0,
            induced_wedge_work=0,
            wedges_traversed=0,
            support_updates=0,
            tip_numbers=np.zeros(0, dtype=np.int64),
            elapsed_seconds=0.0,
        )

    # A worker-local tracer keeps span collection identical across the
    # serial, thread and process backends: spans never touch global state,
    # they only travel back inside the (picklable) result.
    tracer = Tracer(recording=True) if job.trace else NOOP_TRACER
    task_span = tracer.timed("fd.peel_subset", subset=task.subset_index)
    with task_span:
        induced = job.graph.induced_on_u_subset(subset)
        induced_graph = induced.graph
        initial_supports = job.init_supports[subset]

        # A fresh arena per task keeps peak accounting exact regardless of
        # which worker (thread, process, or the caller itself) runs the task;
        # within the task every pop of the subset peel reuses its buffers.
        workspace = WedgeWorkspace(
            wedge_budget=job.wedge_budget, narrow_ids=job.narrow_ids
        )
        local_counters = PeelingCounters()
        local_tips, local_counters, _ = peel_sequential(
            induced_graph, "U", initial_supports,
            enable_dgm=job.enable_dgm, counters=local_counters,
            peel_kernel=job.peel_kernel, workspace=workspace,
        )
    if task_span.recording:
        task_span.set(
            n_vertices=int(subset.size),
            induced_edges=int(induced_graph.n_edges),
            wedges_traversed=int(local_counters.wedges_traversed),
            support_updates=int(local_counters.support_updates),
            peak_scratch_bytes=int(workspace.peak_scratch_bytes),
        )

    return FdTaskResult(
        subset_index=task.subset_index,
        n_vertices=int(subset.size),
        induced_edges=int(induced_graph.n_edges),
        induced_wedge_work=int(induced_graph.total_wedge_work("U")),
        wedges_traversed=int(local_counters.wedges_traversed),
        support_updates=int(local_counters.support_updates),
        tip_numbers=np.asarray(local_tips, dtype=np.int64),
        elapsed_seconds=task_span.duration,
        peak_scratch_bytes=int(workspace.peak_scratch_bytes),
        spans=tuple(tracer.export()) if job.trace else (),
    )
