"""Exception hierarchy shared by all :mod:`repro` subpackages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "GraphFormatError",
    "VertexSideError",
    "DecompositionError",
    "BudgetExceededError",
    "DatasetError",
    "ArtifactError",
    "ArtifactMismatchError",
    "StreamingError",
    "ServiceError",
    "ServiceOverloadedError",
    "ReplicationError",
    "FaultInjectedError",
    "CircuitOpenError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphConstructionError(ReproError):
    """Raised when a bipartite graph cannot be built from the given input.

    Typical causes: negative vertex identifiers, edges referencing vertices
    outside the declared vertex-set sizes, or duplicate edges when the caller
    requested strict construction.
    """


class GraphFormatError(ReproError):
    """Raised when an on-disk graph file cannot be parsed."""


class VertexSideError(ReproError):
    """Raised when a vertex side argument is not ``"U"`` or ``"V"``."""


class DecompositionError(ReproError):
    """Raised when a decomposition routine reaches an inconsistent state.

    This signals a bug in the library (an invariant of the peeling process
    was violated) rather than bad user input, and is surfaced prominently in
    tests.
    """


class BudgetExceededError(ReproError):
    """Raised when an execution budget (wedges or seconds) is exhausted.

    The benchmark harness uses budgets to reproduce the paper's ``t = inf``
    (did not finish in 10 days) entries at laptop scale.
    """

    def __init__(self, message: str, *, wedges_traversed: int = 0, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.wedges_traversed = wedges_traversed
        self.elapsed_seconds = elapsed_seconds


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be generated."""


class ArtifactError(ReproError):
    """Raised when a decomposition artifact cannot be written or read.

    Typical causes: the target path already holds an artifact and
    ``overwrite`` was not requested, a manifest is missing / corrupt, or the
    artifact was produced by an unsupported format version.
    """


class ArtifactMismatchError(ArtifactError):
    """Raised when an artifact does not match what the caller expected.

    The serving layer refuses to answer queries from an index whose manifest
    fingerprint (or recorded graph fingerprint) disagrees with the graph or
    artifact the caller asked for — silently serving stale tip numbers would
    be worse than failing loudly.
    """


class StreamingError(ReproError):
    """Raised when an edge-update batch cannot be applied to a graph.

    Typical causes: inserting an edge that already exists, deleting one that
    does not, out-of-range vertex ids, or the same edge appearing twice in
    one batch.  Validation happens before any state is touched, so a failed
    batch leaves the graph and the served index unchanged.
    """


class ReplicationError(ReproError):
    """Raised when the leader/follower replication chain cannot advance.

    Typical causes: the leader is unreachable, the on-disk replication log
    is corrupt or no longer matches the artifact it chains over, or a
    replica's state fingerprint disagrees with the log (divergence).  A
    diverged follower stops applying records — serving a stale prefix is
    acceptable, silently serving *wrong* tip numbers is not.
    """


class ServiceError(ReproError):
    """Raised for invalid queries against the tip-index serving layer.

    Carries the HTTP status code the JSON API should answer with so the
    offline ``repro query`` path and the HTTP server surface identical
    errors.
    """

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = int(status)


class ServiceOverloadedError(ServiceError):
    """Raised when the write path's bounded admission queue is full.

    The async front end admission-controls ``POST /update`` behind the
    coalesced read pipeline: a single writer task drains a bounded queue,
    and batches arriving while it is full are rejected immediately with
    HTTP 503 plus a ``Retry-After`` hint instead of piling up behind the
    writer lock and starving readers.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message, status=503)
        self.retry_after = float(retry_after)


class FaultInjectedError(ServiceError):
    """Raised by the deterministic fault-injection harness (never in prod).

    An armed :class:`~repro.service.faults.FaultPlan` raises this at a
    named fault site to simulate a crash, an I/O error or a failed remote
    call.  It maps to HTTP 503 so an injected fault is always a *failed*
    request, never a wrong answer — the chaos property tests rely on
    exactly that distinction.
    """

    def __init__(self, message: str, *, site: str = ""):
        super().__init__(message, status=503)
        self.site = str(site)


class CircuitOpenError(ServiceError):
    """Raised when a circuit breaker short-circuits a call to a sick target.

    Carries a ``Retry-After`` hint equal to the breaker's remaining reset
    timeout: callers (and HTTP clients) should not retry before the
    breaker is willing to probe the target again.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message, status=503)
        self.retry_after = float(retry_after)


class DeadlineExceededError(ServiceError):
    """Raised when a request's deadline expires before an answer exists.

    The scatter/gather read path propagates per-request deadlines
    (``deadline_ms``); when not even a partial (degraded) answer could be
    assembled in time, the request fails with HTTP 503 plus a
    ``Retry-After`` hint instead of hanging on a slow shard.
    """

    def __init__(self, message: str, *, retry_after: float = 0.1):
        super().__init__(message, status=503)
        self.retry_after = float(retry_after)
