"""Exception hierarchy shared by all :mod:`repro` subpackages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "GraphFormatError",
    "VertexSideError",
    "DecompositionError",
    "BudgetExceededError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphConstructionError(ReproError):
    """Raised when a bipartite graph cannot be built from the given input.

    Typical causes: negative vertex identifiers, edges referencing vertices
    outside the declared vertex-set sizes, or duplicate edges when the caller
    requested strict construction.
    """


class GraphFormatError(ReproError):
    """Raised when an on-disk graph file cannot be parsed."""


class VertexSideError(ReproError):
    """Raised when a vertex side argument is not ``"U"`` or ``"V"``."""


class DecompositionError(ReproError):
    """Raised when a decomposition routine reaches an inconsistent state.

    This signals a bug in the library (an invariant of the peeling process
    was violated) rather than bad user input, and is surfaced prominently in
    tests.
    """


class BudgetExceededError(ReproError):
    """Raised when an execution budget (wedges or seconds) is exhausted.

    The benchmark harness uses budgets to reproduce the paper's ``t = inf``
    (did not finish in 10 days) entries at laptop scale.
    """

    def __init__(self, message: str, *, wedges_traversed: int = 0, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.wedges_traversed = wedges_traversed
        self.elapsed_seconds = elapsed_seconds


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be generated."""
