"""Bipartite graph substrate: storage, construction, I/O and mutation views."""

from .bipartite import BipartiteGraph, InducedSubgraph, opposite_side, validate_side
from .builders import (
    LabelledGraph,
    complete_bipartite,
    empty_graph,
    from_biadjacency,
    from_edge_list,
    from_labelled_edges,
    from_networkx,
    star,
)
from .dynamic import PeelableAdjacency
from .io import (
    load_graph,
    read_edge_list,
    read_konect,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from .relabel import DegreePriority, degree_priority, degree_sorted_vertices
from .statistics import DegreeSummary, GraphStatistics, degree_summary, graph_statistics

__all__ = [
    "BipartiteGraph",
    "InducedSubgraph",
    "opposite_side",
    "validate_side",
    "LabelledGraph",
    "complete_bipartite",
    "empty_graph",
    "from_biadjacency",
    "from_edge_list",
    "from_labelled_edges",
    "from_networkx",
    "star",
    "PeelableAdjacency",
    "load_graph",
    "read_edge_list",
    "read_konect",
    "read_matrix_market",
    "write_edge_list",
    "write_matrix_market",
    "DegreePriority",
    "degree_priority",
    "degree_sorted_vertices",
    "DegreeSummary",
    "GraphStatistics",
    "degree_summary",
    "graph_statistics",
]
