"""Core bipartite graph data structure used throughout the library.

The graph is stored twice in compressed-sparse-row (CSR) form: once indexed
by the ``U`` vertex set and once indexed by the ``V`` vertex set.  Both
directions are needed because every algorithm in the paper walks wedges
``u - v - u'`` (two hops), which requires the adjacency of both sides.

Vertices of each side are identified by dense integer ids ``0 .. n-1`` in
independent namespaces: ``u = 3`` and ``v = 3`` are different vertices.
The :class:`repro.graph.builders` module offers constructors that map
arbitrary hashable labels onto this dense id space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import GraphConstructionError, VertexSideError

__all__ = ["BipartiteGraph", "opposite_side", "validate_side"]

_VALID_SIDES = ("U", "V")


def validate_side(side: str) -> str:
    """Return the canonical form of a vertex-side name.

    Parameters
    ----------
    side:
        Either ``"U"`` or ``"V"`` (case-insensitive).

    Raises
    ------
    VertexSideError
        If the value is not one of the two sides.
    """
    canonical = str(side).upper()
    if canonical not in _VALID_SIDES:
        raise VertexSideError(f"vertex side must be 'U' or 'V', got {side!r}")
    return canonical


def opposite_side(side: str) -> str:
    """Return the other vertex side (``"U"`` -> ``"V"`` and vice versa)."""
    return "V" if validate_side(side) == "U" else "U"


@dataclass(frozen=True)
class _CsrAdjacency:
    """One direction of the adjacency, stored as offsets + flat neighbor ids."""

    offsets: np.ndarray
    neighbors: np.ndarray

    def degree(self, vertex: int) -> int:
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def neighbors_of(self, vertex: int) -> np.ndarray:
        return self.neighbors[self.offsets[vertex]: self.offsets[vertex + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)


class BipartiteGraph:
    """An immutable, unweighted bipartite graph ``G(W = (U, V), E)``.

    Parameters
    ----------
    n_u, n_v:
        Number of vertices on the ``U`` and ``V`` side.  Isolated vertices
        (ids with no incident edge) are allowed and participate in zero
        butterflies.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u < n_u`` and
        ``0 <= v < n_v``.  Duplicate edges are rejected unless
        ``allow_duplicates=True`` in which case they are silently collapsed.

    Notes
    -----
    The object is conceptually immutable: all peeling algorithms keep their
    own mutable view (see :class:`repro.graph.dynamic.PeelableAdjacency`) and
    never modify the parent graph.
    """

    __slots__ = ("_n_u", "_n_v", "_u_adj", "_v_adj", "_n_edges", "_edge_cache", "name")

    def __init__(
        self,
        n_u: int,
        n_v: int,
        edges: Iterable[tuple[int, int]],
        *,
        allow_duplicates: bool = False,
        name: str = "",
    ):
        if n_u < 0 or n_v < 0:
            raise GraphConstructionError(
                f"vertex-set sizes must be non-negative, got n_u={n_u}, n_v={n_v}"
            )
        edge_array = _as_edge_array(edges)
        edge_array = _validate_edges(edge_array, n_u, n_v, allow_duplicates=allow_duplicates)

        self._n_u = int(n_u)
        self._n_v = int(n_v)
        self._n_edges = int(edge_array.shape[0])
        self._u_adj = _build_csr(edge_array[:, 0], edge_array[:, 1], n_u)
        self._v_adj = _build_csr(edge_array[:, 1], edge_array[:, 0], n_v)
        self._edge_cache: np.ndarray | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_u(self) -> int:
        """Number of vertices on the ``U`` side."""
        return self._n_u

    @property
    def n_v(self) -> int:
        """Number of vertices on the ``V`` side."""
        return self._n_v

    @property
    def n_vertices(self) -> int:
        """Total number of vertices ``|W| = |U| + |V|``."""
        return self._n_u + self._n_v

    @property
    def n_edges(self) -> int:
        """Number of (distinct) edges."""
        return self._n_edges

    def side_size(self, side: str) -> int:
        """Return ``|U|`` or ``|V|`` depending on ``side``."""
        return self._n_u if validate_side(side) == "U" else self._n_v

    def degree_u(self, u: int) -> int:
        """Degree of vertex ``u`` of the ``U`` side."""
        return self._u_adj.degree(u)

    def degree_v(self, v: int) -> int:
        """Degree of vertex ``v`` of the ``V`` side."""
        return self._v_adj.degree(v)

    def degree(self, vertex: int, side: str) -> int:
        """Degree of a vertex on the given side."""
        return self.degree_u(vertex) if validate_side(side) == "U" else self.degree_v(vertex)

    def degrees_u(self) -> np.ndarray:
        """Array of degrees for every ``U`` vertex."""
        return self._u_adj.degrees()

    def degrees_v(self) -> np.ndarray:
        """Array of degrees for every ``V`` vertex."""
        return self._v_adj.degrees()

    def degrees(self, side: str) -> np.ndarray:
        """Degree array for the requested side."""
        return self.degrees_u() if validate_side(side) == "U" else self.degrees_v()

    def neighbors_u(self, u: int) -> np.ndarray:
        """Sorted ``V``-neighbors of ``u`` (a read-only view, do not modify)."""
        return self._u_adj.neighbors_of(u)

    def neighbors_v(self, v: int) -> np.ndarray:
        """Sorted ``U``-neighbors of ``v`` (a read-only view, do not modify)."""
        return self._v_adj.neighbors_of(v)

    def neighbors(self, vertex: int, side: str) -> np.ndarray:
        """Neighbors of a vertex on the given side."""
        if validate_side(side) == "U":
            return self.neighbors_u(vertex)
        return self.neighbors_v(vertex)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``(u, v)`` is present."""
        if not (0 <= u < self._n_u and 0 <= v < self._n_v):
            return False
        neighbors = self.neighbors_u(u)
        index = int(np.searchsorted(neighbors, v))
        return index < neighbors.shape[0] and int(neighbors[index]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield every edge as a ``(u, v)`` pair, grouped by ``u``."""
        offsets = self._u_adj.offsets
        neighbors = self._u_adj.neighbors
        for u in range(self._n_u):
            for position in range(offsets[u], offsets[u + 1]):
                yield u, int(neighbors[position])

    def edge_array(self) -> np.ndarray:
        """Return all edges as an ``(m, 2)`` numpy array ``[u, v]``.

        The array is built once and cached (the graph is immutable); callers
        must treat it as read-only.
        """
        if self._edge_cache is None:
            offsets = self._u_adj.offsets
            degrees = np.diff(offsets)
            u_column = np.repeat(np.arange(self._n_u, dtype=np.int64), degrees)
            self._edge_cache = np.column_stack(
                [u_column, self._u_adj.neighbors.astype(np.int64)]
            )
        return self._edge_cache

    # ------------------------------------------------------------------
    # CSR access (used by performance-sensitive inner loops)
    # ------------------------------------------------------------------
    def csr(self, side: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(offsets, neighbors)`` arrays for the requested side.

        The arrays are the internal storage; callers must treat them as
        read-only.  ``offsets`` has length ``side_size(side) + 1`` and
        ``neighbors`` has length ``n_edges``.
        """
        adjacency = self._u_adj if validate_side(side) == "U" else self._v_adj
        return adjacency.offsets, adjacency.neighbors

    def csr_arrays(self) -> dict[str, np.ndarray]:
        """Expose both CSR directions for zero-copy export.

        Returns the four internal arrays keyed ``u_offsets`` / ``u_neighbors``
        / ``v_offsets`` / ``v_neighbors``.  This is the serialization surface
        used by the execution engine to place a graph into shared memory
        (:mod:`repro.engine.shm`); callers must treat the arrays as
        read-only.
        """
        return {
            "u_offsets": self._u_adj.offsets,
            "u_neighbors": self._u_adj.neighbors,
            "v_offsets": self._v_adj.offsets,
            "v_neighbors": self._v_adj.neighbors,
        }

    @classmethod
    def from_csr_arrays(
        cls,
        n_u: int,
        n_v: int,
        u_offsets: np.ndarray,
        u_neighbors: np.ndarray,
        v_offsets: np.ndarray,
        v_neighbors: np.ndarray,
        *,
        name: str = "",
    ) -> "BipartiteGraph":
        """Reconstruct a graph directly from its dual-CSR arrays.

        The inverse of :meth:`csr_arrays`: no edge validation, sorting or
        copying is performed, so a worker process can wrap shared-memory
        buffers into a fully functional (read-only) graph in O(1).  The
        arrays must describe the same edge set in both directions with
        sorted neighbor lists — exactly what :meth:`csr_arrays` of a live
        graph yields.
        """
        u_offsets = np.asarray(u_offsets, dtype=np.int64)
        u_neighbors = np.asarray(u_neighbors, dtype=np.int64)
        v_offsets = np.asarray(v_offsets, dtype=np.int64)
        v_neighbors = np.asarray(v_neighbors, dtype=np.int64)
        if u_offsets.shape[0] != n_u + 1 or v_offsets.shape[0] != n_v + 1:
            raise GraphConstructionError(
                "CSR offsets do not match the declared vertex-set sizes"
            )
        if u_neighbors.shape[0] != v_neighbors.shape[0]:
            raise GraphConstructionError(
                "U- and V-indexed CSR arrays disagree on the edge count"
            )
        graph = cls.__new__(cls)
        graph._n_u = int(n_u)
        graph._n_v = int(n_v)
        graph._n_edges = int(u_neighbors.shape[0])
        graph._u_adj = _CsrAdjacency(offsets=u_offsets, neighbors=u_neighbors)
        graph._v_adj = _CsrAdjacency(offsets=v_offsets, neighbors=v_neighbors)
        graph._edge_cache = None
        graph.name = name
        return graph

    # ------------------------------------------------------------------
    # Wedge statistics (work proxies used by RECEIPT)
    # ------------------------------------------------------------------
    def wedge_endpoint_count(self, side: str) -> int:
        """Number of wedges whose two endpoints lie on ``side``.

        A wedge ``u - v - u'`` with endpoints in ``U`` is counted once per
        unordered endpoint pair: the total is ``sum_v C(d_v, 2)``.
        """
        center_degrees = self.degrees(opposite_side(side)).astype(np.int64)
        return int(np.sum(center_degrees * (center_degrees - 1) // 2))

    def wedge_work_per_vertex(self, side: str) -> np.ndarray:
        """Per-vertex peel-work proxy ``w[u] = sum_{v in N(u)} d_v``.

        This is the quantity RECEIPT CD balances across subsets and the
        quantity HUC compares against the re-counting cost.
        """
        side = validate_side(side)
        size = self.side_size(side)
        offsets, neighbors = self.csr(side)
        if size == 0 or neighbors.size == 0:
            return np.zeros(size, dtype=np.int64)
        opposite_degrees = self.degrees(opposite_side(side)).astype(np.int64)
        per_edge_work = opposite_degrees[neighbors]
        sources = np.repeat(np.arange(size, dtype=np.int64), np.diff(offsets))
        # Integer np.add.at, not a float-weighted np.bincount: float64
        # accumulation silently loses precision once sums exceed 2**53.
        work = np.zeros(size, dtype=np.int64)
        np.add.at(work, sources, per_edge_work)
        return work

    def total_wedge_work(self, side: str) -> int:
        """Total peel work ``sum_u sum_{v in N(u)} d_v`` for the given side."""
        if self.n_edges == 0:
            return 0
        return int(self.wedge_work_per_vertex(side).sum())

    def counting_wedge_bound(self) -> int:
        """Wedge-traversal bound of vertex-priority counting.

        Equals ``sum_{(u, v) in E} min(d_u, d_v)`` which is ``O(alpha * m)``
        (Chiba & Nishizeki).  Used by HUC as the re-count cost estimate.
        """
        if self.n_edges == 0:
            return 0
        edge_array = self.edge_array()
        degrees_u = self.degrees_u()
        degrees_v = self.degrees_v()
        return int(
            np.minimum(degrees_u[edge_array[:, 0]], degrees_v[edge_array[:, 1]]).sum()
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def swap_sides(self) -> "BipartiteGraph":
        """Return a graph with the ``U`` and ``V`` roles exchanged.

        Tip decomposition of the ``V`` side of ``G`` equals tip decomposition
        of the ``U`` side of ``G.swap_sides()``; the evaluation section of
        the paper decomposes both sides of every dataset.
        """
        swapped = BipartiteGraph.__new__(BipartiteGraph)
        swapped._n_u = self._n_v
        swapped._n_v = self._n_u
        swapped._n_edges = self._n_edges
        swapped._u_adj = self._v_adj
        swapped._v_adj = self._u_adj
        swapped._edge_cache = None
        swapped.name = f"{self.name}/swapped" if self.name else ""
        return swapped

    def induced_on_u_subset(self, u_vertices: Sequence[int] | np.ndarray) -> "InducedSubgraph":
        """Construct the subgraph induced on ``(U_i, V)`` for RECEIPT FD.

        Only edges incident to a ``U`` vertex in ``u_vertices`` are retained.
        The ``V`` side keeps its original id space (the paper induces on the
        full ``V``), while the selected ``U`` vertices are renumbered densely
        so that the induced subgraph is a standalone :class:`BipartiteGraph`.

        Returns
        -------
        InducedSubgraph
            Wrapper holding the new graph and the old-id <-> new-id mapping.
        """
        selected = np.asarray(u_vertices, dtype=np.int64)
        if selected.size and (selected.min() < 0 or selected.max() >= self._n_u):
            raise GraphConstructionError("induced subset contains out-of-range U vertices")
        if np.unique(selected).size != selected.size:
            raise GraphConstructionError("induced subset contains duplicate U vertices")

        new_of_old = np.full(self._n_u, -1, dtype=np.int64)
        new_of_old[selected] = np.arange(selected.size, dtype=np.int64)

        all_edges = self.edge_array()
        keep = new_of_old[all_edges[:, 0]] >= 0
        kept_edges = all_edges[keep]
        edge_array = np.column_stack([new_of_old[kept_edges[:, 0]], kept_edges[:, 1]])

        subgraph = BipartiteGraph(
            selected.size,
            self._n_v,
            edge_array,
            name=f"{self.name}/induced" if self.name else "induced",
        )
        return InducedSubgraph(graph=subgraph, u_old_of_new=selected.copy(), u_new_of_old=new_of_old)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"BipartiteGraph({label} |U|={self._n_u}, |V|={self._n_v}, "
            f"|E|={self._n_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self._n_u == other._n_u
            and self._n_v == other._n_v
            and self._n_edges == other._n_edges
            and np.array_equal(self._u_adj.offsets, other._u_adj.offsets)
            and np.array_equal(self._u_adj.neighbors, other._u_adj.neighbors)
        )

    def __hash__(self) -> int:
        return hash((self._n_u, self._n_v, self._n_edges))


@dataclass(frozen=True)
class InducedSubgraph:
    """A subgraph induced on a subset of ``U`` together with id mappings.

    Attributes
    ----------
    graph:
        The induced :class:`BipartiteGraph`; its ``U`` ids are dense
        ``0 .. len(subset) - 1`` and its ``V`` ids match the parent graph.
    u_old_of_new:
        ``u_old_of_new[new_id] = old_id`` mapping back to the parent graph.
    u_new_of_old:
        Inverse mapping with ``-1`` for parent vertices not in the subset.
    """

    graph: BipartiteGraph
    u_old_of_new: np.ndarray
    u_new_of_old: np.ndarray = field(repr=False)

    def to_parent_u(self, new_id: int) -> int:
        """Map an induced-subgraph ``U`` id back to the parent graph id."""
        return int(self.u_old_of_new[new_id])

    def to_induced_u(self, old_id: int) -> int:
        """Map a parent-graph ``U`` id to the induced id (or ``-1``)."""
        return int(self.u_new_of_old[old_id])


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _as_edge_array(edges: Iterable[tuple[int, int]]) -> np.ndarray:
    if isinstance(edges, np.ndarray):
        edge_array = np.asarray(edges, dtype=np.int64)
        if edge_array.size == 0:
            return edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphConstructionError(
                f"edge array must have shape (m, 2), got {edge_array.shape}"
            )
        return edge_array
    edge_list = list(edges)
    if not edge_list:
        return np.zeros((0, 2), dtype=np.int64)
    try:
        edge_array = np.asarray(edge_list, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise GraphConstructionError(f"edges are not integer pairs: {exc}") from exc
    if edge_array.ndim != 2 or edge_array.shape[1] != 2:
        raise GraphConstructionError("each edge must be a (u, v) pair")
    return edge_array


def _validate_edges(
    edge_array: np.ndarray, n_u: int, n_v: int, *, allow_duplicates: bool
) -> np.ndarray:
    if edge_array.shape[0] == 0:
        return edge_array
    if edge_array.min() < 0:
        raise GraphConstructionError("vertex ids must be non-negative")
    if edge_array[:, 0].max() >= n_u:
        raise GraphConstructionError(
            f"edge references U vertex {int(edge_array[:, 0].max())} but n_u={n_u}"
        )
    if edge_array[:, 1].max() >= n_v:
        raise GraphConstructionError(
            f"edge references V vertex {int(edge_array[:, 1].max())} but n_v={n_v}"
        )
    deduplicated = np.unique(edge_array, axis=0)
    if deduplicated.shape[0] != edge_array.shape[0] and not allow_duplicates:
        raise GraphConstructionError(
            f"{edge_array.shape[0] - deduplicated.shape[0]} duplicate edges present; "
            "pass allow_duplicates=True to collapse them"
        )
    return deduplicated


def _build_csr(sources: np.ndarray, targets: np.ndarray, n_sources: int) -> _CsrAdjacency:
    counts = np.bincount(sources, minlength=n_sources).astype(np.int64)
    offsets = np.zeros(n_sources + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    order = np.lexsort((targets, sources))
    neighbors = targets[order].astype(np.int64)
    return _CsrAdjacency(offsets=offsets, neighbors=neighbors)
