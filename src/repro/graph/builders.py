"""Convenience constructors for :class:`~repro.graph.bipartite.BipartiteGraph`.

These helpers map user-facing representations (labelled edge lists, dense
biadjacency matrices, NetworkX graphs) onto the dense integer id space the
library uses internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from ..errors import GraphConstructionError
from .bipartite import BipartiteGraph

__all__ = [
    "LabelledGraph",
    "from_edge_list",
    "from_labelled_edges",
    "from_biadjacency",
    "from_networkx",
    "complete_bipartite",
    "star",
    "empty_graph",
]


@dataclass(frozen=True)
class LabelledGraph:
    """A :class:`BipartiteGraph` plus the label <-> dense-id mappings.

    Attributes
    ----------
    graph:
        The dense-id graph.
    u_labels, v_labels:
        ``u_labels[i]`` is the original label of dense ``U`` id ``i``.
    u_index, v_index:
        Inverse mappings from label to dense id.
    """

    graph: BipartiteGraph
    u_labels: tuple[Hashable, ...]
    v_labels: tuple[Hashable, ...]
    u_index: Mapping[Hashable, int]
    v_index: Mapping[Hashable, int]

    def u_label(self, dense_id: int) -> Hashable:
        """Original label of a dense ``U`` id."""
        return self.u_labels[dense_id]

    def v_label(self, dense_id: int) -> Hashable:
        """Original label of a dense ``V`` id."""
        return self.v_labels[dense_id]

    def tip_numbers_by_label(self, tip_numbers: Sequence[int]) -> dict[Hashable, int]:
        """Re-key a dense tip-number array by the original ``U`` labels."""
        return {self.u_labels[i]: int(value) for i, value in enumerate(tip_numbers)}


def from_edge_list(
    edges: Iterable[tuple[int, int]],
    *,
    n_u: int | None = None,
    n_v: int | None = None,
    allow_duplicates: bool = False,
    name: str = "",
) -> BipartiteGraph:
    """Build a graph from integer ``(u, v)`` pairs.

    When ``n_u`` / ``n_v`` are omitted they are inferred as ``max id + 1``.
    """
    edge_list = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                           dtype=np.int64)
    if edge_list.size == 0:
        edge_list = edge_list.reshape(0, 2)
    if edge_list.ndim != 2 or edge_list.shape[1] != 2:
        raise GraphConstructionError("edges must be (u, v) integer pairs")
    inferred_n_u = int(edge_list[:, 0].max()) + 1 if edge_list.shape[0] else 0
    inferred_n_v = int(edge_list[:, 1].max()) + 1 if edge_list.shape[0] else 0
    return BipartiteGraph(
        n_u if n_u is not None else inferred_n_u,
        n_v if n_v is not None else inferred_n_v,
        edge_list,
        allow_duplicates=allow_duplicates,
        name=name,
    )


def from_labelled_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    *,
    allow_duplicates: bool = True,
    name: str = "",
) -> LabelledGraph:
    """Build a graph from edges whose endpoints are arbitrary hashable labels.

    Labels on the two sides live in independent namespaces, matching the
    consumer-product / author-paper style datasets the paper motivates.
    Dense ids are assigned in first-seen order, which keeps the construction
    deterministic for a given edge iteration order.
    """
    u_index: dict[Hashable, int] = {}
    v_index: dict[Hashable, int] = {}
    dense_edges: list[tuple[int, int]] = []
    for u_label, v_label in edges:
        u_id = u_index.setdefault(u_label, len(u_index))
        v_id = v_index.setdefault(v_label, len(v_index))
        dense_edges.append((u_id, v_id))
    graph = BipartiteGraph(
        len(u_index), len(v_index), dense_edges, allow_duplicates=allow_duplicates, name=name
    )
    return LabelledGraph(
        graph=graph,
        u_labels=tuple(u_index.keys()),
        v_labels=tuple(v_index.keys()),
        u_index=dict(u_index),
        v_index=dict(v_index),
    )


def from_biadjacency(matrix: np.ndarray, *, name: str = "") -> BipartiteGraph:
    """Build a graph from a dense 0/1 biadjacency matrix.

    ``matrix[u, v] != 0`` denotes an edge between ``U`` vertex ``u`` and
    ``V`` vertex ``v``.
    """
    dense = np.asarray(matrix)
    if dense.ndim != 2:
        raise GraphConstructionError(f"biadjacency matrix must be 2-D, got {dense.ndim}-D")
    u_ids, v_ids = np.nonzero(dense)
    edge_array = np.column_stack([u_ids.astype(np.int64), v_ids.astype(np.int64)])
    return BipartiteGraph(dense.shape[0], dense.shape[1], edge_array, name=name)


def from_networkx(nx_graph, u_nodes: Iterable[Hashable] | None = None, *, name: str = "") -> LabelledGraph:
    """Build a graph from a NetworkX bipartite graph.

    Parameters
    ----------
    nx_graph:
        A ``networkx.Graph`` whose nodes either carry the conventional
        ``bipartite`` attribute (0 for ``U``, 1 for ``V``) or are split by
        an explicit ``u_nodes`` iterable.
    u_nodes:
        Nodes to place on the ``U`` side.  Required when the ``bipartite``
        attribute is absent.
    """
    if u_nodes is not None:
        u_set = set(u_nodes)
    else:
        u_set = {node for node, data in nx_graph.nodes(data=True) if data.get("bipartite", 0) == 0}
        if not u_set or len(u_set) == nx_graph.number_of_nodes():
            raise GraphConstructionError(
                "cannot infer the bipartition: annotate nodes with the 'bipartite' "
                "attribute or pass u_nodes explicitly"
            )
    edges = []
    for a, b in nx_graph.edges():
        if a in u_set and b not in u_set:
            edges.append((a, b))
        elif b in u_set and a not in u_set:
            edges.append((b, a))
        else:
            raise GraphConstructionError(f"edge ({a!r}, {b!r}) is not between the two sides")
    labelled = from_labelled_edges(edges, name=name)
    return labelled


def complete_bipartite(n_u: int, n_v: int, *, name: str = "") -> BipartiteGraph:
    """The complete bipartite graph ``K_{n_u, n_v}``.

    Useful in tests: every ``U`` vertex participates in exactly
    ``C(n_u - 1, 1) * C(n_v, 2)`` butterflies and all tip numbers equal
    ``(n_u - 1) * C(n_v, 2)``.
    """
    u_ids = np.repeat(np.arange(n_u, dtype=np.int64), n_v)
    v_ids = np.tile(np.arange(n_v, dtype=np.int64), n_u)
    return BipartiteGraph(n_u, n_v, np.column_stack([u_ids, v_ids]),
                          name=name or f"K_{n_u},{n_v}")


def star(n_leaves: int, *, center_side: str = "V", name: str = "") -> BipartiteGraph:
    """A star graph: one center vertex connected to ``n_leaves`` leaves.

    Stars contain wedges but zero butterflies, which makes them a useful
    degenerate case for the peeling algorithms.
    """
    if center_side.upper() == "V":
        edges = [(leaf, 0) for leaf in range(n_leaves)]
        return BipartiteGraph(n_leaves, 1, edges, name=name or f"star_{n_leaves}")
    edges = [(0, leaf) for leaf in range(n_leaves)]
    return BipartiteGraph(1, n_leaves, edges, name=name or f"star_{n_leaves}")


def empty_graph(n_u: int = 0, n_v: int = 0, *, name: str = "") -> BipartiteGraph:
    """A graph with the given vertex counts and no edges."""
    return BipartiteGraph(n_u, n_v, [], name=name or "empty")
