"""Mutable adjacency view used while peeling, including DGM.

Peeling never mutates the parent :class:`~repro.graph.bipartite.BipartiteGraph`.
Instead, each decomposition run owns a :class:`PeelableAdjacency` that tracks
which vertices of the peeled side have been deleted and — when Dynamic Graph
Maintenance (DGM, Sec. 4.2 of the paper) is enabled — periodically compacts
the center-side adjacency lists so that wedges incident on already-peeled
vertices are no longer traversed.

Terminology: the *peeled side* is the side being decomposed (``U`` in the
paper's notation) and the *center side* is the other one (``V``); a wedge is
``u - v - u'`` with ``u, u'`` on the peeled side and ``v`` in the center.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteGraph, opposite_side, validate_side

__all__ = ["PeelableAdjacency"]


class PeelableAdjacency:
    """Adjacency view supporting vertex deletion and periodic compaction.

    Parameters
    ----------
    graph:
        The parent graph.
    peel_side:
        Which side ("U" or "V") is being peeled.
    enable_dgm:
        When ``True``, :meth:`maybe_compact` rebuilds the center adjacency
        lists after ``compaction_interval`` wedges have been traversed since
        the previous rebuild.  When ``False`` the lists are never compacted
        and peeled vertices keep being skipped one by one (the RECEIPT--
        behaviour of the ablation study).
    compaction_interval:
        Number of traversed wedges between compactions.  The paper uses the
        edge count ``m`` so that DGM adds only linear extra work; that is the
        default here as well.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        peel_side: str = "U",
        *,
        enable_dgm: bool = True,
        compaction_interval: int | None = None,
    ):
        self._graph = graph
        self._peel_side = validate_side(peel_side)
        self._center_side = opposite_side(self._peel_side)

        self._n_peel = graph.side_size(self._peel_side)
        self._n_center = graph.side_size(self._center_side)

        # Center-side adjacency (lists of peeled-side neighbor ids), copied so
        # compaction can filter them in place.
        self._center_lists: list[np.ndarray] = [
            graph.neighbors(center, self._center_side).copy()
            for center in range(self._n_center)
        ]
        self._alive = np.ones(self._n_peel, dtype=bool)

        self.enable_dgm = enable_dgm
        self.compaction_interval = (
            int(compaction_interval) if compaction_interval is not None else max(graph.n_edges, 1)
        )
        self._wedges_since_compaction = 0
        self.compactions_performed = 0
        self.entries_removed = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The parent (immutable) graph."""
        return self._graph

    @property
    def peel_side(self) -> str:
        return self._peel_side

    @property
    def n_alive(self) -> int:
        """Number of peeled-side vertices not yet deleted."""
        return int(self._alive.sum())

    def is_alive(self, vertex: int) -> bool:
        """Whether a peeled-side vertex is still present."""
        return bool(self._alive[vertex])

    def alive_mask(self) -> np.ndarray:
        """Boolean mask over the peeled side (read-only view)."""
        return self._alive

    def alive_vertices(self) -> np.ndarray:
        """Ids of the peeled-side vertices that are still present."""
        return np.flatnonzero(self._alive).astype(np.int64)

    # ------------------------------------------------------------------
    # Deletion and traversal
    # ------------------------------------------------------------------
    def peel_neighbors(self, vertex: int) -> np.ndarray:
        """Center-side neighbors of a peeled-side vertex (static, from parent)."""
        return self._graph.neighbors(vertex, self._peel_side)

    def center_neighbors(self, center: int) -> np.ndarray:
        """Current peeled-side adjacency of a center vertex.

        May still contain already-peeled vertices if no compaction happened
        since they were deleted; callers filter with :meth:`alive_mask` when
        exactness matters.  RECEIPT's update routine tolerates stale entries
        because updates to already-peeled vertices have no effect (Lemma 2).
        """
        return self._center_lists[center]

    def two_hop_multiset(self, vertex: int) -> np.ndarray:
        """Concatenated peeled-side neighbors of all centers adjacent to ``vertex``.

        This is the raw wedge multiset the ``update`` routine of Alg. 2
        aggregates; the length of the returned array is exactly the number of
        wedge endpoints touched (including ``vertex`` itself and possibly
        stale peeled entries).
        """
        centers = self.peel_neighbors(vertex)
        if centers.size == 0:
            return np.zeros(0, dtype=np.int64)
        pieces = [self._center_lists[int(center)] for center in centers]
        return np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)

    def mark_peeled(self, vertex: int) -> None:
        """Delete a single peeled-side vertex."""
        self._alive[vertex] = False

    def mark_peeled_many(self, vertices: np.ndarray) -> None:
        """Delete a batch of peeled-side vertices."""
        self._alive[np.asarray(vertices, dtype=np.int64)] = False

    # ------------------------------------------------------------------
    # Dynamic Graph Maintenance
    # ------------------------------------------------------------------
    def record_traversal(self, n_wedges: int) -> None:
        """Account for traversed wedges; drives the compaction schedule."""
        self._wedges_since_compaction += int(n_wedges)

    def maybe_compact(self) -> bool:
        """Compact the adjacency if DGM is enabled and the interval elapsed.

        Returns ``True`` when a compaction was performed.
        """
        if not self.enable_dgm:
            return False
        if self._wedges_since_compaction < self.compaction_interval:
            return False
        self.compact()
        return True

    def compact(self) -> int:
        """Remove peeled vertices from every center adjacency list.

        Returns the number of adjacency entries removed.  The cost is linear
        in the current total adjacency size, matching the paper's argument
        that DGM does not change the asymptotic complexity when triggered at
        most once per ``m`` traversed wedges.
        """
        removed = 0
        alive = self._alive
        for center, neighbors in enumerate(self._center_lists):
            if neighbors.size == 0:
                continue
            keep = alive[neighbors]
            dropped = int(neighbors.size - keep.sum())
            if dropped:
                self._center_lists[center] = neighbors[keep]
                removed += dropped
        self._wedges_since_compaction = 0
        self.compactions_performed += 1
        self.entries_removed += removed
        return removed

    def current_center_sizes(self) -> np.ndarray:
        """Current (possibly stale) center adjacency sizes.

        Without DGM these stay at the original degrees; with DGM they shrink
        as vertices are peeled, which is what reduces wedge traversal.
        """
        return np.array([lst.size for lst in self._center_lists], dtype=np.int64)
