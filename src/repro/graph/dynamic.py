"""Mutable adjacency view used while peeling, including DGM.

Peeling never mutates the parent :class:`~repro.graph.bipartite.BipartiteGraph`.
Instead, each decomposition run owns a :class:`PeelableAdjacency` that tracks
which vertices of the peeled side have been deleted and — when Dynamic Graph
Maintenance (DGM, Sec. 4.2 of the paper) is enabled — periodically compacts
the center-side adjacency so that wedges incident on already-peeled vertices
are no longer traversed.

The center-side adjacency is stored as a single flat CSR (``offsets`` +
``neighbors`` arrays) rather than a Python list of per-center arrays: batch
peeling gathers the wedges of thousands of vertices in one indexed load
(:func:`repro.kernels.csr.gather_rows`) and DGM compaction filters the whole
structure in one cumulative-sum pass (:func:`repro.kernels.csr.compact_csr`),
with no per-center Python loop in either path.

Terminology: the *peeled side* is the side being decomposed (``U`` in the
paper's notation) and the *center side* is the other one (``V``); a wedge is
``u - v - u'`` with ``u, u'`` on the peeled side and ``v`` in the center.
"""

from __future__ import annotations

import numpy as np

from ..kernels.csr import compact_csr, gather_rows
from .bipartite import BipartiteGraph, opposite_side, validate_side

__all__ = ["PeelableAdjacency"]


class PeelableAdjacency:
    """Adjacency view supporting vertex deletion and periodic compaction.

    Parameters
    ----------
    graph:
        The parent graph.
    peel_side:
        Which side ("U" or "V") is being peeled.
    enable_dgm:
        When ``True``, :meth:`maybe_compact` rebuilds the center adjacency
        after ``compaction_interval`` wedges have been traversed since the
        previous rebuild.  When ``False`` the adjacency is never compacted
        and peeled vertices keep being skipped one by one (the RECEIPT--
        behaviour of the ablation study).
    compaction_interval:
        Number of traversed wedges between compactions.  The paper uses the
        edge count ``m`` so that DGM adds only linear extra work; that is the
        default here as well.
    narrow_ids:
        Store center-adjacency neighbor values as int32 when the peeled
        side fits (the default).  Callers running the legacy int64 pipeline
        (``WedgeWorkspace.legacy()``) pass ``False`` so the benchmark
        baseline matches the pre-arena layout.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        peel_side: str = "U",
        *,
        enable_dgm: bool = True,
        compaction_interval: int | None = None,
        narrow_ids: bool = True,
    ):
        self._graph = graph
        self._peel_side = validate_side(peel_side)
        self._center_side = opposite_side(self._peel_side)

        self._n_peel = graph.side_size(self._peel_side)
        self._n_center = graph.side_size(self._center_side)

        # Center-side adjacency as flat CSR (center -> peeled-side neighbor
        # ids), copied so compaction can rebuild it independently.  The
        # neighbor values are peeled-side ids, so they narrow to int32
        # whenever that side fits — every wedge-scale gather downstream then
        # moves half the bytes (the parent graph's CSR stays int64).
        offsets, neighbors = graph.csr(self._center_side)
        value_dtype = (
            np.int32
            if narrow_ids and self._n_peel <= np.iinfo(np.int32).max
            else np.int64
        )
        self._center_offsets: np.ndarray = offsets.copy()
        self._center_neighbors: np.ndarray = neighbors.astype(value_dtype, copy=True)
        self._alive = np.ones(self._n_peel, dtype=bool)

        self.enable_dgm = enable_dgm
        self.compaction_interval = (
            int(compaction_interval) if compaction_interval is not None else max(graph.n_edges, 1)
        )
        self._wedges_since_compaction = 0
        self._stale_entries = False
        self.compactions_performed = 0
        self.entries_removed = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The parent (immutable) graph."""
        return self._graph

    @property
    def peel_side(self) -> str:
        return self._peel_side

    @property
    def n_alive(self) -> int:
        """Number of peeled-side vertices not yet deleted."""
        return int(self._alive.sum())

    def is_alive(self, vertex: int) -> bool:
        """Whether a peeled-side vertex is still present."""
        return bool(self._alive[vertex])

    def alive_mask(self) -> np.ndarray:
        """Boolean mask over the peeled side (read-only view)."""
        return self._alive

    def alive_vertices(self) -> np.ndarray:
        """Ids of the peeled-side vertices that are still present."""
        return np.flatnonzero(self._alive).astype(np.int64)

    # ------------------------------------------------------------------
    # Deletion and traversal
    # ------------------------------------------------------------------
    def peel_neighbors(self, vertex: int) -> np.ndarray:
        """Center-side neighbors of a peeled-side vertex (static, from parent)."""
        return self._graph.neighbors(vertex, self._peel_side)

    def peel_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Static CSR of the peeled side (vertex -> center neighbors)."""
        return self._graph.csr(self._peel_side)

    def center_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Current (possibly stale) center-side CSR ``(offsets, neighbors)``.

        The arrays are the live storage; callers must treat them as
        read-only.  Entries of already-peeled vertices linger until the next
        compaction — RECEIPT's update routine tolerates them because updates
        to already-peeled vertices have no effect (Lemma 2).
        """
        return self._center_offsets, self._center_neighbors

    def center_neighbors(self, center: int) -> np.ndarray:
        """Current peeled-side adjacency of a center vertex.

        May still contain already-peeled vertices if no compaction happened
        since they were deleted; callers filter with :meth:`alive_mask` when
        exactness matters.
        """
        return self._center_neighbors[
            self._center_offsets[center]: self._center_offsets[center + 1]
        ]

    def two_hop_multiset(self, vertex: int) -> np.ndarray:
        """Concatenated peeled-side neighbors of all centers adjacent to ``vertex``.

        This is the raw wedge multiset the ``update`` routine of Alg. 2
        aggregates; the length of the returned array is exactly the number of
        wedge endpoints touched (including ``vertex`` itself and possibly
        stale peeled entries).
        """
        centers = self.peel_neighbors(vertex)
        if centers.size == 0:
            return np.zeros(0, dtype=np.int64)
        gathered, _ = gather_rows(self._center_offsets, self._center_neighbors, centers)
        return gathered

    def mark_peeled(self, vertex: int) -> None:
        """Delete a single peeled-side vertex."""
        self._alive[vertex] = False
        self._stale_entries = True

    def mark_peeled_many(self, vertices: np.ndarray) -> None:
        """Delete a batch of peeled-side vertices."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size:
            self._alive[vertices] = False
            self._stale_entries = True

    @property
    def has_stale_entries(self) -> bool:
        """Whether the center adjacency may reference dead vertices.

        ``False`` right after a compaction until the next deletion: every
        entry is then guaranteed alive, which lets the batch kernel skip its
        per-wedge alive filter (the win applies to every sub-batch that
        follows a mid-batch DGM compaction).
        """
        return self._stale_entries

    # ------------------------------------------------------------------
    # Dynamic Graph Maintenance
    # ------------------------------------------------------------------
    def record_traversal(self, n_wedges: int) -> None:
        """Account for traversed wedges; drives the compaction schedule."""
        self._wedges_since_compaction += int(n_wedges)

    def wedges_until_compaction(self) -> int | None:
        """Remaining traversal budget before the next compaction is due.

        Returns ``None`` when DGM is disabled.  Batch peeling uses this to
        split a batch at the exact vertex where the sequential reference
        would have compacted, which keeps wedge-traversal counters
        bit-identical between the two kernels.
        """
        if not self.enable_dgm:
            return None
        return self.compaction_interval - self._wedges_since_compaction

    def maybe_compact(self) -> bool:
        """Compact the adjacency if DGM is enabled and the interval elapsed.

        Returns ``True`` when a compaction was performed.
        """
        if not self.enable_dgm:
            return False
        if self._wedges_since_compaction < self.compaction_interval:
            return False
        self.compact()
        return True

    def compact(self) -> int:
        """Remove peeled vertices from the center adjacency in one pass.

        Returns the number of adjacency entries removed.  The cost is linear
        in the current total adjacency size, matching the paper's argument
        that DGM does not change the asymptotic complexity when triggered at
        most once per ``m`` traversed wedges.
        """
        keep = self._alive[self._center_neighbors]
        removed = int(self._center_neighbors.size - keep.sum())
        if removed:
            self._center_offsets, self._center_neighbors = compact_csr(
                self._center_offsets, self._center_neighbors, keep
            )
        self._wedges_since_compaction = 0
        self._stale_entries = False
        self.compactions_performed += 1
        self.entries_removed += removed
        return removed

    def current_center_sizes(self) -> np.ndarray:
        """Current (possibly stale) center adjacency sizes.

        Without DGM these stay at the original degrees; with DGM they shrink
        as vertices are peeled, which is what reduces wedge traversal.
        """
        return np.diff(self._center_offsets)
