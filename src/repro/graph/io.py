"""Reading and writing bipartite graphs from and to disk.

Three formats are supported:

* **Edge list / TSV** — one ``u v`` pair per line, optional ``#`` comments.
  This is the format the KONECT collection (the paper's data source) uses
  for its ``out.*`` files, where a header line starting with ``%`` carries
  metadata.
* **KONECT** — the same as edge list, but the ``%``-prefixed header is
  honoured and vertex ids are 1-based as in the published files.
* **Matrix Market coordinate** — ``%%MatrixMarket matrix coordinate`` files
  describing the biadjacency matrix.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, TextIO

import numpy as np

from ..errors import GraphFormatError
from .bipartite import BipartiteGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_konect",
    "read_matrix_market",
    "write_matrix_market",
    "load_graph",
]


def _open_text(path: str | Path) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "rt", encoding="utf-8")


def _parse_pairs(handle: TextIO, *, comment_prefixes: tuple[str, ...], one_based: bool,
                 path: Path) -> np.ndarray:
    edges: list[tuple[int, int]] = []
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if not line or line.startswith(comment_prefixes):
            continue
        fields = line.split()
        if len(fields) < 2:
            raise GraphFormatError(f"{path}:{line_number}: expected at least two columns")
        try:
            u = int(fields[0])
            v = int(fields[1])
        except ValueError as exc:
            raise GraphFormatError(f"{path}:{line_number}: non-integer vertex id") from exc
        if one_based:
            u -= 1
            v -= 1
        if u < 0 or v < 0:
            raise GraphFormatError(f"{path}:{line_number}: negative vertex id after adjustment")
        edges.append((u, v))
    if not edges:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(edges, dtype=np.int64)


def read_edge_list(
    path: str | Path,
    *,
    one_based: bool = False,
    n_u: int | None = None,
    n_v: int | None = None,
    allow_duplicates: bool = True,
    name: str | None = None,
) -> BipartiteGraph:
    """Read a whitespace-separated ``u v`` edge list.

    Lines starting with ``#`` or ``%`` are treated as comments.  Duplicate
    edges are collapsed by default because raw interaction logs (ratings,
    page edits) frequently repeat pairs.
    """
    path = Path(path)
    with _open_text(path) as handle:
        edge_array = _parse_pairs(handle, comment_prefixes=("#", "%"), one_based=one_based,
                                  path=path)
    inferred_n_u = int(edge_array[:, 0].max()) + 1 if edge_array.shape[0] else 0
    inferred_n_v = int(edge_array[:, 1].max()) + 1 if edge_array.shape[0] else 0
    return BipartiteGraph(
        n_u if n_u is not None else inferred_n_u,
        n_v if n_v is not None else inferred_n_v,
        edge_array,
        allow_duplicates=allow_duplicates,
        name=name if name is not None else path.stem,
    )


def write_edge_list(graph: BipartiteGraph, path: str | Path, *, one_based: bool = False) -> None:
    """Write the graph as a ``u v`` edge list with a small metadata header."""
    path = Path(path)
    offset = 1 if one_based else 0
    with open(path, "wt", encoding="utf-8") as handle:
        handle.write(f"# bipartite edge list |U|={graph.n_u} |V|={graph.n_v} |E|={graph.n_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u + offset} {v + offset}\n")


def read_konect(path: str | Path, *, name: str | None = None) -> BipartiteGraph:
    """Read a KONECT ``out.*`` file (1-based ids, ``%`` headers)."""
    return read_edge_list(path, one_based=True, allow_duplicates=True, name=name)


def read_matrix_market(path: str | Path, *, name: str | None = None) -> BipartiteGraph:
    """Read a Matrix Market coordinate file as a biadjacency matrix.

    Rows index the ``U`` side and columns the ``V`` side.  Any stored value
    is interpreted as edge presence; ``pattern`` files are supported.
    """
    path = Path(path)
    with _open_text(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{path}: missing MatrixMarket header")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise GraphFormatError(f"{path}: only coordinate format is supported")
        size_line = handle.readline()
        while size_line.startswith("%"):
            size_line = handle.readline()
        try:
            n_rows, n_cols, n_entries = (int(field) for field in size_line.split()[:3])
        except ValueError as exc:
            raise GraphFormatError(f"{path}: malformed size line {size_line!r}") from exc
        edge_array = _parse_pairs(handle, comment_prefixes=("%",), one_based=True, path=path)
    if edge_array.shape[0] != n_entries:
        raise GraphFormatError(
            f"{path}: header declares {n_entries} entries but {edge_array.shape[0]} were read"
        )
    return BipartiteGraph(n_rows, n_cols, edge_array, allow_duplicates=True,
                          name=name if name is not None else path.stem)


def write_matrix_market(graph: BipartiteGraph, path: str | Path) -> None:
    """Write the graph as a Matrix Market ``pattern`` coordinate file."""
    path = Path(path)
    with open(path, "wt", encoding="utf-8") as handle:
        handle.write("%%MatrixMarket matrix coordinate pattern general\n")
        handle.write(f"{graph.n_u} {graph.n_v} {graph.n_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u + 1} {v + 1}\n")


def load_graph(path: str | Path, *, name: str | None = None) -> BipartiteGraph:
    """Load a graph, dispatching on the file name.

    ``*.mtx`` files are parsed as Matrix Market, ``out.*`` files as KONECT,
    everything else as a plain edge list.
    """
    path = Path(path)
    if path.suffix == ".mtx" or path.name.endswith(".mtx.gz"):
        return read_matrix_market(path, name=name)
    if path.name.startswith("out."):
        return read_konect(path, name=name)
    return read_edge_list(path, name=name)


def iter_graph_files(directory: str | Path) -> Iterator[Path]:
    """Yield the graph files found directly under ``directory``."""
    directory = Path(directory)
    for candidate in sorted(directory.iterdir()):
        if candidate.is_file() and (
            candidate.suffix in {".tsv", ".txt", ".edges", ".mtx"}
            or candidate.name.startswith("out.")
        ):
            yield candidate
