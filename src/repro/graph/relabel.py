"""Vertex relabelling utilities.

The vertex-priority butterfly counting algorithm (Alg. 1 in the paper,
following Chiba & Nishizeki and Wang et al.) relabels all vertices of
``U ∪ V`` in decreasing order of degree and only traverses wedges whose end
point has a higher label than both the start and the middle point.  This
module computes that global priority ordering without physically rebuilding
the graph: every vertex receives a *rank* and the counting kernels compare
ranks instead of raw ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteGraph

__all__ = ["DegreePriority", "degree_priority", "degree_sorted_vertices"]


@dataclass(frozen=True)
class DegreePriority:
    """Global degree ranking over ``U ∪ V``.

    Rank 0 is the highest-degree vertex.  Ties are broken deterministically:
    first by side (``U`` before ``V``), then by vertex id, so repeated runs
    and both graph orientations produce identical traversal orders.

    Attributes
    ----------
    u_rank, v_rank:
        ``u_rank[u]`` / ``v_rank[v]`` is the global rank of the vertex.
    order_sides, order_ids:
        Parallel arrays listing vertices in rank order; ``order_sides`` holds
        0 for ``U`` and 1 for ``V``.
    """

    u_rank: np.ndarray
    v_rank: np.ndarray
    order_sides: np.ndarray
    order_ids: np.ndarray

    def rank(self, vertex: int, side: str) -> int:
        """Global rank of one vertex (lower rank = higher priority)."""
        return int(self.u_rank[vertex] if side.upper() == "U" else self.v_rank[vertex])

    @property
    def n_vertices(self) -> int:
        return int(self.order_ids.shape[0])


def degree_priority(graph: BipartiteGraph) -> DegreePriority:
    """Compute the decreasing-degree global ranking used by Alg. 1."""
    degrees_u = graph.degrees_u().astype(np.int64)
    degrees_v = graph.degrees_v().astype(np.int64)

    all_degrees = np.concatenate([degrees_u, degrees_v])
    sides = np.concatenate([
        np.zeros(graph.n_u, dtype=np.int8),
        np.ones(graph.n_v, dtype=np.int8),
    ])
    ids = np.concatenate([
        np.arange(graph.n_u, dtype=np.int64),
        np.arange(graph.n_v, dtype=np.int64),
    ])

    # lexsort keys are applied last-key-primary: sort by descending degree,
    # then ascending side, then ascending id for deterministic tie-breaking.
    order = np.lexsort((ids, sides, -all_degrees))
    ranks = np.empty(order.shape[0], dtype=np.int64)
    ranks[order] = np.arange(order.shape[0], dtype=np.int64)

    return DegreePriority(
        u_rank=ranks[: graph.n_u].copy(),
        v_rank=ranks[graph.n_u:].copy(),
        order_sides=sides[order],
        order_ids=ids[order],
    )


def degree_sorted_vertices(graph: BipartiteGraph, side: str, *, descending: bool = True) -> np.ndarray:
    """Vertex ids of one side sorted by degree.

    Useful for workload-aware scheduling experiments and for inspecting the
    degree skew of generated datasets.
    """
    degrees = graph.degrees(side)
    order = np.argsort(degrees, kind="stable")
    if descending:
        order = order[::-1]
    return order.astype(np.int64)
