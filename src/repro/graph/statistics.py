"""Descriptive statistics of bipartite graphs.

These functions compute the quantities reported in Table 2 of the paper
(sizes, average degrees, wedge counts) plus a few extras (degree
distribution summaries, density) that the dataset generators use to check
that synthetic stand-ins match the skew of the originals.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import numpy as np

from .bipartite import BipartiteGraph, validate_side

__all__ = ["DegreeSummary", "GraphStatistics", "degree_summary", "graph_statistics"]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of one side's degree distribution."""

    n_vertices: int
    n_isolated: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    p90_degree: float
    p99_degree: float
    gini_coefficient: float

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class GraphStatistics:
    """The per-dataset quantities of Table 2 (minus tip numbers).

    Butterfly counts and maximum tip numbers require the counting /
    decomposition kernels and are reported by the benchmark harness rather
    than here, keeping this module free of algorithmic dependencies.
    """

    name: str
    n_u: int
    n_v: int
    n_edges: int
    avg_degree_u: float
    avg_degree_v: float
    wedges_with_endpoints_in_u: int
    wedges_with_endpoints_in_v: int
    peel_work_u: int
    peel_work_v: int
    counting_wedge_bound: int
    density: float

    def as_dict(self) -> dict:
        return asdict(self)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, 1 = maximally skewed)."""
    if values.size == 0:
        return 0.0
    sorted_values = np.sort(values.astype(np.float64))
    total = sorted_values.sum()
    if total == 0:
        return 0.0
    n = sorted_values.size
    cumulative = np.cumsum(sorted_values)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2.0 * cumulative.sum() / total) / n)


def degree_summary(graph: BipartiteGraph, side: str) -> DegreeSummary:
    """Summarise the degree distribution of one side."""
    side = validate_side(side)
    degrees = graph.degrees(side)
    if degrees.size == 0:
        return DegreeSummary(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return DegreeSummary(
        n_vertices=int(degrees.size),
        n_isolated=int(np.count_nonzero(degrees == 0)),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        p90_degree=float(np.percentile(degrees, 90)),
        p99_degree=float(np.percentile(degrees, 99)),
        gini_coefficient=_gini(degrees),
    )


def graph_statistics(graph: BipartiteGraph, *, name: str | None = None) -> GraphStatistics:
    """Compute the structural statistics reported for each dataset."""
    n_u, n_v, n_edges = graph.n_u, graph.n_v, graph.n_edges
    max_edges = n_u * n_v
    return GraphStatistics(
        name=name if name is not None else graph.name,
        n_u=n_u,
        n_v=n_v,
        n_edges=n_edges,
        avg_degree_u=float(n_edges / n_u) if n_u else 0.0,
        avg_degree_v=float(n_edges / n_v) if n_v else 0.0,
        wedges_with_endpoints_in_u=graph.wedge_endpoint_count("U"),
        wedges_with_endpoints_in_v=graph.wedge_endpoint_count("V"),
        peel_work_u=graph.total_wedge_work("U"),
        peel_work_v=graph.total_wedge_work("V"),
        counting_wedge_bound=graph.counting_wedge_bound(),
        density=float(n_edges / max_edges) if max_edges else 0.0,
    )
