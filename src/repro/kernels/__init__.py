"""Shared vectorized wedge-traversal kernels.

Every wedge-heavy primitive in this library — batch peeling, per-vertex and
per-edge butterfly counting, HUC re-count cost accounting, streaming
support maintenance — reduces to the same building blocks, collected here
so the algorithm layers above (``butterfly``, ``peeling``, ``core``,
``streaming``) share one implementation instead of reimplementing ad-hoc
variants:

* **flat-CSR gathering** (:mod:`repro.kernels.csr`): concatenating many CSR
  rows in a single indexed load, segment arithmetic, and one-pass CSR
  compaction (the DGM rebuild).
* **wedge enumeration** (:mod:`repro.kernels.wedges`): two-hop endpoint
  gathering for peel batches — monolithic or streamed in wedge-budgeted
  chunks — and the priority-filtered wedge-pair enumeration that drives
  vertex-priority counting.
* **batched support updates** (:mod:`repro.kernels.peel`): grouped
  per-(peeled-vertex, endpoint) wedge counting and the threshold-clamped
  decrement application whose counters match per-vertex sequential peeling
  exactly (Lemma 2 drop-semantics included).
* **memory policy** (:mod:`repro.kernels.workspace`): the
  :class:`~repro.kernels.workspace.WedgeWorkspace` scratch arena every
  kernel checks its wedge-scale temporaries out of, with int32 narrowing
  and the wedge budget that bounds peak scratch.

All kernels operate on plain numpy arrays: callers hand in ``offsets`` /
``neighbors`` pairs (and an ``alive`` mask where relevant) rather than graph
objects, which keeps the layer free of upward dependencies.
"""

from .csr import (
    compact_csr,
    gather_ranges,
    gather_rows,
    int_bincount,
    segment_ids,
    segment_offsets,
    segment_sums,
)
from .peel import (
    BatchDecrements,
    apply_clamped_decrements,
    count_pair_wedges,
    key_counts,
)
from .wedges import gather_batch_wedges, iter_batch_wedge_chunks, ranked_wedge_pairs
from .workspace import (
    DEFAULT_WEDGE_BUDGET,
    WedgeWorkspace,
    budget_spans,
    default_wedge_budget,
    get_workspace,
    live_workspace_stats,
    resolve_wedge_budget,
    workspace_or_default,
)

__all__ = [
    "compact_csr",
    "gather_ranges",
    "gather_rows",
    "int_bincount",
    "segment_ids",
    "segment_offsets",
    "segment_sums",
    "BatchDecrements",
    "apply_clamped_decrements",
    "count_pair_wedges",
    "key_counts",
    "gather_batch_wedges",
    "iter_batch_wedge_chunks",
    "ranked_wedge_pairs",
    "DEFAULT_WEDGE_BUDGET",
    "WedgeWorkspace",
    "budget_spans",
    "default_wedge_budget",
    "get_workspace",
    "live_workspace_stats",
    "resolve_wedge_budget",
    "workspace_or_default",
]
