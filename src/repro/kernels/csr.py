"""Flat-CSR primitives: multi-row gathering, segment arithmetic, compaction.

A CSR adjacency is an ``(offsets, values)`` pair where row ``r`` occupies
``values[offsets[r]:offsets[r + 1]]``.  These helpers implement the handful
of array manipulations every wedge kernel needs without materialising
Python-level lists of row slices: gathering an arbitrary multiset of rows is
one fancy-indexed load, and compacting a CSR under a keep-mask is one
cumulative-sum pass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gather_rows",
    "gather_ranges",
    "segment_offsets",
    "segment_ids",
    "segment_sums",
    "compact_csr",
    "int_bincount",
    "csr_entry_keys",
    "locate_csr_entries",
    "insert_csr_entries",
    "delete_csr_entries",
]


def gather_rows(
    offsets: np.ndarray, values: np.ndarray, rows: np.ndarray, *, workspace=None, name: str = "gather"
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``values[offsets[r]:offsets[r + 1]]`` for every ``r`` in ``rows``.

    Rows may repeat and appear in any order; the output preserves the given
    row order.  Returns ``(gathered, lengths)`` where ``lengths[i]`` is the
    size of the ``i``-th requested row, so callers can recover segment
    boundaries with :func:`segment_offsets`.  With a ``workspace`` the
    gathered array lives in the arena buffer ``name`` (valid until that
    name is taken again).
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = offsets[rows]
    lengths = (offsets[rows + 1] - starts).astype(np.int64)
    return gather_ranges(values, starts, lengths, workspace=workspace, name=name), lengths


def gather_ranges(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray, *, workspace=None, name: str = "gather"
) -> np.ndarray:
    """Concatenate ``values[starts[k]: starts[k] + lengths[k]]`` for every ``k``.

    The range form of :func:`gather_rows` for callers that already hold the
    per-row starts and lengths (peel batching computes them while locating
    DGM compaction splits and must not pay for them twice).  With a
    ``workspace`` the gathered output is checked out of the arena (buffer
    ``name``), the base index comes from the cached iota, and the transient
    source-index vector is folded into the peak accounting as
    ``name + "_src"``.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=values.dtype)
    # Output position i belongs to range k with out_starts[k] <= i; the
    # source index is starts[k] + (i - out_starts[k]), built without a
    # Python loop.
    if workspace is None:
        out_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        source = np.arange(total, dtype=np.int64) + np.repeat(starts - out_starts, lengths)
        return values[source]
    out_starts = np.empty(lengths.shape[0], dtype=np.int64)
    out_starts[0] = 0
    np.cumsum(lengths[:-1], out=out_starts[1:])
    # The source index stays a plain np.repeat allocation: run-length
    # decoding it into an arena buffer costs a serially-dependent cumsum
    # that measures slower at every size.  Its footprint still counts
    # towards the arena's high-water mark so reported peaks stay honest.
    source = np.repeat(starts - out_starts, lengths)
    workspace.note_transient(name + "_src", source.nbytes)
    np.add(source, workspace.iota(total), out=source)
    out = workspace.take(name, total, values.dtype)
    # Indices are in-bounds by construction (built from the CSR offsets);
    # "clip" skips the bounds check, which is measurably faster.
    np.take(values, source, out=out, mode="clip")
    return out


def segment_offsets(lengths: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums of segment lengths (CSR-style offsets)."""
    offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """Segment index of every element of the concatenated segments."""
    return np.repeat(np.arange(lengths.shape[0], dtype=np.int64), lengths)


def segment_sums(values: np.ndarray, lengths: np.ndarray, *, workspace=None, name: str = "segsum") -> np.ndarray:
    """Per-segment sums of consecutive segments of the given lengths.

    Unlike ``np.add.reduceat`` this handles empty segments (their sum is 0)
    and an empty ``values`` array without special cases.  With a
    ``workspace`` the value-scale prefix array lives in the arena buffer
    ``name``; the returned per-segment array is always freshly allocated.
    """
    ends = np.cumsum(lengths)
    if workspace is None:
        prefix = np.concatenate(([0], np.cumsum(values, dtype=np.int64)))
    else:
        prefix = workspace.take(name, values.shape[0] + 1, np.int64)
        prefix[0] = 0
        np.cumsum(values, out=prefix[1:])
    return prefix[ends] - prefix[ends - lengths]


def compact_csr(
    offsets: np.ndarray, values: np.ndarray, keep: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop the entries where ``keep`` is ``False``, preserving row structure.

    ``keep`` is a boolean mask over ``values``.  Returns new
    ``(offsets, values)`` arrays; the pass is linear in ``values.size`` and
    allocates no per-row intermediates (this is the DGM rebuild of Sec. 4.2).
    """
    kept_before = np.zeros(values.shape[0] + 1, dtype=np.int64)
    np.cumsum(keep, out=kept_before[1:])
    return kept_before[offsets], values[keep]


def csr_entry_keys(offsets: np.ndarray, values: np.ndarray, value_bound: int) -> np.ndarray:
    """Scalar sort key ``row * value_bound + value`` of every CSR entry.

    When every row's values are sorted ascending (the invariant all CSR
    adjacencies in this library maintain), the returned key array is globally
    sorted, which turns membership tests and patch-position lookups into one
    ``searchsorted`` each (:func:`locate_csr_entries`).
    """
    rows = segment_ids(np.diff(offsets))
    return rows * np.int64(value_bound) + values


def locate_csr_entries(
    offsets: np.ndarray,
    values: np.ndarray,
    rows: np.ndarray,
    query_values: np.ndarray,
    value_bound: int,
    *,
    entry_keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Position of each ``(row, value)`` query in the flat CSR value array.

    Returns ``(positions, present)``: ``positions[i]`` is where the query
    would sit in ``values`` (the exact index when ``present[i]``, the
    insertion point otherwise).  ``entry_keys`` may be passed to reuse a
    previously built :func:`csr_entry_keys` array across several lookups.
    """
    if entry_keys is None:
        entry_keys = csr_entry_keys(offsets, values, value_bound)
    query_keys = (
        np.asarray(rows, dtype=np.int64) * np.int64(value_bound)
        + np.asarray(query_values, dtype=np.int64)
    )
    positions = np.searchsorted(entry_keys, query_keys, side="left")
    present = np.zeros(positions.shape[0], dtype=bool)
    in_range = positions < entry_keys.shape[0]
    present[in_range] = entry_keys[positions[in_range]] == query_keys[in_range]
    return positions, present


def insert_csr_entries(
    offsets: np.ndarray,
    values: np.ndarray,
    rows: np.ndarray,
    new_values: np.ndarray,
    value_bound: int,
    *,
    entry_keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Insert ``(row, value)`` entries into a CSR, keeping rows sorted.

    The streaming write path: one ``searchsorted`` finds every insertion
    point against the globally sorted entry keys (pass ``entry_keys`` to
    reuse a prebuilt :func:`csr_entry_keys` array) and one ``np.insert``
    splices all new entries in a single pass — no per-row Python loop and no
    full rebuild/sort of the adjacency.  Entries must not already be present
    and must be unique within the batch (``ValueError`` otherwise).
    """
    rows = np.asarray(rows, dtype=np.int64)
    new_values = np.asarray(new_values, dtype=np.int64)
    if rows.size == 0:
        return offsets, values
    order = np.argsort(rows * np.int64(value_bound) + new_values, kind="stable")
    rows = rows[order]
    new_values = new_values[order]
    sorted_keys = rows * np.int64(value_bound) + new_values
    if np.any(sorted_keys[1:] == sorted_keys[:-1]):
        raise ValueError("duplicate (row, value) entries in the insert batch")
    positions, present = locate_csr_entries(
        offsets, values, rows, new_values, value_bound, entry_keys=entry_keys
    )
    if present.any():
        raise ValueError(f"{int(present.sum())} inserted entries already present in the CSR")
    merged = np.insert(values, positions, new_values)
    per_row = np.zeros(offsets.shape[0], dtype=np.int64)
    np.add.at(per_row, rows + 1, 1)
    return offsets + np.cumsum(per_row), merged


def delete_csr_entries(
    offsets: np.ndarray,
    values: np.ndarray,
    rows: np.ndarray,
    del_values: np.ndarray,
    value_bound: int,
    *,
    entry_keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Remove ``(row, value)`` entries from a CSR in one compaction pass.

    Every entry must be present and unique within the batch
    (``ValueError`` otherwise); removal reuses :func:`compact_csr`, and
    ``entry_keys`` may carry a prebuilt :func:`csr_entry_keys` array.
    """
    rows = np.asarray(rows, dtype=np.int64)
    del_values = np.asarray(del_values, dtype=np.int64)
    if rows.size == 0:
        return offsets, values
    positions, present = locate_csr_entries(
        offsets, values, rows, del_values, value_bound, entry_keys=entry_keys
    )
    if not present.all():
        raise ValueError(f"{int((~present).sum())} deleted entries not present in the CSR")
    if np.unique(positions).shape[0] != positions.shape[0]:
        raise ValueError("duplicate (row, value) entries in the delete batch")
    keep = np.ones(values.shape[0], dtype=bool)
    keep[positions] = False
    return compact_csr(offsets, values, keep)


def int_bincount(
    indices: np.ndarray, weights: np.ndarray | None, minlength: int
) -> np.ndarray:
    """Integer-exact bincount.

    ``np.bincount`` with a ``weights`` argument accumulates in float64 and
    silently loses precision once counts exceed 2**53; this variant
    accumulates int64 via ``np.add.at`` instead.
    """
    out = np.zeros(minlength, dtype=np.int64)
    if indices.size == 0:
        return out
    if weights is None:
        np.add.at(out, indices, 1)
    else:
        np.add.at(out, indices, np.asarray(weights, dtype=np.int64))
    return out
