"""Flat-CSR primitives: multi-row gathering, segment arithmetic, compaction.

A CSR adjacency is an ``(offsets, values)`` pair where row ``r`` occupies
``values[offsets[r]:offsets[r + 1]]``.  These helpers implement the handful
of array manipulations every wedge kernel needs without materialising
Python-level lists of row slices: gathering an arbitrary multiset of rows is
one fancy-indexed load, and compacting a CSR under a keep-mask is one
cumulative-sum pass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gather_rows",
    "gather_ranges",
    "segment_offsets",
    "segment_ids",
    "segment_sums",
    "compact_csr",
    "int_bincount",
]


def gather_rows(
    offsets: np.ndarray, values: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``values[offsets[r]:offsets[r + 1]]`` for every ``r`` in ``rows``.

    Rows may repeat and appear in any order; the output preserves the given
    row order.  Returns ``(gathered, lengths)`` where ``lengths[i]`` is the
    size of the ``i``-th requested row, so callers can recover segment
    boundaries with :func:`segment_offsets`.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = offsets[rows]
    lengths = (offsets[rows + 1] - starts).astype(np.int64)
    return gather_ranges(values, starts, lengths), lengths


def gather_ranges(values: np.ndarray, starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[k]: starts[k] + lengths[k]]`` for every ``k``.

    The range form of :func:`gather_rows` for callers that already hold the
    per-row starts and lengths (peel batching computes them while locating
    DGM compaction splits and must not pay for them twice).
    """
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=values.dtype)
    # Output position i belongs to range k with out_starts[k] <= i; the
    # source index is starts[k] + (i - out_starts[k]), built without a
    # Python loop.
    out_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    source = np.arange(total, dtype=np.int64) + np.repeat(starts - out_starts, lengths)
    return values[source]


def segment_offsets(lengths: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums of segment lengths (CSR-style offsets)."""
    offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """Segment index of every element of the concatenated segments."""
    return np.repeat(np.arange(lengths.shape[0], dtype=np.int64), lengths)


def segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment sums of consecutive segments of the given lengths.

    Unlike ``np.add.reduceat`` this handles empty segments (their sum is 0)
    and an empty ``values`` array without special cases.
    """
    ends = np.cumsum(lengths)
    prefix = np.concatenate(([0], np.cumsum(values, dtype=np.int64)))
    return prefix[ends] - prefix[ends - lengths]


def compact_csr(
    offsets: np.ndarray, values: np.ndarray, keep: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop the entries where ``keep`` is ``False``, preserving row structure.

    ``keep`` is a boolean mask over ``values``.  Returns new
    ``(offsets, values)`` arrays; the pass is linear in ``values.size`` and
    allocates no per-row intermediates (this is the DGM rebuild of Sec. 4.2).
    """
    kept_before = np.zeros(values.shape[0] + 1, dtype=np.int64)
    np.cumsum(keep, out=kept_before[1:])
    return kept_before[offsets], values[keep]


def int_bincount(
    indices: np.ndarray, weights: np.ndarray | None, minlength: int
) -> np.ndarray:
    """Integer-exact bincount.

    ``np.bincount`` with a ``weights`` argument accumulates in float64 and
    silently loses precision once counts exceed 2**53; this variant
    accumulates int64 via ``np.add.at`` instead.
    """
    out = np.zeros(minlength, dtype=np.int64)
    if indices.size == 0:
        return out
    if weights is None:
        np.add.at(out, indices, 1)
    else:
        np.add.at(out, indices, np.asarray(weights, dtype=np.int64))
    return out
