"""Batched support-update kernels (the vectorized core of Alg. 2's ``update``).

Peeling a batch of vertices decrements the support of every surviving
2-hop neighbour by the butterflies it shared with the batch, clamped from
below at the range bound being assigned.  The sequential reference applies
these decrements one peeled vertex at a time; the kernels here compute the
identical result — including the exact value of the ``support_updates``
counter — in a handful of array passes:

1. :func:`count_pair_wedges` groups the gathered wedge-endpoint multiset by
   (peeled vertex, endpoint) pair and keeps the pairs that actually carry
   butterflies (``wedges >= 2``) towards alive endpoints.
2. :func:`apply_clamped_decrements` orders the pairs by (endpoint, batch
   position) and replays the sequential clamp semantics with grouped prefix
   sums: a pair counts as a support update exactly when the endpoint's
   support was still above the threshold before that batch member's
   decrement — the same rule the one-vertex-at-a-time loop applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import segment_sums

__all__ = ["BatchDecrements", "count_pair_wedges", "apply_clamped_decrements", "key_counts"]


@dataclass(frozen=True)
class BatchDecrements:
    """Butterfly decrements of one peel batch, one entry per (vertex, endpoint) pair.

    Attributes
    ----------
    segments:
        Batch position of the peeled vertex of each pair.
    endpoints:
        Surviving endpoint receiving the decrement.
    decrements:
        Shared butterflies ``C(pair wedges, 2)``; always >= 1.
    """

    segments: np.ndarray
    endpoints: np.ndarray
    decrements: np.ndarray

    @classmethod
    def empty(cls) -> "BatchDecrements":
        zero = np.zeros(0, dtype=np.int64)
        return cls(segments=zero, endpoints=zero, decrements=zero)

    @classmethod
    def concatenate(cls, pieces: list["BatchDecrements"]) -> "BatchDecrements":
        if not pieces:
            return cls.empty()
        return cls(
            segments=np.concatenate([piece.segments for piece in pieces]),
            endpoints=np.concatenate([piece.endpoints for piece in pieces]),
            decrements=np.concatenate([piece.decrements for piece in pieces]),
        )


def count_pair_wedges(
    endpoints: np.ndarray,
    segment_values: np.ndarray,
    segment_lengths: np.ndarray,
    batch: np.ndarray,
    alive: np.ndarray,
    *,
    filter_alive: bool = True,
) -> BatchDecrements:
    """Group wedge endpoints into per-(peeled vertex, endpoint) decrements.

    Parameters
    ----------
    endpoints:
        Wedge-endpoint multiset gathered for the batch, grouped into
        consecutive segments (stale entries towards peeled vertices are
        tolerated — the alive filter drops them, which is the Lemma 2
        drop-semantics).
    segment_values:
        Batch position of each segment.
    segment_lengths:
        Endpoint count of each segment (``sum == endpoints.size``).  Keys
        are built by repeating the pre-scaled segment values, so the
        per-wedge work stays at one repeat, one add and one compress.
    batch:
        The peeled vertex ids (indexed by batch position).
    alive:
        Alive mask over the peeled side; batch members must already be
        marked dead so batch-internal updates are dropped.
    filter_alive:
        Pass ``False`` when the caller guarantees every endpoint is alive
        (the adjacency was compacted after the last deletion, see
        :attr:`~repro.graph.dynamic.PeelableAdjacency.has_stale_entries`);
        the kernel then skips two full passes over the wedge multiset.
    """
    if endpoints.size == 0:
        return BatchDecrements.empty()
    n_side = np.int64(alive.shape[0])
    if filter_alive:
        # Drop dead endpoints first (stale entries and batch members, which
        # are marked dead before the kernel runs): their pairs would be
        # filtered out afterwards anyway, and compressing before key
        # construction keeps every later pass — including the sort — on the
        # surviving wedges only.
        live = alive[endpoints]
        endpoints = endpoints[live]
        if endpoints.size == 0:
            return BatchDecrements.empty()
        live_per_segment = segment_sums(live, segment_lengths)
    else:
        live_per_segment = segment_lengths
    keys = np.repeat(
        np.asarray(segment_values, dtype=np.int64) * n_side, live_per_segment
    )
    keys += endpoints
    unique_keys, wedge_counts = key_counts(keys, int(n_side) * int(batch.shape[0]))
    # Keys are sorted, so segments are non-decreasing: recover them from the
    # segment boundaries with one searchsorted over the (few) batch
    # positions instead of a slow per-pair integer division.
    ordered_segments = np.sort(np.asarray(segment_values, dtype=np.int64))
    boundaries = np.searchsorted(unique_keys, (ordered_segments + 1) * n_side, side="left")
    pair_counts = np.diff(np.concatenate(([0], boundaries)))
    pair_segments = np.repeat(ordered_segments, pair_counts)
    pair_endpoints = unique_keys - pair_segments * n_side
    keep = (wedge_counts >= 2) & (pair_endpoints != batch[pair_segments])
    wedge_counts = wedge_counts[keep]
    return BatchDecrements(
        segments=pair_segments[keep],
        endpoints=pair_endpoints[keep],
        decrements=wedge_counts * (wedge_counts - 1) // 2,
    )


def key_counts(keys: np.ndarray, key_bound: int) -> tuple[np.ndarray, np.ndarray]:
    """Unique keys and their multiplicities via an in-place run-length sort.

    Equivalent to ``np.unique(keys, return_counts=True)`` but measurably
    faster on the hot path: the freshly built key array is sorted in place
    (no defensive copy) in int32 when the key range permits — int32 sorting
    has twice the throughput of int64 — and the run boundaries are read off
    with two vectorized comparisons instead of ``np.unique``'s extra passes.
    """
    if key_bound <= np.iinfo(np.int32).max:
        keys = keys.astype(np.int32)
    keys.sort()
    boundary = np.empty(keys.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.concatenate((starts, [keys.shape[0]])))
    return keys[starts].astype(np.int64), counts


def apply_clamped_decrements(
    supports: np.ndarray,
    decrements: BatchDecrements,
    threshold: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Apply a batch of clamped support decrements in place.

    Replays, with grouped prefix sums, what the sequential loop does one
    peeled vertex at a time: for each endpoint, decrements arrive in batch
    order and the support is clamped from below at ``threshold`` after
    every step.  Because supports decrease monotonically, the final value
    is ``max(threshold, support - total)`` and a step counts as a support
    update exactly when the pre-step (unclamped) running support is still
    above the threshold.

    Returns ``(updated_vertices, new_supports, support_updates)`` with
    ``updated_vertices`` sorted ascending; ``supports`` is modified in
    place.
    """
    endpoints = decrements.endpoints
    deltas = decrements.decrements
    if endpoints.size == 0:
        zero = np.zeros(0, dtype=np.int64)
        return zero, zero, 0

    n_side = supports.shape[0]
    if endpoints.shape[0] * 4 < n_side:
        # Sparse aggregation: small batches (one vertex of sequential BUP in
        # particular) must not pay O(n_side) zero-fills and scans per call.
        touched, compact = np.unique(endpoints, return_inverse=True)
        totals = np.zeros(touched.shape[0], dtype=np.int64)
        np.add.at(totals, compact, deltas)
    else:
        accumulator = np.zeros(n_side, dtype=np.int64)
        np.add.at(accumulator, endpoints, deltas)
        touched = np.flatnonzero(accumulator)
        totals = accumulator[touched]
        compact = None
    old = supports[touched]
    new = np.maximum(threshold, old - totals)
    changed = new < old
    updated_vertices = touched[changed]
    new_supports = new[changed]

    # support_updates accounting.  An endpoint that stays above the
    # threshold even after its full decrement counts every one of its pairs
    # (each step strictly decreased the support); an endpoint that starts at
    # or below the threshold counts none.  Only endpoints that *cross* the
    # threshold mid-batch need the sequential replay, and they are rare, so
    # the sort below runs on a small remnant instead of every pair.
    above = old > threshold
    crosses = above & (old - totals <= threshold)
    if compact is not None:
        state = np.zeros(touched.shape[0], dtype=np.int8)
        state[above & ~crosses] = 1
        state[crosses] = 2
        pair_state = state[compact]
    else:
        state = np.zeros(n_side, dtype=np.int8)
        state[touched[above & ~crosses]] = 1
        state[touched[crosses]] = 2
        pair_state = state[endpoints]
    support_updates = int(np.count_nonzero(pair_state == 1))

    if crosses.any():
        selected = pair_state == 2
        cross_endpoints = endpoints[selected]
        cross_deltas = deltas[selected]
        order = np.lexsort((decrements.segments[selected], cross_endpoints))
        cross_endpoints = cross_endpoints[order]
        cross_deltas = cross_deltas[order]

        group_start = np.concatenate(
            ([True], cross_endpoints[1:] != cross_endpoints[:-1])
        )
        group_of_pair = np.cumsum(group_start) - 1
        exclusive = np.cumsum(cross_deltas) - cross_deltas
        group_base = exclusive[group_start]
        # Running support of the endpoint just before each pair's decrement.
        before = supports[cross_endpoints] - (exclusive - group_base[group_of_pair])
        support_updates += int((before > threshold).sum())

    supports[updated_vertices] = new_supports
    return updated_vertices, new_supports, support_updates
