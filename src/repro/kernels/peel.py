"""Batched support-update kernels (the vectorized core of Alg. 2's ``update``).

Peeling a batch of vertices decrements the support of every surviving
2-hop neighbour by the butterflies it shared with the batch, clamped from
below at the range bound being assigned.  The sequential reference applies
these decrements one peeled vertex at a time; the kernels here compute the
identical result — including the exact value of the ``support_updates``
counter — in a handful of array passes:

1. :func:`count_pair_wedges` groups the gathered wedge-endpoint multiset by
   (peeled vertex, endpoint) pair and keeps the pairs that actually carry
   butterflies (``wedges >= 2``) towards alive endpoints.
2. :func:`apply_clamped_decrements` orders the pairs by (endpoint, batch
   position) and replays the sequential clamp semantics with grouped prefix
   sums: a pair counts as a support update exactly when the endpoint's
   support was still above the threshold before that batch member's
   decrement — the same rule the one-vertex-at-a-time loop applies.

Both kernels run on a :class:`~repro.kernels.workspace.WedgeWorkspace`:
wedge-scale temporaries (the pair keys, sort scratch and masks) are checked
out of its arena, keys narrow to int32 whenever the key bound permits, and
the outputs handed back to callers are always fresh exactly-sized arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import segment_sums
from .workspace import INT32_MAX, WedgeWorkspace, workspace_or_default

__all__ = ["BatchDecrements", "count_pair_wedges", "apply_clamped_decrements", "key_counts"]


@dataclass(frozen=True)
class BatchDecrements:
    """Butterfly decrements of one peel batch, one entry per (vertex, endpoint) pair.

    Attributes
    ----------
    segments:
        Batch position of the peeled vertex of each pair.
    endpoints:
        Surviving endpoint receiving the decrement.
    decrements:
        Shared butterflies ``C(pair wedges, 2)``; always >= 1.
    """

    segments: np.ndarray
    endpoints: np.ndarray
    decrements: np.ndarray

    @classmethod
    def empty(cls) -> "BatchDecrements":
        zero = np.zeros(0, dtype=np.int64)
        return cls(segments=zero, endpoints=zero, decrements=zero)

    @classmethod
    def concatenate(cls, pieces: list["BatchDecrements"]) -> "BatchDecrements":
        if not pieces:
            return cls.empty()
        return cls(
            segments=np.concatenate([piece.segments for piece in pieces]),
            endpoints=np.concatenate([piece.endpoints for piece in pieces]),
            decrements=np.concatenate([piece.decrements for piece in pieces]),
        )


def count_pair_wedges(
    endpoints: np.ndarray,
    segment_values: np.ndarray,
    segment_lengths: np.ndarray,
    batch: np.ndarray,
    alive: np.ndarray,
    *,
    filter_alive: bool = True,
    late_filter: bool = False,
    workspace: WedgeWorkspace | None = None,
) -> BatchDecrements:
    """Group wedge endpoints into per-(peeled vertex, endpoint) decrements.

    Parameters
    ----------
    endpoints:
        Wedge-endpoint multiset gathered for the batch, grouped into
        consecutive segments (stale entries towards peeled vertices are
        tolerated — the alive filter drops them, which is the Lemma 2
        drop-semantics).  May be int32 or int64; typically a view of the
        workspace's gather buffer.
    segment_values:
        Batch position of each segment, ascending (every caller enumerates
        positions as an ``arange`` slice; the pair-recovery pass relies on
        the order).
    segment_lengths:
        Endpoint count of each segment (``sum == endpoints.size``).
    batch:
        The peeled vertex ids (indexed by batch position).
    alive:
        Alive mask over the peeled side; batch members must already be
        marked dead so batch-internal updates are dropped.
    filter_alive:
        Pass ``False`` when the caller guarantees every endpoint is alive
        (the adjacency was compacted after the last deletion, see
        :attr:`~repro.graph.dynamic.PeelableAdjacency.has_stale_entries`);
        the kernel then skips the alive filtering entirely.
    late_filter:
        Where to apply the alive filter.  ``False`` (the classic schedule)
        compresses dead endpoints out of the multiset *before* keying, so
        later passes touch surviving wedges only — right when staleness is
        unbounded (no DGM).  ``True`` defers the filter to the (far
        smaller) pair level, skipping three wedge-scale passes — right when
        DGM keeps the stale fraction small.  Both schedules drop exactly
        the pairs whose endpoint is dead, so results are bit-identical.
    workspace:
        Scratch arena; the calling thread's default when omitted.
    """
    if endpoints.size == 0:
        return BatchDecrements.empty()
    workspace = workspace_or_default(workspace)
    n_side = np.int64(alive.shape[0])
    check_pairs_alive = False
    if filter_alive and not late_filter:
        # Drop dead endpoints first: their pairs would be filtered out
        # afterwards anyway, and compressing before key construction keeps
        # every later pass — including the sort — on surviving wedges only.
        if endpoints.dtype == np.int64:
            index = endpoints
        else:
            # Fancy indexing needs intp; convert once through a reused
            # buffer instead of letting numpy allocate the cast per call.
            index = workspace.take("cpw_index", endpoints.shape[0], np.int64)
            np.copyto(index, endpoints, casting="unsafe")
        live = workspace.take("cpw_live", endpoints.shape[0], np.bool_)
        np.take(alive, index, out=live, mode="clip")
        live_per_segment = segment_sums(
            live, segment_lengths, workspace=workspace, name="cpw_livesum"
        )
        live_total = int(live_per_segment.sum())
        if live_total == 0:
            return BatchDecrements.empty()
        if live_total != endpoints.shape[0]:
            compressed = workspace.take("cpw_eplive", live_total, endpoints.dtype)
            np.compress(live, endpoints, out=compressed)
            endpoints = compressed
    else:
        check_pairs_alive = filter_alive
        live_per_segment = segment_lengths
    segment_values = np.asarray(segment_values, dtype=np.int64)
    if segment_values.shape[0] > 1 and bool(
        np.any(segment_values[1:] < segment_values[:-1])
    ):
        # The pair recovery below reads segment boundaries off the sorted
        # keys, which requires ascending positions; the check is one pass
        # over the (small) segment array, not the wedge multiset.
        raise ValueError("segment_values must be ascending batch positions")
    key_bound = int(n_side) * int(batch.shape[0])
    key_dtype = workspace.ids_dtype(key_bound)
    # One repeat of the pre-scaled positions plus one in-place add builds
    # the keys directly in the narrowed dtype (values are bounded by
    # key_bound, so the unsafe casts cannot wrap).
    keys = np.repeat(
        np.multiply(segment_values, n_side, dtype=key_dtype), live_per_segment
    )
    np.add(keys, endpoints, out=keys, casting="unsafe")
    unique_keys, wedge_counts = key_counts(
        keys, key_bound, owned=True, workspace=workspace
    )
    # Keys are sorted, so segments are non-decreasing: recover them from the
    # segment boundaries with one searchsorted over the (few) batch
    # positions instead of a slow per-pair integer division.  Every caller
    # passes ascending positions (arange slices), so the values double as
    # the ordered segment list.
    ordered_segments = segment_values
    boundaries = np.searchsorted(unique_keys, (ordered_segments + 1) * n_side, side="left")
    pair_counts = np.empty(boundaries.shape[0], dtype=np.int64)
    pair_counts[0] = boundaries[0]
    np.subtract(boundaries[1:], boundaries[:-1], out=pair_counts[1:])
    pair_segments = np.repeat(ordered_segments, pair_counts)
    pair_endpoints = unique_keys - pair_segments * n_side
    keep = wedge_counts >= 2
    if check_pairs_alive:
        # Deferred Lemma 2 filter: batch members (including each pair's own
        # vertex) are already dead, so the alive test subsumes the
        # self-pair exclusion below.
        keep &= alive[pair_endpoints]
    else:
        keep &= pair_endpoints != batch[pair_segments]
    # One index extraction + three takes instead of three boolean fancy
    # passes (each of which re-scans the mask internally).
    selected = np.flatnonzero(keep)
    wedge_counts = np.take(wedge_counts, selected, mode="clip")
    return BatchDecrements(
        segments=np.take(pair_segments, selected, mode="clip"),
        endpoints=np.take(pair_endpoints, selected, mode="clip"),
        decrements=wedge_counts * (wedge_counts - 1) // 2,
    )


def key_counts(
    keys: np.ndarray,
    key_bound: int,
    *,
    owned: bool = False,
    workspace: WedgeWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Unique keys and their multiplicities via a run-length sort.

    Equivalent to ``np.unique(keys, return_counts=True)`` but measurably
    faster on the hot path: the key array is sorted in int32 when the key
    range permits — int32 sorting has twice the throughput of int64 — and
    the run boundaries are read off with one vectorized comparison instead
    of ``np.unique``'s extra passes.

    ``owned`` declares that the caller relinquishes ``keys``: only then may
    the sort run in place on the caller's array.  With ``owned=False``
    (the default) the kernel always sorts a copy — previously a key array
    that was already as narrow as the bound allowed was silently sorted in
    place, corrupting the caller's data.
    """
    if keys.shape[0] == 0:
        zero = np.zeros(0, dtype=np.int64)
        return zero, zero
    workspace = workspace_or_default(workspace)
    if key_bound <= INT32_MAX and keys.dtype != np.int32:
        keys = keys.astype(np.int32)  # narrowing copies, so the copy is owned
    elif not owned:
        keys = keys.copy()
    keys.sort()
    boundary = workspace.take("kc_boundary", keys.shape[0], np.bool_)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.empty(starts.shape[0], dtype=np.int64)
    np.subtract(starts[1:], starts[:-1], out=counts[:-1])
    counts[-1] = keys.shape[0] - starts[-1]
    return keys[starts].astype(np.int64), counts


def apply_clamped_decrements(
    supports: np.ndarray,
    decrements: BatchDecrements,
    threshold: int,
    *,
    workspace: WedgeWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Apply a batch of clamped support decrements in place.

    Replays, with grouped prefix sums, what the sequential loop does one
    peeled vertex at a time: for each endpoint, decrements arrive in batch
    order and the support is clamped from below at ``threshold`` after
    every step.  Because supports decrease monotonically, the final value
    is ``max(threshold, support - total)`` and a step counts as a support
    update exactly when the pre-step (unclamped) running support is still
    above the threshold.

    Returns ``(updated_vertices, new_supports, support_updates)`` with
    ``updated_vertices`` sorted ascending; ``supports`` is modified in
    place.  Aggregation scratch (the dense accumulator, the per-pair state
    vector and the crossing-replay boundary arrays) lives in the workspace
    arena instead of being rebuilt per call.
    """
    endpoints = decrements.endpoints
    deltas = decrements.decrements
    if endpoints.size == 0:
        zero = np.zeros(0, dtype=np.int64)
        return zero, zero, 0
    workspace = workspace_or_default(workspace)

    n_side = supports.shape[0]
    if endpoints.shape[0] * 32 < n_side:
        # Sparse aggregation: small batches (one vertex of sequential BUP in
        # particular) must not pay O(n_side) zero-fills and scans per call.
        # The crossover leans dense: ``np.unique``'s sort costs far more per
        # pair than the accumulator's linear fill-and-scan costs per vertex.
        touched, compact = np.unique(endpoints, return_inverse=True)
        totals = workspace.take("acd_totals", touched.shape[0], np.int64)
        totals.fill(0)
        np.add.at(totals, compact, deltas)
    else:
        accumulator = workspace.take("acd_accumulator", n_side, np.int64)
        accumulator.fill(0)
        np.add.at(accumulator, endpoints, deltas)
        touched = np.flatnonzero(accumulator)
        totals = accumulator[touched]
        compact = None
    old = supports[touched]
    new = np.maximum(threshold, old - totals)
    changed = new < old
    updated_vertices = touched[changed]
    new_supports = new[changed]

    # support_updates accounting.  An endpoint that stays above the
    # threshold even after its full decrement counts every one of its pairs
    # (each step strictly decreased the support); an endpoint that starts at
    # or below the threshold counts none.  Only endpoints that *cross* the
    # threshold mid-batch need the sequential replay, and they are rare, so
    # the sort below runs on a small remnant instead of every pair.
    above = old > threshold
    crosses = above & (old - totals <= threshold)
    if compact is not None:
        state = workspace.take("acd_state", touched.shape[0], np.int8)
        state.fill(0)
        state[above & ~crosses] = 1
        state[crosses] = 2
        pair_state = state[compact]
    else:
        state = workspace.take("acd_state", n_side, np.int8)
        state.fill(0)
        state[touched[above & ~crosses]] = 1
        state[touched[crosses]] = 2
        pair_state = state[endpoints]
    support_updates = int(np.count_nonzero(pair_state == 1))

    if crosses.any():
        selected = pair_state == 2
        cross_endpoints = endpoints[selected]
        cross_deltas = deltas[selected]
        order = np.lexsort((decrements.segments[selected], cross_endpoints))
        cross_endpoints = cross_endpoints[order]
        cross_deltas = cross_deltas[order]

        group_start = workspace.take("acd_group_start", cross_endpoints.shape[0], np.bool_)
        group_start[0] = True
        np.not_equal(cross_endpoints[1:], cross_endpoints[:-1], out=group_start[1:])
        group_of_pair = np.cumsum(group_start) - 1
        exclusive = np.cumsum(cross_deltas) - cross_deltas
        group_base = exclusive[group_start]
        # Running support of the endpoint just before each pair's decrement.
        before = supports[cross_endpoints] - (exclusive - group_base[group_of_pair])
        support_updates += int((before > threshold).sum())

    supports[updated_vertices] = new_supports
    return updated_vertices, new_supports, support_updates
