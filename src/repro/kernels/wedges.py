"""Vectorized wedge enumeration over flat-CSR adjacencies.

Two wedge traversal patterns cover every algorithm in the library:

* *batch two-hop gathering* — for a set of peeled-side vertices, the
  multiset of wedge endpoints reachable through their center neighbours
  (what ``peel_batch`` aggregates, Alg. 2's ``update``), and
* *priority-filtered pair enumeration* — for every center (middle) vertex,
  the wedge pairs ``(ep, sp)`` with ``rank(ep) < min(rank(mid), rank(sp))``
  (the exact wedge set vertex-priority counting visits, Alg. 1).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .csr import gather_ranges, gather_rows, segment_ids, segment_offsets, segment_sums
from .workspace import WedgeWorkspace, budget_spans, workspace_or_default

__all__ = ["gather_batch_wedges", "iter_batch_wedge_chunks", "ranked_wedge_pairs"]


def gather_batch_wedges(
    peel_offsets: np.ndarray,
    peel_neighbors: np.ndarray,
    center_offsets: np.ndarray,
    center_neighbors: np.ndarray,
    batch: np.ndarray,
    *,
    workspace: WedgeWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the two-hop endpoint multiset of every batch vertex at once.

    Parameters
    ----------
    peel_offsets, peel_neighbors:
        Static CSR of the peeled side (vertex -> center neighbours).
    center_offsets, center_neighbors:
        Current (possibly compacted) CSR of the center side
        (center -> peeled-side neighbours).
    batch:
        Peeled-side vertex ids.
    workspace:
        Scratch arena the gathered multiset is checked out of (the
        endpoint array is a view of its ``wedge_ep`` buffer, valid until
        the next gather); plain allocations when omitted.

    Returns
    -------
    endpoints:
        Concatenated wedge endpoints, grouped by batch vertex; its length is
        exactly the number of wedge endpoints traversed (the paper's work
        unit, stale entries included).
    endpoints_per_vertex:
        Segment lengths: ``endpoints_per_vertex[i]`` endpoints belong to
        ``batch[i]`` (expand with :func:`~repro.kernels.csr.segment_ids`
        when per-entry owner ids are needed).

    This is the *monolithic* gather; memory-bounded callers iterate
    :func:`iter_batch_wedge_chunks` instead so peak scratch is capped by
    the workspace's wedge budget.
    """
    centers, centers_per_vertex = gather_rows(peel_offsets, peel_neighbors, batch)
    endpoints, endpoints_per_center = gather_rows(
        center_offsets, center_neighbors, centers, workspace=workspace, name="wedge_ep"
    )
    return endpoints, segment_sums(
        endpoints_per_center, centers_per_vertex, workspace=workspace, name="wedge_epsum"
    )


def iter_batch_wedge_chunks(
    centers: np.ndarray,
    centers_per_vertex: np.ndarray,
    center_offsets: np.ndarray,
    center_neighbors: np.ndarray,
    *,
    workspace: WedgeWorkspace | None = None,
    range_starts: np.ndarray | None = None,
    range_lengths: np.ndarray | None = None,
    wedges_per_vertex: np.ndarray | None = None,
) -> Iterator[tuple[int, int, np.ndarray, np.ndarray]]:
    """Stream a batch's two-hop gather in wedge-budgeted chunks.

    The batch is described by its pre-gathered center multiset (``centers``
    grouped by ``centers_per_vertex``) — peel batching computes it while
    locating DGM compaction splits, so the peeled-side CSR is never walked
    twice.  Yields ``(lo, hi, endpoints, wedges_per_vertex[lo:hi])`` spans
    of batch positions whose total wedge endpoints respect the workspace's
    :attr:`~repro.kernels.workspace.WedgeWorkspace.wedge_budget` (a single
    vertex is never split, so the effective cap is the larger of the budget
    and the heaviest vertex).  ``endpoints`` is a view of the workspace's
    gather buffer and must be consumed before the next iteration; partial
    results are meant to be folded into running accumulators, which is what
    keeps peak scratch proportional to the budget instead of the batch's
    total wedge count.

    ``range_starts`` / ``range_lengths`` / ``wedges_per_vertex`` may carry
    the per-center gather ranges and per-vertex wedge counts when the
    caller already computed them.
    """
    workspace = workspace_or_default(workspace)
    center_starts = segment_offsets(centers_per_vertex)
    if range_starts is None:
        range_starts = center_offsets[centers]
        range_lengths = center_offsets[centers + 1] - range_starts
    if wedges_per_vertex is None:
        wedges_per_vertex = segment_sums(
            range_lengths, centers_per_vertex, workspace=workspace, name="ibwc_wpv"
        )
    for lo, hi in budget_spans(wedges_per_vertex, workspace.wedge_budget):
        c_lo, c_hi = int(center_starts[lo]), int(center_starts[hi])
        endpoints = gather_ranges(
            center_neighbors,
            range_starts[c_lo:c_hi],
            range_lengths[c_lo:c_hi],
            workspace=workspace,
            name="wedge_ep",
        )
        yield lo, hi, endpoints, wedges_per_vertex[lo:hi]


def ranked_wedge_pairs(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    mid_ranks: np.ndarray,
    endpoint_ranks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate every priority-filtered wedge pair in one vectorized pass.

    For each middle vertex ``mid`` (a CSR row) with neighbours sorted by
    increasing ``endpoint_ranks``, a pair ``(ep, sp)`` is emitted for every
    neighbour ``ep`` with ``rank(ep) < rank(mid)`` and every neighbour
    ``sp`` appearing after ``ep`` in rank order.  This is exactly the wedge
    set Alg. 1 traverses (the endpoint outranks both start and middle when
    read as ``sp - mid - ep``); ranks must form a global permutation so the
    strict comparisons are unambiguous.

    Returns ``(sp, ep, mid)`` id arrays, one entry per wedge pair; the
    common length is the number of wedges traversed.
    """
    n_mid = offsets.shape[0] - 1
    lengths = np.diff(offsets)
    empty = np.zeros(0, dtype=np.int64)
    if neighbors.size == 0:
        return empty, empty, empty

    # Sort each row by endpoint rank with one global lexsort.
    mid_of_entry = segment_ids(lengths)
    ranks = endpoint_ranks[neighbors]
    order = np.lexsort((ranks, mid_of_entry))
    sorted_neighbors = neighbors[order]
    sorted_ranks = ranks[order]

    # Per-entry eligible-pair count: an entry at local position i of a row of
    # length L is an endpoint of L - 1 - i pairs, but only when its rank is
    # below the middle vertex's rank.
    local = np.arange(neighbors.size, dtype=np.int64) - np.repeat(offsets[:-1], lengths)
    lengths_of_entry = lengths[mid_of_entry]
    pair_counts = np.where(
        sorted_ranks < mid_ranks[mid_of_entry],
        lengths_of_entry - 1 - local,
        0,
    )
    total_pairs = int(pair_counts.sum())
    if total_pairs == 0:
        return empty, empty, empty

    ep_entry = np.repeat(np.arange(neighbors.size, dtype=np.int64), pair_counts)
    pair_starts = np.concatenate(([0], np.cumsum(pair_counts)[:-1]))
    within = np.arange(total_pairs, dtype=np.int64) - np.repeat(pair_starts, pair_counts)
    sp_entry = ep_entry + 1 + within

    return (
        sorted_neighbors[sp_entry],
        sorted_neighbors[ep_entry],
        mid_of_entry[ep_entry],
    )
