"""Reusable scratch arena and memory policy for the wedge pipeline.

Every wedge kernel in this library manipulates a handful of *wedge-scale*
temporaries (gathered endpoints, pair keys, sort scratch, boolean masks)
whose size is the number of wedge endpoints traversed — often orders of
magnitude above the graph itself.  Allocating them afresh per peeling
iteration is pure allocator and page-fault churn, and materialising them in
int64 doubles the bytes pushed through the gather / sort / prefix-sum
passes that dominate the hot path.  A :class:`WedgeWorkspace` bundles the
three remedies:

* **scratch arena** — grow-only named byte buffers checked out per kernel
  call (:meth:`WedgeWorkspace.take`), so successive CD / FD / BUP rounds
  and streaming repairs reuse the same memory instead of faulting in fresh
  pages every iteration;
* **dtype narrowing** — :meth:`WedgeWorkspace.ids_dtype` answers int32
  whenever the value bound permits (it always does at this library's
  scales), halving the bandwidth of every wedge-scale pass;
* **wedge budget** — :attr:`WedgeWorkspace.wedge_budget` caps how many
  wedge endpoints a kernel may materialise at once; :func:`budget_spans`
  plans the corresponding chunking, and kernels fold each chunk's partial
  result into running per-vertex accumulators, so peak scratch is bounded
  by the budget instead of the total wedge count.

Checkout discipline: a buffer returned by :meth:`~WedgeWorkspace.take` is
valid until the *same name* is requested again.  Kernels therefore keep
only transient wedge-scale intermediates in the arena and return fresh,
exactly-sized arrays (pair lists, updated-vertex sets) to their callers.

:func:`WedgeWorkspace.legacy` builds a workspace that disables all three
mechanisms — every checkout is a fresh allocation, ids stay int64 and
chunking is off — which reproduces the cost profile of the pre-arena
kernels.  The benchmark harness (``benchmarks/bench_kernels.py``) uses it
as the baseline its speedup and peak-scratch gates are measured against,
and the equivalence suite uses it to assert that narrowing and chunking
never change a single counter.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Iterator

import numpy as np

__all__ = [
    "DEFAULT_WEDGE_BUDGET",
    "INT32_MAX",
    "WedgeWorkspace",
    "budget_spans",
    "default_wedge_budget",
    "get_workspace",
    "live_workspace_stats",
    "resolve_wedge_budget",
    "workspace_or_default",
]

INT32_MAX = int(np.iinfo(np.int32).max)

#: Wedge endpoints a kernel may materialise per chunk when the caller does
#: not configure a budget.  2**18 endpoints keep the working set of one
#: chunk (a few int32/int64 arrays of that length) around cache size while
#: leaving each chunk large enough that per-chunk numpy dispatch overhead
#: is negligible.  Override globally with ``REPRO_WEDGE_BUDGET`` (a
#: non-positive value disables chunking) — the variable is consulted on
#: every workspace construction / :func:`resolve_wedge_budget` call, not
#: frozen at import, so long-lived processes (the serving front end) pick
#: up mid-process changes.
DEFAULT_WEDGE_BUDGET: int | None = 1 << 18

#: Sentinel distinguishing "use the library default budget" from an
#: explicit ``None`` (= unbounded).
_USE_DEFAULT = object()

# Weak registry of every live workspace so the memory telemetry endpoint
# (repro.obs.memory) can report arena residency without the arenas having
# to know about observability.  Weak references: registration must not
# extend a workspace's lifetime past its algorithm run.
_LIVE_LOCK = threading.Lock()
_LIVE_WORKSPACES: "weakref.WeakSet[WedgeWorkspace]" = weakref.WeakSet()


def live_workspace_stats() -> dict:
    """Aggregate arena residency across every live :class:`WedgeWorkspace`.

    ``current_bytes`` sums buffer capacities actually held right now
    (legacy workspaces hold nothing between calls); ``peak_bytes`` is the
    largest single-workspace high-water mark among live arenas.
    """
    with _LIVE_LOCK:
        workspaces = list(_LIVE_WORKSPACES)
    current = 0
    peak = 0
    for workspace in workspaces:
        held = sum(buf.nbytes for buf in workspace._buffers.values())
        if workspace._iota is not None:
            held += workspace._iota.nbytes
        current += held
        peak = max(peak, workspace.peak_scratch_bytes)
    return {
        "workspaces": len(workspaces),
        "current_bytes": int(current),
        "peak_bytes": int(peak),
    }


def default_wedge_budget() -> int | None:
    """The library-default wedge budget, honouring ``REPRO_WEDGE_BUDGET``.

    Reads the environment on every call (a non-positive value disables
    chunking, an unset/empty variable keeps :data:`DEFAULT_WEDGE_BUDGET`)
    so tests and operators can retune a live process.
    """
    raw = os.environ.get("REPRO_WEDGE_BUDGET", "").strip()
    if raw:
        value = int(raw)
        return value if value > 0 else None
    return DEFAULT_WEDGE_BUDGET


def resolve_wedge_budget(budget: int | None) -> int | None:
    """Normalise a user-facing budget knob: ``None`` means "library
    default", zero or negative means "unbounded"."""
    if budget is None:
        return default_wedge_budget()
    return int(budget) if int(budget) > 0 else None


class WedgeWorkspace:
    """Grow-only scratch arena plus narrowing / chunking policy.

    Parameters
    ----------
    wedge_budget:
        Maximum wedge endpoints a kernel chunk may materialise; ``None``
        disables chunking.  Defaults to :data:`DEFAULT_WEDGE_BUDGET`.
    narrow_ids:
        Allow int32 ids and keys whenever the value bound permits.
    reuse:
        Keep buffers between checkouts.  ``False`` makes every
        :meth:`take` a fresh allocation (the legacy cost profile).
    """

    def __init__(
        self,
        *,
        wedge_budget: int | None = _USE_DEFAULT,  # type: ignore[assignment]
        narrow_ids: bool = True,
        reuse: bool = True,
    ):
        self.wedge_budget = (
            default_wedge_budget() if wedge_budget is _USE_DEFAULT else wedge_budget
        )
        self.narrow_ids = bool(narrow_ids)
        self.reuse = bool(reuse)
        self._buffers: dict[str, np.ndarray] = {}
        self._sizes: dict[str, int] = {}
        self._iota: np.ndarray | None = None
        #: High-water mark of the arena in bytes (sum of buffer capacities,
        #: including the cached iota).  Monotonic over the workspace's
        #: lifetime; algorithms report it through
        #: :attr:`~repro.peeling.base.PeelingCounters.peak_scratch_bytes`.
        self.peak_scratch_bytes = 0
        with _LIVE_LOCK:
            _LIVE_WORKSPACES.add(self)

    @classmethod
    def legacy(cls) -> "WedgeWorkspace":
        """Workspace reproducing the pre-arena kernels: fresh int64
        allocations per call, no chunking."""
        return cls(wedge_budget=None, narrow_ids=False, reuse=False)

    # ------------------------------------------------------------------
    def ids_dtype(self, bound: int) -> np.dtype:
        """Narrowest id/key dtype for values in ``[0, bound]``."""
        if self.narrow_ids and bound <= INT32_MAX:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    def _record_peak(self) -> None:
        total = sum(self._sizes.values())
        if self._iota is not None:
            total += self._iota.nbytes
        if total > self.peak_scratch_bytes:
            self.peak_scratch_bytes = total

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """Check out a ``size``-element array of ``dtype`` named ``name``.

        The content is uninitialised.  The returned view is valid until the
        same name is taken again; callers must not hand it to user code.
        """
        dtype = np.dtype(dtype)
        nbytes = int(size) * dtype.itemsize
        if not self.reuse:
            # Legacy emulation: a fresh allocation per checkout, with the
            # same high-water accounting so peaks stay comparable.
            self._sizes[name] = max(nbytes, self._sizes.get(name, 0))
            self._record_peak()
            return np.empty(int(size), dtype=dtype)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.nbytes < nbytes:
            capacity = max(nbytes, 64)
            if buffer is not None:
                # Grow geometrically so a slowly increasing request series
                # reallocates O(log) times, not O(n).
                capacity = max(capacity, 2 * buffer.nbytes)
            buffer = np.empty(capacity, dtype=np.uint8)
            self._buffers[name] = buffer
            self._sizes[name] = capacity
            self._record_peak()
        return buffer[:nbytes].view(dtype)

    def note_transient(self, name: str, nbytes: int) -> None:
        """Fold a transient allocation into the peak accounting.

        For the few temporaries that are faster as plain numpy allocations
        than as arena buffers (``np.repeat`` outputs: the run-length decode
        needed to build them in place is serially dependent), the high-water
        mark still records their size so ``peak_scratch_bytes`` reflects
        the true working set.
        """
        nbytes = int(nbytes)
        key = "transient:" + name
        if nbytes > self._sizes.get(key, 0):
            self._sizes[key] = nbytes
            self._record_peak()

    def iota(self, size: int) -> np.ndarray:
        """Read-only ascending ``arange(size)`` served from a cached buffer.

        The contents never change, so after the first growth every request
        is a free slice — gathers that need a base index vector stop paying
        an ``np.arange`` pass per call.
        """
        if not self.reuse:
            return np.arange(int(size), dtype=np.int64)
        if self._iota is None or self._iota.shape[0] < size:
            capacity = max(int(size), 1024)
            if self._iota is not None:
                capacity = max(capacity, 2 * self._iota.shape[0])
            self._iota = np.arange(capacity, dtype=np.int64)
            self._record_peak()
        return self._iota[: int(size)]


_thread_local = threading.local()


def get_workspace() -> WedgeWorkspace:
    """The calling thread's default workspace (created on first use).

    Top-level algorithms create a fresh workspace per run for precise peak
    accounting; bare kernel calls without an explicit workspace share this
    per-thread arena so they still benefit from buffer reuse.
    """
    workspace = getattr(_thread_local, "workspace", None)
    if workspace is None:
        workspace = WedgeWorkspace()
        _thread_local.workspace = workspace
    return workspace


def workspace_or_default(workspace: WedgeWorkspace | None) -> WedgeWorkspace:
    """``workspace`` itself, or the calling thread's default arena."""
    return workspace if workspace is not None else get_workspace()


def budget_spans(
    weights: np.ndarray, budget: int | None
) -> Iterator[tuple[int, int]]:
    """Split consecutive items into ``(start, stop)`` spans of bounded weight.

    Each span's total ``weights`` is at most ``budget`` unless a single
    item alone exceeds it (an item is never split, so the effective bound
    is ``max(budget, weights.max())``).  ``budget=None`` yields one span
    covering everything.
    """
    n = int(weights.shape[0])
    if n == 0:
        return
    if budget is None:
        yield 0, n
        return
    cumulative = np.cumsum(weights, dtype=np.int64)
    if int(cumulative[-1]) <= budget:
        yield 0, n
        return
    start = 0
    base = 0
    while start < n:
        stop = int(np.searchsorted(cumulative, base + budget, side="right"))
        stop = min(max(stop, start + 1), n)
        yield start, stop
        base = int(cumulative[stop - 1])
        start = stop
