"""Observability substrate: tracing, metrics, logs, profiling, SLOs.

The package is intentionally dependency-free (stdlib only) so that every
layer of the repro -- kernels, core phases, the execution engine, the
streaming updater and both serving transports -- can be instrumented
without adding imports the container does not carry.

Modules
-------
``trace``
    ``Span``/``Tracer`` context managers with monotonic timing, nested
    phase attribution and cross-process span merging over the engine's
    pickle channel.  A process-wide no-op tracer is installed by default
    so instrumentation costs nothing unless a recording tracer is active.
``metrics``
    Counters, gauges and fixed-bucket histograms collected through
    per-thread shards (no lock on the hot increment path) and rendered
    in the Prometheus text exposition format.
``log``
    A shared ``repro.*`` logger hierarchy with a JSON-lines formatter,
    request logging with latency + status, and a slow-query threshold.
``report``
    Chrome ``chrome://tracing`` export of a span tree plus the
    phase-time breakdown table behind ``repro trace-summary``.
``profile``
    Zero-dependency sampling profiler: a background thread snapshots
    every live thread's stack and folds the samples into flamegraph
    input and a top-N self-time table (``--profile-out``,
    ``GET /debug/profile``).
``memory``
    Unified memory telemetry joining RSS, tracemalloc, wedge-workspace
    arenas, owned shared-memory segments and artifact memmaps into one
    snapshot (``GET /debug/memory``, ``repro_memory_*`` gauges).
``slo``
    Declarative latency/availability/staleness objectives evaluated by
    rolling burn rate over the existing metrics (``GET /slo``, the
    ``degraded`` health state, WARNING escalation).
``history``
    Append-only ``BENCH_history.jsonl`` of benchmark headline metrics
    with rolling-median baselines and a regression gate
    (``repro bench-history``).
"""

from .trace import NOOP_TRACER, Span, Tracer, current_tracer, use_tracer

__all__ = [
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
