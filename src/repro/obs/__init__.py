"""Observability substrate: tracing spans, metrics, structured logs, reports.

The package is intentionally dependency-free (stdlib only) so that every
layer of the repro -- kernels, core phases, the execution engine, the
streaming updater and both serving transports -- can be instrumented
without adding imports the container does not carry.

Modules
-------
``trace``
    ``Span``/``Tracer`` context managers with monotonic timing, nested
    phase attribution and cross-process span merging over the engine's
    pickle channel.  A process-wide no-op tracer is installed by default
    so instrumentation costs nothing unless a recording tracer is active.
``metrics``
    Counters, gauges and fixed-bucket histograms collected through
    per-thread shards (no lock on the hot increment path) and rendered
    in the Prometheus text exposition format.
``log``
    A shared ``repro.*`` logger hierarchy with a JSON-lines formatter,
    request logging with latency + status, and a slow-query threshold.
``report``
    Chrome ``chrome://tracing`` export of a span tree plus the
    phase-time breakdown table behind ``repro trace-summary``.
"""

from .trace import NOOP_TRACER, Span, Tracer, current_tracer, use_tracer

__all__ = [
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
