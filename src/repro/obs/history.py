"""Bench-history regression sentinel: from snapshots to a gated trajectory.

Every benchmark in ``benchmarks/`` writes a ``BENCH_<name>.json`` snapshot,
and each snapshot gates its own headline numbers against fixed ceilings —
but nothing notices a *slow drift*: a speedup that sags 10% per PR passes
every absolute gate until the day it doesn't.  This module turns the
snapshots into an append-only JSONL **history** and checks each new run
against a rolling baseline of its own past:

* :func:`record_from_bench` distils one ``BENCH_*.json`` payload into a
  compact history record — the headline metrics named in
  :data:`METRIC_SPECS`, keyed by the payload's ``benchmark`` and ``mode``
  fields (quick and full runs never share a baseline);
* :func:`append_history` appends records to ``BENCH_history.jsonl``
  (append-only: re-running ingest adds rows, never rewrites them);
* :func:`check_regressions` compares fresh records against the rolling
  **median** of the last :data:`BASELINE_WINDOW` historical runs of the
  same (benchmark, mode, metric) — median, not mean, so one outlier run
  cannot drag the baseline — and flags values outside the spec's
  tolerance band in the metric's bad direction.

Tolerances are deliberately loose (shared CI runners jitter) and each
spec carries an ``abs_floor``: a regression must clear *both* the
relative band and the absolute floor, so near-zero metrics (an overhead
of 0.04% doubling to 0.08%) cannot trip the gate on noise.  The CLI
surface is ``repro bench-history {ingest,check,show}``; CI runs ``check``
after every bench job and fails the build on a flagged regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BASELINE_WINDOW",
    "DEFAULT_HISTORY_FILENAME",
    "METRIC_SPECS",
    "MetricSpec",
    "append_history",
    "baseline_for",
    "check_regressions",
    "extract_value",
    "format_report",
    "load_history",
    "record_from_bench",
]

DEFAULT_HISTORY_FILENAME = "BENCH_history.jsonl"

#: Historical runs the rolling baseline is the median of.  Five runs keep
#: the baseline responsive to deliberate improvements while needing three
#: bad runs in a row to drag it down.
BASELINE_WINDOW = 5


@dataclass(frozen=True)
class MetricSpec:
    """How one headline metric is read from a bench payload and judged.

    ``key`` is a dotted path; ``direction`` states which way is good
    (``"higher"`` for speedups/throughput, ``"lower"`` for overheads and
    ratios); ``tolerance`` is the relative band around the baseline and
    ``abs_floor`` the minimum absolute move — both must be exceeded in
    the bad direction before the metric counts as regressed.
    """

    key: str
    direction: str  # "higher" | "lower"
    tolerance: float
    abs_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(f"direction must be 'higher' or 'lower', got {self.direction!r}")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def regressed(self, value: float, baseline: float) -> bool:
        if self.direction == "higher":
            bound = baseline * (1.0 - self.tolerance)
            return value < bound and (baseline - value) > self.abs_floor
        bound = baseline * (1.0 + self.tolerance)
        return value > bound and (value - baseline) > self.abs_floor


#: Headline metrics per benchmark (keyed by the payload's ``benchmark``
#: field).  Timing-derived metrics carry wide bands: CI runners share
#: cores, and the point is catching drifts and cliffs, not 10% jitter.
METRIC_SPECS: Dict[str, Tuple[MetricSpec, ...]] = {
    "cd_peel_kernel": (
        MetricSpec("largest_speedup", "higher", 0.50, abs_floor=0.3),
    ),
    "wedge_pipeline_kernels": (
        MetricSpec("largest_speedup", "higher", 0.50, abs_floor=0.2),
        MetricSpec("largest_peak_ratio", "lower", 0.50, abs_floor=0.1),
    ),
    "fd_scaling": (
        MetricSpec("process_fanout_speedup_vs_1worker", "higher", 0.60, abs_floor=0.2),
    ),
    "serving": (
        MetricSpec("offline.warm_batch_speedup_vs_repeel", "higher", 0.60, abs_floor=50.0),
        MetricSpec("async.speedup_vs_threaded_point", "higher", 0.60, abs_floor=3.0),
        MetricSpec("sharding.one_shard_parity", "higher", 0.60, abs_floor=0.3),
        MetricSpec("resilience.recovery_seconds", "lower", 0.60, abs_floor=5.0),
    ),
    "streaming": (
        MetricSpec("session_stream.mean_speedup", "higher", 0.60, abs_floor=2.0),
    ),
    "observability": (
        MetricSpec("tracer_overhead.noop_overhead_pct", "lower", 1.00, abs_floor=2.0),
        MetricSpec("trace_fidelity.phase_gap_pct", "lower", 1.00, abs_floor=3.0),
    ),
}


def extract_value(payload: Dict[str, Any], dotted: str) -> Optional[float]:
    """Resolve a dotted path into a numeric leaf, or ``None`` if absent."""
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def record_from_bench(
    payload: Dict[str, Any], *, source: str, recorded_unix: float
) -> Optional[Dict[str, Any]]:
    """One history record from a bench payload; ``None`` for unknown benches."""
    benchmark = payload.get("benchmark")
    specs = METRIC_SPECS.get(str(benchmark))
    if not specs:
        return None
    metrics = {}
    for spec in specs:
        value = extract_value(payload, spec.key)
        if value is not None:
            metrics[spec.key] = value
    if not metrics:
        return None
    record = {
        "recorded_unix": float(recorded_unix),
        "benchmark": str(benchmark),
        "mode": str(payload.get("mode", "")),
        "source": str(source),
        "metrics": metrics,
    }
    # The field is named base_fingerprint everywhere (it identifies the
    # *content* a run was measured against, matching /stats); older bench
    # payloads that only carry artifact.fingerprint are accepted as-is.
    artifact = payload.get("artifact")
    if isinstance(artifact, dict):
        fingerprint = artifact.get("base_fingerprint") or artifact.get("fingerprint")
        if fingerprint:
            record["base_fingerprint"] = str(fingerprint)
    return record


def load_history(path: str | Path) -> List[Dict[str, Any]]:
    """Parse a JSONL history file; malformed lines are skipped, not fatal
    (a truncated final line from a killed CI job must not wedge the gate)."""
    path = Path(path)
    if not path.is_file():
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "benchmark" in record:
                records.append(record)
    return records


def append_history(path: str | Path, records: Iterable[Dict[str, Any]]) -> int:
    """Append records as JSONL; returns how many were written."""
    records = list(records)
    if not records:
        return 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def baseline_for(
    history: Sequence[Dict[str, Any]],
    benchmark: str,
    mode: str,
    metric: str,
    *,
    window: int = BASELINE_WINDOW,
) -> Optional[float]:
    """Rolling-median baseline from the last ``window`` matching runs."""
    values = [
        float(record["metrics"][metric])
        for record in history
        if record.get("benchmark") == benchmark
        and record.get("mode") == mode
        and metric in record.get("metrics", {})
    ]
    if not values:
        return None
    return float(median(values[-window:]))


def check_regressions(
    history: Sequence[Dict[str, Any]],
    records: Sequence[Dict[str, Any]],
    *,
    window: int = BASELINE_WINDOW,
) -> List[Dict[str, Any]]:
    """Judge fresh records against the history's rolling baselines.

    Returns one finding per (record, metric): ``status`` is ``"ok"``,
    ``"regression"`` or ``"no_baseline"`` (first run of a metric passes —
    there is nothing to regress from).
    """
    findings: List[Dict[str, Any]] = []
    for record in records:
        benchmark = str(record.get("benchmark", ""))
        mode = str(record.get("mode", ""))
        specs = {spec.key: spec for spec in METRIC_SPECS.get(benchmark, ())}
        for metric, value in record.get("metrics", {}).items():
            spec = specs.get(metric)
            if spec is None:
                continue
            baseline = baseline_for(history, benchmark, mode, metric, window=window)
            if baseline is None:
                status = "no_baseline"
            elif spec.regressed(float(value), baseline):
                status = "regression"
            else:
                status = "ok"
            findings.append({
                "benchmark": benchmark,
                "mode": mode,
                "metric": metric,
                "value": float(value),
                "baseline": baseline,
                "direction": spec.direction,
                "tolerance": spec.tolerance,
                "status": status,
            })
    return findings


def format_report(findings: Sequence[Dict[str, Any]]) -> str:
    """Human-readable check report (one line per finding, verdict last)."""
    if not findings:
        return "bench-history: no gated metrics found"
    lines = []
    regressions = 0
    for finding in findings:
        baseline = finding["baseline"]
        shown = "n/a" if baseline is None else f"{baseline:.4g}"
        arrow = "↑" if finding["direction"] == "higher" else "↓"
        marker = {"ok": "ok", "no_baseline": "new", "regression": "REGRESSION"}[
            finding["status"]]
        if finding["status"] == "regression":
            regressions += 1
        lines.append(
            f"  [{marker:>10}] {finding['benchmark']}/{finding['mode']} "
            f"{finding['metric']} ({arrow} better, ±{finding['tolerance']:.0%}): "
            f"{finding['value']:.4g} vs baseline {shown}"
        )
    verdict = (
        f"bench-history: {regressions} regression(s) in {len(findings)} gated metric(s)"
        if regressions else
        f"bench-history: all {len(findings)} gated metric(s) within tolerance"
    )
    return "\n".join(lines + [verdict])
