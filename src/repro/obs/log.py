"""Structured logging: shared ``repro.*`` logger hierarchy, JSON lines.

``configure_logging(fmt="json")`` installs a single stderr handler on
the root ``repro`` logger whose formatter emits one JSON object per
line (``ts``, ``level``, ``logger``, ``message`` plus any ``extra``
fields passed at the call site).  Text mode keeps a conventional
human-readable line but still appends the structured fields.

Request logging is shared by both serving transports: every request is
logged at DEBUG, requests slower than the slow-query threshold
(``REPRO_SLOW_QUERY_MS``, default 250 ms) are logged at WARNING, and
non-quiet servers log at INFO.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any, Optional, TextIO

__all__ = [
    "configure_logging",
    "get_logger",
    "log_request",
    "slow_query_threshold_seconds",
]

ROOT_LOGGER = "repro"
SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_MS"
DEFAULT_SLOW_QUERY_MS = 250.0

# Attributes present on every LogRecord; anything else was supplied via
# ``extra=`` and belongs in the structured payload.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The shared repro logger, or a child (``get_logger("service")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def _structured_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _STANDARD_ATTRS and not key.startswith("_")
    }


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``extra=`` fields ride along verbatim."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_structured_fields(record))
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


class TextFormatter(logging.Formatter):
    """Human-readable line with the structured fields appended as k=v."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = _structured_fields(record)
        if fields:
            base += " " + " ".join(f"{key}={value}" for key, value in fields.items())
        return base


def configure_logging(
    fmt: str = "text",
    level: str = "WARNING",
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Install (or replace) the repro log handler.  Idempotent.

    Only handlers previously installed by this function are replaced,
    so tests using ``caplog``/custom handlers are unaffected.
    """
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r} (expected 'text' or 'json')")
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter() if fmt == "json" else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    return logger


def slow_query_threshold_seconds() -> float:
    """Slow-request threshold from ``REPRO_SLOW_QUERY_MS`` (default 250 ms)."""
    raw = os.environ.get(SLOW_QUERY_ENV, "")
    try:
        millis = float(raw) if raw else DEFAULT_SLOW_QUERY_MS
    except ValueError:
        millis = DEFAULT_SLOW_QUERY_MS
    return millis / 1000.0


def log_request(
    transport: str,
    route: str,
    status: int,
    seconds: float,
    *,
    quiet: bool = True,
    **fields: Any,
) -> None:
    """Log one served request with latency + status on both transports."""
    logger = get_logger("service")
    slow = seconds > slow_query_threshold_seconds()
    if slow:
        level = logging.WARNING
    elif not quiet:
        level = logging.INFO
    else:
        level = logging.DEBUG
    if not logger.isEnabledFor(level):
        return
    logger.log(
        level,
        "slow query" if slow else "request",
        extra={
            "event": "request",
            "transport": transport,
            "route": route,
            "status": int(status),
            "latency_ms": round(seconds * 1000.0, 3),
            "slow": slow,
            **fields,
        },
    )


def log_phase(phase: str, seconds: float, **fields: Any) -> None:
    """Log one completed peel phase (pvBcnt / cd / fd / ...) at INFO."""
    logger = get_logger("core")
    if not logger.isEnabledFor(logging.INFO):
        return
    logger.info(
        "phase complete",
        extra={
            "event": "phase",
            "phase": phase,
            "seconds": round(seconds, 6),
            "unix": round(time.time(), 3),
            **fields,
        },
    )
