"""Unified memory telemetry: one payload joining every residency source.

A long-lived process in this library holds memory in four distinct places
that previously had to be inspected with four different tools:

* **process residency** — RSS and its high-water mark, read from
  ``/proc/self`` (with a ``resource.getrusage`` fallback off Linux);
* **Python heap** — :mod:`tracemalloc` current/peak and top allocation
  sites, when tracing is enabled (it costs ~2x allocation overhead, so it
  stays opt-in via ``tracemalloc.start()`` or ``PYTHONTRACEMALLOC``);
* **wedge scratch arenas** — every live
  :class:`~repro.kernels.workspace.WedgeWorkspace` registers in a weak
  set; :func:`~repro.kernels.workspace.live_workspace_stats` sums held
  buffer capacity and the largest per-run high-water mark;
* **shared memory** — segments the process backend currently owns
  (:func:`~repro.engine.shm.live_segment_stats`).

:func:`memory_snapshot` is the transport-free join; the serving layer adds
per-artifact memmap sizes and exposes the result as ``GET /debug/memory``
plus ``repro_memory_*`` gauges on ``/metrics``.  Everything degrades to
zeros/None off Linux — no source is allowed to fail the snapshot.
"""

from __future__ import annotations

import os
import sys
import tracemalloc
from typing import Any, Dict, Optional

__all__ = [
    "memory_snapshot",
    "peak_rss_bytes",
    "rss_bytes",
    "tracemalloc_stats",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> Optional[int]:
    """Current resident set size in bytes, or ``None`` if unavailable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is the *peak*, in KiB on Linux and bytes on macOS; as a
        # current-RSS fallback it is an upper bound, which is the useful
        # direction for a residency alarm.
        scale = 1 if sys.platform == "darwin" else 1024
        return int(usage.ru_maxrss) * scale
    except Exception:
        return None


def peak_rss_bytes() -> Optional[int]:
    """High-water resident set size (``VmHWM``), or ``None`` if unavailable."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        scale = 1 if sys.platform == "darwin" else 1024
        return int(usage.ru_maxrss) * scale
    except Exception:
        return None


def tracemalloc_stats(top: int = 10) -> Dict[str, Any]:
    """Python-heap telemetry from :mod:`tracemalloc` (zeros when off).

    When tracing is active the payload carries the ``top`` largest
    allocation sites grouped by file:line — enough to answer "which call
    site holds the heap" without shipping whole tracebacks.
    """
    if not tracemalloc.is_tracing():
        return {"tracing": False, "current_bytes": 0, "peak_bytes": 0, "top": []}
    current, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    ranked = []
    for stat in snapshot.statistics("lineno")[: max(int(top), 0)]:
        frame = stat.traceback[0]
        ranked.append({
            "site": f"{frame.filename}:{frame.lineno}",
            "size_bytes": int(stat.size),
            "count": int(stat.count),
        })
    return {
        "tracing": True,
        "current_bytes": int(current),
        "peak_bytes": int(peak),
        "top": ranked,
    }


def memory_snapshot(*, top: int = 10, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Join every memory source into one JSON-able payload.

    ``extra`` lets a caller graft in sources only it can see (the serving
    layer adds per-artifact memmap bytes); it is merged at the top level.
    The workspace/shm imports are lazy so importing :mod:`repro.obs` never
    drags in numpy-heavy kernel modules.
    """
    from ..engine.shm import live_segment_stats
    from ..kernels.workspace import live_workspace_stats

    payload: Dict[str, Any] = {
        "process": {
            "rss_bytes": rss_bytes(),
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "tracemalloc": tracemalloc_stats(top=top),
        "workspaces": live_workspace_stats(),
        "shm": live_segment_stats(),
    }
    if extra:
        payload.update(extra)
    return payload
