"""Counters, gauges and fixed-bucket histograms with Prometheus text output.

The increment path is lock-free: each metric child keeps one shard per
thread (registered once under a lock, then owned exclusively by that
thread), and a scrape merges the shards.  Under the GIL a reader may
observe a shard mid-update and miss the very latest increment, which is
acceptable for monitoring; it never sees torn or decreasing totals for
counters because each shard only ever grows.

Naming convention (documented in ARCHITECTURE.md):
``repro_<subsystem>_<name>_<unit>`` -- e.g. ``repro_http_request_seconds``,
``repro_coalesce_batch_size``, ``repro_cache_hits_total``.
"""

from __future__ import annotations

import logging
import math
import re
import threading
from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_SECONDS",
    "MetricRegistry",
    "escape_help",
    "escape_label_value",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Request latency in seconds, spanning sub-millisecond cache hits up to
# multi-second cold re-peels.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Power-of-two buckets for batch sizes / queue depths.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(edge: float) -> str:
    return "+Inf" if edge == math.inf else _format_value(float(edge))


def _render_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(str(value))}"' for key, value in labels
    )
    return "{" + body + "}"


class _CounterChild:
    """One labelled counter series; per-thread cells merged on read."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: List[List[float]] = []
        self._local = threading.local()

    def _cell(self) -> List[float]:
        try:
            return self._local.cell
        except AttributeError:
            cell = [0.0]
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
            return cell

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._cell()[0] += amount

    def value(self) -> float:
        with self._lock:
            return float(sum(cell[0] for cell in self._cells))


class _GaugeChild:
    """One labelled gauge series (plain last-write-wins float)."""

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def value(self) -> float:
        return self._value


class _HistogramShard:
    __slots__ = ("counts", "total", "n")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.total = 0.0
        self.n = 0


class _HistogramChild:
    """One labelled histogram series with fixed bucket upper bounds."""

    def __init__(self, edges: Tuple[float, ...]) -> None:
        self._edges = edges  # finite, ascending; +Inf bucket is implicit
        self._lock = threading.Lock()
        self._shards: List[_HistogramShard] = []
        self._local = threading.local()

    def _shard(self) -> _HistogramShard:
        try:
            return self._local.shard
        except AttributeError:
            shard = _HistogramShard(len(self._edges) + 1)
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
            return shard

    def observe(self, value: float) -> None:
        shard = self._shard()
        # ``le`` semantics: bucket i counts observations <= edges[i];
        # bisect_left returns the first edge >= value.
        shard.counts[bisect_left(self._edges, value)] += 1
        shard.total += value
        shard.n += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        with self._lock:
            shards = list(self._shards)
        counts = [0] * (len(self._edges) + 1)
        total = 0.0
        n = 0
        for shard in shards:
            for i, c in enumerate(shard.counts):
                counts[i] += c
            total += shard.total
            n += shard.n
        return counts, total, n

    @property
    def count(self) -> int:
        return self.snapshot()[2]

    @property
    def sum(self) -> float:
        return self.snapshot()[1]

    def quantile_bounds(self, q: float) -> Tuple[float, float]:
        """(lo, hi) bracketing the empirical q-quantile of observations.

        The bracket is exact for the type-1 (inverted CDF) empirical
        quantile ``sorted(values)[ceil(q*n) - 1]``: that order statistic
        lies strictly above ``lo`` (the previous bucket edge, ``-inf``
        for the first bucket) and at or below ``hi`` (the containing
        bucket's edge, ``+inf`` for the overflow bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, _total, n = self.snapshot()
        if n == 0:
            return (math.nan, math.nan)
        target = min(n, max(1, math.ceil(q * n)))
        cum = 0
        for i, c in enumerate(counts):
            cum += c
            if cum >= target:
                lo = self._edges[i - 1] if i > 0 else -math.inf
                hi = self._edges[i] if i < len(self._edges) else math.inf
                return (lo, hi)
        return (self._edges[-1], math.inf)  # unreachable; defensive

    def quantile(self, q: float) -> float:
        """Conservative quantile estimate: the containing bucket's upper edge."""
        return self.quantile_bounds(q)[1]

    def count_le(self, bound: float) -> Tuple[int, int]:
        """``(observations <= bound, total observations)`` from the buckets.

        Exact when ``bound`` is a bucket edge; otherwise conservative
        (counts only buckets whose edge is <= ``bound``, an undercount).
        SLO evaluation picks thresholds on bucket edges for this reason.
        """
        counts, _total, n = self.snapshot()
        k = bisect_right(self._edges, bound)
        return sum(counts[:k]), n


_CHILD_FACTORIES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
}


class _MetricFamily:
    """A named metric with zero or more labelled children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self) -> Any:
        if self.kind == "histogram":
            assert self.buckets is not None
            return _HistogramChild(self.buckets)
        return _CHILD_FACTORIES[self.kind]()

    def labels(self, *values: Any, **kwargs: Any) -> Any:
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kwargs[name] for name in self.labelnames)
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {key}"
            )
        try:
            return self._children[key]
        except KeyError:
            with self._lock:
                return self._children.setdefault(key, self._make_child())

    def _require_default(self) -> Any:
        if self._default is None:
            raise ValueError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self._default

    # Unlabelled convenience -- proxy to the default child.
    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def value(self) -> float:
        return self._require_default().value()

    def quantile(self, q: float) -> float:
        return self._require_default().quantile(q)

    def quantile_bounds(self, q: float) -> Tuple[float, float]:
        return self._require_default().quantile_bounds(q)

    @property
    def count(self) -> int:
        return self._require_default().count

    @property
    def sum(self) -> float:
        return self._require_default().sum

    def children(self) -> Iterable[Tuple[Dict[str, str], Any]]:
        """Snapshot of ``(label_dict, child)`` pairs across the family.

        The public aggregation surface: SLO evaluation sums latency and
        status counts across every labelled series without reaching into
        family internals.
        """
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            yield dict(zip(self.labelnames, key)), child

    # -- exposition ----------------------------------------------------

    def samples(self) -> Iterable[Tuple[str, List[Tuple[str, str]], float]]:
        with self._lock:
            children = sorted(self._children.items())
        for key, child in children:
            base = list(zip(self.labelnames, key))
            if self.kind == "histogram":
                counts, total, n = child.snapshot()
                cum = 0
                edges = list(child._edges) + [math.inf]
                for edge, c in zip(edges, counts):
                    cum += c
                    yield "_bucket", base + [("le", _format_le(edge))], float(cum)
                yield "_sum", base, total
                yield "_count", base, float(n)
            else:
                yield "", base, child.value()


class Counter(_MetricFamily):
    def __init__(self, name: str, help_text: str, labelnames: Tuple[str, ...] = ()):
        super().__init__(name, help_text, "counter", labelnames)


class Gauge(_MetricFamily):
    def __init__(self, name: str, help_text: str, labelnames: Tuple[str, ...] = ()):
        super().__init__(name, help_text, "gauge", labelnames)


class Histogram(_MetricFamily):
    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
    ):
        edges = tuple(float(edge) for edge in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError("histogram buckets must be non-empty, ascending, unique")
        if edges and edges[-1] == math.inf:
            edges = edges[:-1]  # +Inf bucket is implicit
        super().__init__(name, help_text, "histogram", labelnames, buckets=edges)


class MetricRegistry:
    """Get-or-create metric store rendering the Prometheus text format."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _MetricFamily] = {}
        self._callbacks: List[Callable[[], None]] = []

    def _get_or_create(self, cls: type, name: str, help_text: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            family = cls(name, help_text, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help_text, labelnames=tuple(labelnames)
        )

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames=tuple(labelnames))

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames=tuple(labelnames), buckets=buckets
        )

    def register_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at every scrape, before rendering.

        Callbacks refresh scrape-time gauges (uptime, cache hit ratio,
        staleness) from their live sources.
        """
        with self._lock:
            self._callbacks.append(callback)

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            callbacks = list(self._callbacks)
            families = list(self._families.values())
        for callback in callbacks:
            try:
                callback()
            except Exception:  # a broken collector must not take down /metrics
                logging.getLogger("repro.obs").warning(
                    "metrics collector callback failed", exc_info=True
                )
        lines: List[str] = []
        for family in families:
            lines.append(f"# HELP {family.name} {escape_help(family.help_text)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for suffix, labels, value in family.samples():
                lines.append(
                    f"{family.name}{suffix}{_render_labels(labels)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n"
