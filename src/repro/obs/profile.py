"""Zero-dependency sampling profiler: per-thread stack sampling.

A :class:`SamplingProfiler` wakes a background daemon thread every
``interval`` seconds, snapshots every live thread's Python stack via
``sys._current_frames()`` and folds each stack into a semicolon-joined
*folded stack* line (root→leaf, the input format of Brendan Gregg's
``flamegraph.pl`` and of speedscope/Perfetto importers).  Aggregation
happens inside the sampler thread — the profiled code is never paused
beyond the GIL hand-off the snapshot itself costs — so attaching the
profiler to a hot numpy kernel perturbs it by well under the 5% ceiling
``benchmarks/bench_obs.py`` gates.

Two consumption paths:

* **CLI** — ``repro decompose/build-index --profile-out FILE`` runs the
  command under a profiler and writes the profile; a ``*.json`` suffix
  selects the full JSON payload, anything else gets folded-stack text.
* **Serving** — ``GET /debug/profile?seconds=N`` on both transports
  samples the live server for N seconds and answers the JSON payload;
  ``GET /debug/profile?last=1`` returns the most recent collected
  profile without sampling again (cheap to poll, byte-identical across
  transports).

Only one profiler may sample a process at a time (``sys._current_frames``
is global state and two samplers would double the overhead for no signal);
:func:`acquire_profile_slot` enforces that.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_INTERVAL_SECONDS",
    "MAX_PROFILE_SECONDS",
    "ProfileBusyError",
    "SamplingProfiler",
    "acquire_profile_slot",
    "collect_profile",
    "render_folded",
    "render_top",
]

#: 5 ms between samples: ~200 Hz, fine enough to attribute a 100 ms phase
#: to within a few percent while keeping sampler CPU well under 1%.
DEFAULT_INTERVAL_SECONDS = 0.005

#: Hard cap on one on-demand profiling run (``/debug/profile?seconds=N``);
#: a handler must not be pinnable for minutes by a single request.
MAX_PROFILE_SECONDS = 30.0

#: Frames deeper than this are truncated (a runaway recursion would
#: otherwise make every folded key pathologically long).
MAX_STACK_DEPTH = 128


class ProfileBusyError(RuntimeError):
    """Another profiler is already sampling this process."""


_SLOT = threading.Lock()


@contextmanager
def acquire_profile_slot() -> Iterator[None]:
    """Serialise samplers: raises :class:`ProfileBusyError` if one is live."""
    if not _SLOT.acquire(blocking=False):
        raise ProfileBusyError("a profiling run is already in progress")
    try:
        yield
    finally:
        _SLOT.release()


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{code.co_name} ({code.co_filename}:{code.co_firstlineno})"


class SamplingProfiler:
    """Background-thread stack sampler with folded-stack aggregation.

    Usage::

        profiler = SamplingProfiler(interval=0.005)
        profiler.start()
        ...                      # workload under test
        profiler.stop()
        payload = profiler.payload(top=20)

    ``start()``/``stop()`` are idempotent; ``payload()`` is valid any time
    after ``stop()`` (and mid-run, at the cost of a lock).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL_SECONDS):
        self.interval = max(float(interval), 0.0005)
        self._lock = threading.Lock()
        self._stacks: Counter = Counter()  # folded tuple -> samples
        self._thread_samples: Counter = Counter()  # thread name -> samples
        self._samples = 0
        self._errors = 0
        self._started_unix: Optional[float] = None
        self._t0 = 0.0
        self._duration = 0.0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop_event.clear()
        self._started_unix = time.time()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread = self._thread
        if thread is None:
            return self
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None
        self._duration += time.perf_counter() - self._t0
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        names: Dict[int, str] = {}  # thread ident -> name, refreshed per sample
        while not self._stop_event.wait(self.interval):
            self._sample_once(own_ident, names)

    def _sample_once(self, own_ident: int, names: Optional[Dict[int, str]] = None) -> None:
        """One sampling pass: snapshot every live stack and fold it in.

        Factored out of the sampler loop so ``benchmarks/bench_obs.py``
        can time the exact per-sample cost the profiled process pays (the
        GIL hand-off plus the stack walk) and gate it against the
        sampling interval.
        """
        if names is None:
            names = {}
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter shutdown
            self._errors += 1
            return
        names.clear()
        for thread in threading.enumerate():
            names[thread.ident] = thread.name
        sampled: List[tuple] = []
        counted: List[str] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < MAX_STACK_DEPTH:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root-first, the folded-stack convention
            sampled.append(tuple(stack))
            counted.append(names.get(ident, f"thread-{ident}"))
        with self._lock:
            self._samples += 1
            for stack, name in zip(sampled, counted):
                self._stacks[stack] += 1
                self._thread_samples[name] += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def duration_seconds(self) -> float:
        if self._thread is not None:
            return self._duration + (time.perf_counter() - self._t0)
        return self._duration

    def snapshot(self) -> Dict[tuple, int]:
        with self._lock:
            return dict(self._stacks)

    def payload(self, top: int = 25) -> Dict[str, Any]:
        """The complete profile as a JSON-able dict (stable key order)."""
        with self._lock:
            stacks = dict(self._stacks)
            thread_samples = dict(self._thread_samples)
            samples = self._samples
            errors = self._errors
        self_time: Counter = Counter()
        total_time: Counter = Counter()
        for stack, count in stacks.items():
            self_time[stack[-1]] += count
            for label in set(stack):
                total_time[label] += count
        stack_samples = sum(stacks.values())
        folded = [
            {"stack": ";".join(stack), "samples": count}
            for stack, count in sorted(
                stacks.items(), key=lambda item: (-item[1], item[0]))
        ]
        ranked = [
            {
                "frame": label,
                "self_samples": count,
                "total_samples": total_time[label],
                "self_pct": round(100.0 * count / stack_samples, 2)
                if stack_samples else 0.0,
            }
            for label, count in sorted(
                self_time.items(), key=lambda item: (-item[1], item[0]))[:top]
        ]
        return {
            "profile": "sampling",
            "interval_seconds": self.interval,
            "duration_seconds": round(self.duration_seconds(), 4),
            "samples": samples,
            "stack_samples": stack_samples,
            "sample_errors": errors,
            "started_unix": self._started_unix,
            "threads": {
                name: thread_samples[name] for name in sorted(thread_samples)
            },
            "top": ranked,
            "folded": folded,
        }


def render_folded(payload: Dict[str, Any]) -> str:
    """Folded-stack text (``flamegraph.pl`` input) from a profile payload."""
    lines = [f"{entry['stack']} {entry['samples']}" for entry in payload["folded"]]
    return "\n".join(lines) + ("\n" if lines else "")


def render_top(payload: Dict[str, Any], limit: int = 15) -> str:
    """Human-readable top-N self-time table from a profile payload."""
    rows = [
        f"profile: {payload['stack_samples']} stack samples over "
        f"{payload['duration_seconds']}s "
        f"(interval {payload['interval_seconds'] * 1000:.1f} ms)",
        f"  {'self%':>6} {'self':>6} {'total':>6}  frame",
    ]
    for entry in payload["top"][:limit]:
        rows.append(
            f"  {entry['self_pct']:>5.1f}% {entry['self_samples']:>6}"
            f" {entry['total_samples']:>6}  {entry['frame']}"
        )
    return "\n".join(rows)


def collect_profile(
    seconds: float,
    *,
    interval: float = DEFAULT_INTERVAL_SECONDS,
    top: int = 25,
) -> Dict[str, Any]:
    """Sample this process for ``seconds`` and return the profile payload.

    The body of ``GET /debug/profile?seconds=N``.  Raises
    :class:`ProfileBusyError` when another run is already sampling and
    ``ValueError`` on an out-of-range duration.
    """
    seconds = float(seconds)
    if not 0.0 <= seconds <= MAX_PROFILE_SECONDS:
        raise ValueError(
            f"profile duration must be in [0, {MAX_PROFILE_SECONDS}] seconds, "
            f"got {seconds}"
        )
    with acquire_profile_slot():
        profiler = SamplingProfiler(interval=interval)
        if seconds > 0:
            profiler.start()
            time.sleep(seconds)
            profiler.stop()
        return profiler.payload(top=top)


@contextmanager
def profile_to_file(path: Optional[str], *, interval: float = DEFAULT_INTERVAL_SECONDS,
                    top: int = 25) -> Iterator[Optional[SamplingProfiler]]:
    """Run the with-body under a profiler and write the profile to ``path``.

    The body of ``--profile-out``: a ``*.json`` path gets the full JSON
    payload, anything else folded-stack text.  ``path=None`` is a no-op
    so call sites need no conditional.
    """
    if not path:
        yield None
        return
    import json

    with acquire_profile_slot():
        profiler = SamplingProfiler(interval=interval)
        profiler.start()
        try:
            yield profiler
        finally:
            profiler.stop()
        payload = profiler.payload(top=top)
        with open(path, "w", encoding="utf-8") as handle:
            if path.endswith(".json"):
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            else:
                handle.write(render_folded(payload))
    print(render_top(payload), file=sys.stderr)
    print(f"profile written to {path} ({payload['stack_samples']} stack samples)",
          file=sys.stderr)
