"""Run reports: Chrome-tracing export and the phase-time breakdown table.

``write_trace`` persists a tracer's span tree as a JSON file that loads
directly in ``chrome://tracing`` / Perfetto (``traceEvents`` complete
events) while also carrying the parent-linked span dicts under a
``spans`` key so ``repro trace-summary`` does not have to re-infer
nesting.  Files produced by other tools (bare event arrays) are still
accepted: nesting is reconstructed per thread by interval containment.
"""

from __future__ import annotations

import itertools
import json
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence

from .trace import Tracer

__all__ = ["format_summary", "load_trace", "summarize", "write_trace"]


def write_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write the tracer's spans to ``path`` in Chrome tracing format."""
    payload = tracer.chrome_trace()
    payload["spans"] = tracer.export()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return payload


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load span dicts from a ``--trace-out`` file (or any Chrome trace)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "spans" in data:
        return list(data["spans"])
    events = data.get("traceEvents", []) if isinstance(data, dict) else data
    return _spans_from_events(events)


def _spans_from_events(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild parent links from complete events by per-thread containment."""
    ids = itertools.count(1)
    spans: List[Dict[str, Any]] = []
    by_thread: Dict[Any, List[Dict[str, Any]]] = defaultdict(list)
    for event in events:
        if event.get("ph") == "X":
            by_thread[(event.get("pid"), event.get("tid"))].append(event)
    for (pid, tid), group in by_thread.items():
        group.sort(key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))))
        stack: List[Any] = []  # (span_id, end_seconds)
        for event in group:
            start = float(event.get("ts", 0.0)) / 1e6
            dur = float(event.get("dur", 0.0)) / 1e6
            while stack and start >= stack[-1][1] - 1e-12:
                stack.pop()
            parent = stack[-1][0] if stack else None
            span_id = next(ids)
            spans.append(
                {
                    "name": event.get("name", "?"),
                    "id": span_id,
                    "parent": parent,
                    "start": start,
                    "dur": dur,
                    "tid": tid,
                    "pid": pid,
                    "attrs": dict(event.get("args", {})),
                }
            )
            stack.append((span_id, start + dur))
    spans.sort(key=lambda span: span["start"])
    return spans


def summarize(spans: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a span list into wall time, top-level phases, per-name totals."""
    by_id = {span["id"]: span for span in spans}
    children: Dict[Any, List[Dict[str, Any]]] = defaultdict(list)
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in by_id:
            children[parent].append(span)
        else:
            roots.append(span)
    wall = sum(span["dur"] for span in roots)

    by_name: Dict[str, List[float]] = {}
    for span in spans:
        child_total = sum(c["dur"] for c in children.get(span["id"], ()))
        entry = by_name.setdefault(span["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span["dur"]
        entry[2] += max(0.0, span["dur"] - child_total)

    phases: Dict[str, float] = {}
    for root in roots:
        for child in children.get(root["id"], ()):
            phases[child["name"]] = phases.get(child["name"], 0.0) + child["dur"]

    root_counts: Dict[str, int] = {}
    for root in roots:
        root_counts[root["name"]] = root_counts.get(root["name"], 0) + 1

    return {
        "n_spans": len(spans),
        "wall_seconds": wall,
        "roots": [root["name"] for root in roots],
        # Deduped view for traces with many same-named roots (a serve
        # session records one streaming.update root per applied batch).
        "root_counts": root_counts,
        "phases": phases,
        "by_name": {
            name: {"count": int(c), "total_seconds": t, "self_seconds": s}
            for name, (c, t, s) in by_name.items()
        },
    }


def format_summary(spans: Sequence[Dict[str, Any]], top: int = 20) -> str:
    """Human-readable phase-time breakdown mirroring the paper's CD/FD split."""
    summary = summarize(spans)
    wall = summary["wall_seconds"]
    lines: List[str] = []
    roots = ", ".join(
        name if count == 1 else f"{name} ×{count}"
        for name, count in summary["root_counts"].items()
    ) or "none"
    lines.append(
        f"trace: {summary['n_spans']} spans, wall {wall * 1000:.1f} ms"
        f" (root: {roots})"
    )

    phases = summary["phases"]
    if phases:
        lines.append("")
        lines.append("phase breakdown (share of root wall-clock):")
        accounted = 0.0
        for name, total in sorted(phases.items(), key=lambda kv: -kv[1]):
            accounted += total
            lines.append(_phase_row(name, total, wall))
        untraced = wall - accounted
        if wall > 0 and untraced / wall > 0.005:
            lines.append(_phase_row("(untraced)", untraced, wall))

    by_name = summary["by_name"]
    if by_name:
        lines.append("")
        lines.append(f"hottest spans (by total time, top {top}):")
        lines.append(
            f"  {'name':<30} {'count':>7} {'total ms':>10} {'self ms':>10} {'% wall':>7}"
        )
        ranked = sorted(by_name.items(), key=lambda kv: -kv[1]["total_seconds"])
        for name, row in ranked[:top]:
            pct = 100.0 * row["total_seconds"] / wall if wall > 0 else 0.0
            lines.append(
                f"  {name:<30} {row['count']:>7} {row['total_seconds'] * 1000:>10.1f}"
                f" {row['self_seconds'] * 1000:>10.1f} {pct:>6.1f}%"
            )
    return "\n".join(lines)


def _phase_row(name: str, total: float, wall: float) -> str:
    pct = 100.0 * total / wall if wall > 0 else 0.0
    bar = "#" * max(0, min(40, round(pct / 2.5)))
    return f"  {name:<30} {total * 1000:>10.1f} ms {pct:>5.1f}%  {bar}"
