"""Declarative service-level objectives evaluated by rolling burn rate.

An :class:`Objective` states a promise in the SRE idiom — "99% of requests
finish under 250 ms over any 5-minute window" — and a :class:`SloMonitor`
checks the promise against the cumulative instruments PR 7 already
maintains (``repro_http_request_seconds`` buckets, ``repro_http_requests_
total`` status labels, artifact staleness).  No new measurement path: the
monitor snapshots the counters on every evaluation, keeps a short deque of
timestamped snapshots, and differences the newest against the oldest one
inside the window, so the numbers it reports are exactly the numbers
``/metrics`` exports.

**Burn rate** is the standard normalisation: observed error rate divided
by the error budget (``1 - target``).  Burn 1.0 means the budget is being
spent exactly as fast as the objective allows; above 1.0 the objective is
*breached* and the service degrades.  Staleness objectives are instant
rather than windowed — burn is current staleness over the bound.

Surfacing (wired in :mod:`repro.service.server`):

* ``GET /slo`` — full payload: per-objective burn rate, compliance, state;
* ``GET /healthz`` — ``status`` flips ``ok`` → ``degraded`` while any
  objective is breached (liveness stays 200: degraded is an alarm, not an
  outage);
* ``/metrics`` — ``repro_slo_burn_rate{objective=...}`` and
  ``repro_slo_ok{objective=...}`` gauges;
* a WARNING log line on every ok→breached transition (and an INFO line on
  recovery) through the ``repro.obs.slo`` logger.

Objectives with no traffic in the window report ``state="no_data"`` and do
not degrade the service — a freshly started server is not in breach.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .log import get_logger

__all__ = [
    "DEFAULT_OBJECTIVES",
    "Objective",
    "SloMonitor",
    "breaker_open_objective",
]


@dataclass(frozen=True)
class Objective:
    """One declarative promise about service behaviour.

    ``kind`` selects the evaluation rule:

    * ``latency`` — at least ``target`` of requests in the window finish
      within ``threshold_seconds`` (pick a histogram bucket edge);
    * ``availability`` — at most ``1 - target`` of requests in the window
      answer a 5xx status;
    * ``staleness`` — every served artifact was built or updated within
      ``threshold_seconds`` (instant, not windowed; ``target`` unused).
    """

    name: str
    kind: str  # "latency" | "availability" | "staleness"
    description: str
    target: float = 0.99
    window_seconds: float = 300.0
    threshold_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability", "staleness"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.kind in ("latency", "staleness") and self.threshold_seconds is None:
            raise ValueError(f"{self.kind} objective {self.name!r} needs threshold_seconds")
        if not 0.0 < self.target < 1.0 and self.kind != "staleness":
            raise ValueError(f"target must be in (0, 1), got {self.target}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "target": self.target,
            "window_seconds": self.window_seconds,
            "threshold_seconds": self.threshold_seconds,
        }


#: The stock promise set for a tip-serving deployment.  Latency threshold
#: sits on a LATENCY_BUCKETS_SECONDS edge (exact bucket arithmetic); the
#: staleness bound is generous because offline-built artifacts legitimately
#: go a day between refreshes.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective(
        name="request-latency",
        kind="latency",
        description="99% of requests answer within 250 ms",
        target=0.99,
        threshold_seconds=0.25,
    ),
    Objective(
        name="availability",
        kind="availability",
        description="99.9% of requests answer without a 5xx",
        target=0.999,
    ),
    Objective(
        name="artifact-staleness",
        kind="staleness",
        description="every artifact refreshed within 24 h",
        target=0.999,
        threshold_seconds=86_400.0,
    ),
)

def breaker_open_objective(threshold_seconds: float = 60.0) -> Objective:
    """The resilience layer's circuit-breaker objective.

    Shaped as a ``staleness`` objective whose signal is the longest time
    any circuit breaker has currently been open (the service wires
    ``CircuitBreakerRegistry.oldest_open_seconds`` in as the per-objective
    staleness source): burn is instant while a dependency stays
    short-circuited past ``threshold_seconds``, and clears the moment the
    breaker closes.
    """
    return Objective(
        name="breaker-open",
        kind="staleness",
        description=(
            "no circuit breaker stays open longer than "
            f"{threshold_seconds:g} s"),
        target=0.999,
        threshold_seconds=float(threshold_seconds),
    )


#: Snapshots kept per windowed objective; at one evaluation per scrape
#: (typically >= 10 s apart) this covers windows far longer than default.
_MAX_SNAPSHOTS = 512


class SloMonitor:
    """Evaluate objectives against cumulative-counter sources.

    The sources are plain callables so the monitor is testable without a
    service:

    * ``latency_source(threshold_seconds)`` -> ``(good, total)`` requests
      at or under the threshold since process start;
    * ``availability_source()`` -> ``(errors, total)`` requests since
      process start (errors = 5xx);
    * ``staleness_source()`` -> worst current artifact staleness in
      seconds (``None`` when unknown).
    """

    def __init__(
        self,
        *,
        latency_source: Callable[[float], Tuple[int, int]],
        availability_source: Callable[[], Tuple[int, int]],
        staleness_source: Callable[[], Optional[float]],
        objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES,
    ) -> None:
        self.objectives = tuple(objectives)
        self._latency_source = latency_source
        self._availability_source = availability_source
        self._staleness_source = staleness_source
        # Per-objective staleness overrides (see add_objective): lets a
        # later subsystem (e.g. replication) contribute its own staleness
        # signal without re-pointing the shared default source.
        self._staleness_overrides: Dict[str, Callable[[], Optional[float]]] = {}
        self._lock = threading.Lock()
        # name -> deque[(monotonic_time, bad_cumulative, total_cumulative)]
        self._snapshots: Dict[str, Deque[Tuple[float, int, int]]] = {
            objective.name: deque(maxlen=_MAX_SNAPSHOTS)
            for objective in self.objectives
        }
        self._breached: Dict[str, bool] = {o.name: False for o in self.objectives}
        self.last_payload: Optional[Dict[str, Any]] = None
        self._log = get_logger("repro.obs.slo")

    # ------------------------------------------------------------------
    def _cumulative(self, objective: Objective) -> Tuple[int, int]:
        """Current (bad, total) cumulative counts for a windowed objective."""
        if objective.kind == "latency":
            good, total = self._latency_source(float(objective.threshold_seconds))
            return int(total) - int(good), int(total)
        errors, total = self._availability_source()
        return int(errors), int(total)

    def _evaluate_windowed(self, objective: Objective, now: float) -> Dict[str, Any]:
        bad, total = self._cumulative(objective)
        window = self._snapshots[objective.name]
        window.append((now, bad, total))
        if len(window) == 1:
            # First ever evaluation: no baseline yet, so the best window
            # estimate is everything observed since process start.
            d_bad, d_total = bad, total
        else:
            # Baseline = the newest snapshot at least a full window old
            # (delta then covers >= one window), or the oldest snapshot
            # available when the process is younger than the window.
            baseline = window[0]
            for entry in window:
                if now - entry[0] >= objective.window_seconds:
                    baseline = entry
                else:
                    break
            d_bad = bad - baseline[1]
            d_total = total - baseline[2]
        budget = 1.0 - objective.target
        if d_total <= 0:
            return {"state": "no_data", "burn_rate": 0.0, "compliance": None,
                    "window_requests": 0, "window_errors": 0}
        error_rate = d_bad / d_total
        burn = error_rate / budget if budget > 0 else (0.0 if d_bad == 0 else float("inf"))
        return {
            "state": "breached" if burn > 1.0 else "ok",
            "burn_rate": round(burn, 4),
            "compliance": round(1.0 - error_rate, 6),
            "window_requests": int(d_total),
            "window_errors": int(d_bad),
        }

    def add_objective(
        self,
        objective: Objective,
        *,
        staleness_source: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        """Register one more objective after construction.

        Used by subsystems that attach to a running service (the
        replication coordinator adds its follower-staleness promise this
        way).  A ``staleness_source`` override scopes the staleness signal
        to this objective; windowed kinds keep using the shared sources.
        """
        with self._lock:
            if any(existing.name == objective.name for existing in self.objectives):
                raise ValueError(f"objective {objective.name!r} already registered")
            self.objectives = self.objectives + (objective,)
            self._snapshots[objective.name] = deque(maxlen=_MAX_SNAPSHOTS)
            self._breached[objective.name] = False
            if staleness_source is not None:
                self._staleness_overrides[objective.name] = staleness_source

    def _evaluate_staleness(self, objective: Objective) -> Dict[str, Any]:
        source = self._staleness_overrides.get(objective.name, self._staleness_source)
        staleness = source()
        if staleness is None:
            return {"state": "no_data", "burn_rate": 0.0, "compliance": None,
                    "staleness_seconds": None}
        bound = float(objective.threshold_seconds)
        burn = float(staleness) / bound if bound > 0 else float("inf")
        return {
            "state": "breached" if burn > 1.0 else "ok",
            "burn_rate": round(burn, 4),
            "compliance": None,
            "staleness_seconds": round(float(staleness), 3),
        }

    # ------------------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Evaluate every objective; returns (and stores) the /slo payload.

        Thread-safe; transitions are logged here so evaluation triggered
        by any surface (scrape, /slo poll, /healthz) escalates exactly
        once per state change.
        """
        with self._lock:
            now = time.monotonic() if now is None else float(now)
            results: List[Dict[str, Any]] = []
            degraded = False
            for objective in self.objectives:
                if objective.kind == "staleness":
                    verdict = self._evaluate_staleness(objective)
                else:
                    verdict = self._evaluate_windowed(objective, now)
                breached = verdict["state"] == "breached"
                was_breached = self._breached[objective.name]
                if breached and not was_breached:
                    self._log.warning(
                        "SLO breached: %s (%s) burn_rate=%.2f",
                        objective.name, objective.description, verdict["burn_rate"],
                    )
                elif was_breached and not breached:
                    self._log.info(
                        "SLO recovered: %s burn_rate=%.2f",
                        objective.name, verdict["burn_rate"],
                    )
                self._breached[objective.name] = breached
                degraded = degraded or breached
                entry = objective.to_dict()
                entry.update(verdict)
                results.append(entry)
            payload = {
                "status": "degraded" if degraded else "ok",
                "objectives": results,
            }
            self.last_payload = payload
            return payload

    def degraded(self) -> bool:
        """Whether any objective was breached at the last evaluation."""
        with self._lock:
            return any(self._breached.values())

    def burn_rates(self) -> Dict[str, Tuple[float, bool]]:
        """``{objective: (burn_rate, ok)}`` from the last evaluation.

        The scrape callback uses this to refresh the ``repro_slo_*``
        gauges without re-evaluating (evaluation itself appends snapshots;
        doubling it up per scrape would halve the window resolution).
        """
        with self._lock:
            payload = self.last_payload
        if payload is None:
            return {o.name: (0.0, True) for o in self.objectives}
        return {
            entry["name"]: (float(entry["burn_rate"]), entry["state"] != "breached")
            for entry in payload["objectives"]
        }
