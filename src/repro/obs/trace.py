"""Zero-dependency tracing core: nested spans with monotonic timing.

Two span flavours keep the disabled path essentially free:

``tracer.span(name)``
    Fine-grained instrumentation (per peel iteration, per subset).  When
    the tracer is not recording this returns a shared no-op span -- no
    allocation, no clock reads -- so hot loops can be annotated without
    a benchmark-visible cost.

``tracer.timed(name)``
    Phase-level instrumentation whose duration *feeds a counter*
    (``PeelingCounters.elapsed_seconds`` is derived from these spans).
    It always measures real time: a full ``Span`` when recording, a
    two-slot timer otherwise.  This is what keeps reported elapsed
    times from drifting away from the trace.

Cross-process merging rides the engine's existing pickle channel: FD
workers run a private recording tracer, export their spans as plain
dicts (anchored to the shared wall clock), and the parent re-bases them
under its ``fd`` span with :meth:`Tracer.add_spans`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "use_tracer",
]

# Process-wide span id source.  ``itertools.count`` advances atomically
# under the GIL, and ids only need to be unique within one process: the
# parent re-maps imported worker ids in ``add_spans``.
_IDS = itertools.count(1)


class _NullSpan:
    """Shared do-nothing span returned by ``span()`` on a non-recording tracer."""

    __slots__ = ()

    recording = False
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    name = ""
    attrs: Dict[str, Any] = {}
    t0 = 0.0
    t1 = 0.0
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def elapsed(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class _TimedSpan:
    """Minimal always-timing span used by ``timed()`` when not recording."""

    __slots__ = ("t0", "t1")

    recording = False
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    name = ""
    attrs: Dict[str, Any] = {}

    def __init__(self) -> None:
        self.t0 = 0.0
        self.t1 = 0.0

    def __enter__(self) -> "_TimedSpan":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.t1 = time.perf_counter()
        return False

    def set(self, **attrs: Any) -> "_TimedSpan":
        return self

    @property
    def duration(self) -> float:
        end = self.t1 if self.t1 else time.perf_counter()
        return max(0.0, end - self.t0)

    def elapsed(self) -> float:
        return time.perf_counter() - self.t0


class Span:
    """A recorded phase: name, monotonic [t0, t1) window, attributes.

    Entering the context pushes the span onto the owning tracer's
    per-thread stack (establishing parent attribution); exiting stamps
    the end time and hands the span to the tracer's finished list.
    """

    __slots__ = ("name", "attrs", "t0", "t1", "span_id", "parent_id", "tid", "pid", "_tracer")

    recording = True

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.span_id = next(_IDS)
        self.parent_id: Optional[int] = None
        self.tid = threading.get_ident()
        self.pid = os.getpid()
        self.t0 = 0.0
        self.t1 = 0.0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.t1 = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unbalanced exit order
            stack.remove(self)
        self._tracer._finish(self)
        return False

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        end = self.t1 if self.t1 else time.perf_counter()
        return max(0.0, end - self.t0)

    def elapsed(self) -> float:
        """Seconds since the span opened; valid mid-span (t1 not yet set)."""
        return time.perf_counter() - self.t0

    def to_dict(self, tracer: "Tracer") -> Dict[str, Any]:
        start = self.t0 - tracer._t0
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": start,
            "dur": self.duration,
            "tid": self.tid,
            "pid": self.pid,
            "attrs": dict(self.attrs),
            # Wall-clock anchor so spans from another process (whose
            # perf_counter epoch is unrelated) can be re-based.
            "start_unix": tracer._wall0 + start,
        }


SpanLike = Union[Span, _TimedSpan, _NullSpan]


class Tracer:
    """Thread-safe span collector with per-thread parent stacks."""

    def __init__(self, recording: bool = True):
        self.recording = bool(recording)
        self._t0 = time.perf_counter()
        self._wall0 = time.time()
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._imported: List[Dict[str, Any]] = []
        self._local = threading.local()

    # -- internal ------------------------------------------------------

    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: List[Span] = []
            self._local.stack = stack
            return stack

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- span creation -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> SpanLike:
        """Fine-grained span; free (shared no-op) when not recording."""
        if not self.recording:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def timed(self, name: str, **attrs: Any) -> SpanLike:
        """Phase span that always measures wall time.

        Use this wherever the duration feeds a counter (for example
        ``PeelingCounters.elapsed_seconds``): callers may rely on
        ``.duration``/``.elapsed()`` being real even under the default
        no-op tracer.
        """
        if not self.recording:
            return _TimedSpan()
        return Span(self, name, attrs)

    # -- cross-process merge -------------------------------------------

    def add_spans(
        self,
        spans: Iterable[Dict[str, Any]],
        parent: Optional[Union[Span, int]] = None,
    ) -> None:
        """Merge exported span dicts (from another tracer/process).

        Imported spans are re-based onto this tracer's timeline via
        their ``start_unix`` wall-clock anchor, get fresh ids from this
        process's id source, and orphan roots are attached to
        ``parent``.
        """
        if not self.recording:
            return
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        incoming = [dict(span) for span in spans]
        remap = {span["id"]: next(_IDS) for span in incoming}
        for span in incoming:
            span["id"] = remap[span["id"]]
            span["parent"] = remap.get(span.get("parent"), parent_id)
            span["start"] = max(0.0, float(span["start_unix"]) - self._wall0)
        if incoming:
            with self._lock:
                self._imported.extend(incoming)

    # -- export --------------------------------------------------------

    def export(self) -> List[Dict[str, Any]]:
        """All finished spans as plain dicts (parent-linked, sorted by start)."""
        with self._lock:
            finished = list(self._finished)
            imported = [dict(span) for span in self._imported]
        out = [span.to_dict(self) for span in finished] + imported
        out.sort(key=lambda span: span["start"])
        return out

    def chrome_trace(self) -> Dict[str, Any]:
        """Span tree in Chrome ``chrome://tracing`` JSON object format."""
        events = []
        for span in self.export():
            events.append(
                {
                    "name": span["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": span["start"] * 1e6,
                    "dur": span["dur"] * 1e6,
                    "pid": span["pid"],
                    "tid": span["tid"],
                    "args": span["attrs"],
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._imported.clear()


NOOP_TRACER = Tracer(recording=False)

_ACTIVE: Tracer = NOOP_TRACER


def current_tracer() -> Tracer:
    """The tracer instrumentation sites should record into (no-op by default)."""
    return _ACTIVE


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the active tracer for the dynamic extent.

    The active tracer is process-global (spans from worker threads land
    in the same trace); nesting restores the previous tracer on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
