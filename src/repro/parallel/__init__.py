"""Parallel execution substrate: contexts, atomics, primitives, cost model."""

from .atomics import AtomicArray, AtomicCounter
from .costmodel import DEFAULT_BARRIER_COST, ParallelCostModel, RegionCost, SpeedupPoint
from .primitives import (
    balanced_chunks,
    chunk_ranges,
    exclusive_prefix_sum,
    histogram_by_key,
    inclusive_prefix_sum,
    parallel_filter,
)
from .threadpool import BACKEND_NAMES, ExecutionContext, ParallelRegionRecord

__all__ = [
    "BACKEND_NAMES",
    "AtomicArray",
    "AtomicCounter",
    "DEFAULT_BARRIER_COST",
    "ParallelCostModel",
    "RegionCost",
    "SpeedupPoint",
    "balanced_chunks",
    "chunk_ranges",
    "exclusive_prefix_sum",
    "histogram_by_key",
    "inclusive_prefix_sum",
    "parallel_filter",
    "ExecutionContext",
    "ParallelRegionRecord",
]
