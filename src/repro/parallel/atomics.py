"""Thread-safe counters mirroring the OpenMP atomics the paper relies on.

RECEIPT's correctness argument (Lemma 2) requires that concurrent support
decrements to the same vertex do not conflict.  The C++ implementation uses
hardware atomics; in Python we provide the same semantics with lightweight
lock-protected wrappers.  The pure-Python algorithms also have sequential
fast paths that bypass these wrappers entirely (the paper notes its
sequential RECEIPT variant with no atomics performs the same work).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["AtomicCounter", "AtomicArray"]


class AtomicCounter:
    """A thread-safe integer counter with add / increment operations."""

    def __init__(self, initial: int = 0):
        self._value = int(initial)
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        """Current value (reads are atomic in CPython, lock kept for clarity)."""
        with self._lock:
            return self._value

    def add(self, amount: int) -> int:
        """Atomically add ``amount`` and return the new value."""
        with self._lock:
            self._value += int(amount)
            return self._value

    def increment(self) -> int:
        """Atomically add one and return the new value."""
        return self.add(1)

    def fetch_add(self, amount: int) -> int:
        """Atomically add ``amount`` and return the *previous* value."""
        with self._lock:
            previous = self._value
            self._value += int(amount)
            return previous

    def reset(self, value: int = 0) -> None:
        """Set the counter back to ``value``."""
        with self._lock:
            self._value = int(value)


class AtomicArray:
    """A numpy integer array with atomic element updates.

    A striped-lock design keeps contention low without allocating one lock
    per element: element ``i`` is guarded by lock ``i % n_stripes``.
    """

    def __init__(self, size: int, *, dtype=np.int64, n_stripes: int = 64):
        self._data = np.zeros(int(size), dtype=dtype)
        self._locks = [threading.Lock() for _ in range(max(1, int(n_stripes)))]

    def __len__(self) -> int:
        return int(self._data.shape[0])

    def _lock_for(self, index: int) -> threading.Lock:
        return self._locks[index % len(self._locks)]

    def get(self, index: int) -> int:
        return int(self._data[index])

    def set(self, index: int, value: int) -> None:
        with self._lock_for(index):
            self._data[index] = value

    def add(self, index: int, amount: int) -> int:
        """Atomically add ``amount`` to one element and return the new value."""
        with self._lock_for(index):
            self._data[index] += amount
            return int(self._data[index])

    def subtract_clamped(self, index: int, amount: int, floor: int) -> int:
        """Atomically subtract, clamping the result at ``floor``.

        This is the exact update BUP / RECEIPT apply to vertex supports:
        ``support = max(theta, support - shared_butterflies)``.
        """
        with self._lock_for(index):
            new_value = max(int(floor), int(self._data[index]) - int(amount))
            self._data[index] = new_value
            return new_value

    def snapshot(self) -> np.ndarray:
        """A copy of the underlying array."""
        return self._data.copy()

    @property
    def raw(self) -> np.ndarray:
        """The underlying array (not thread-safe; for single-threaded phases)."""
        return self._data
