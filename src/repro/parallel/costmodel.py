"""Analytical parallel cost model for multi-threaded speedup projection.

The paper evaluates RECEIPT on a 36-core machine; CPython's GIL prevents the
pure-Python kernels from exhibiting real wall-clock speedup.  To reproduce
the *shape* of the scalability study (Figs. 10 and 11) we replay the
instrumented execution through a simple and transparent cost model:

* Every parallel region (one peeling iteration of RECEIPT CD, one counting
  pass, the whole FD task queue, ...) carries the list of per-task work
  units actually measured during the run (traversed wedges, peeled
  vertices).
* For a thread count ``T`` the region's makespan is the maximum per-thread
  load under the region's scheduling policy (static chunking, dynamic
  greedy, or LPT), plus a per-round barrier cost.
* Optionally, a NUMA penalty inflates work once the thread count exceeds a
  single socket, matching the paper's observation that the speedup slope
  drops between 18 and 36 threads.

The projected speedup for ``T`` threads is ``time(1) / time(T)``.  Because
the inputs are measured work distributions rather than assumptions, load
imbalance across FD subsets and the low per-round work of small datasets —
the two effects the paper highlights — show up naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RegionCost", "ParallelCostModel", "SpeedupPoint"]

#: Default cost of one barrier, expressed in the same unit as task work
#: (wedge traversals).  A barrier on a multicore is on the order of a few
#: microseconds while one wedge traversal in optimised C++ is a few
#: nanoseconds, hence the default ratio of ~1000 work units per barrier.
DEFAULT_BARRIER_COST = 1000.0


@dataclass
class RegionCost:
    """One parallel region: a bag of tasks executed between two barriers."""

    name: str
    task_work: np.ndarray
    scheduling: str = "dynamic"
    sequential_work: float = 0.0

    def __post_init__(self) -> None:
        self.task_work = np.asarray(self.task_work, dtype=np.float64)
        if self.scheduling not in {"static", "dynamic", "lpt"}:
            raise ValueError(f"unknown scheduling policy {self.scheduling!r}")

    @property
    def total_work(self) -> float:
        return float(self.task_work.sum()) + self.sequential_work

    def makespan(self, n_threads: int) -> float:
        """Maximum per-thread load for the given thread count."""
        if n_threads <= 1 or self.task_work.size == 0:
            return self.total_work
        work = self.task_work
        if self.scheduling == "static":
            chunks = np.array_split(work, n_threads)
            span = max(float(chunk.sum()) for chunk in chunks)
        else:
            if self.scheduling == "lpt":
                work = np.sort(work)[::-1]
            loads = np.zeros(n_threads, dtype=np.float64)
            for task in work:
                lightest = int(np.argmin(loads))
                loads[lightest] += task
            span = float(loads.max())
        return span + self.sequential_work


@dataclass
class SpeedupPoint:
    """Projected execution cost and speedup at one thread count."""

    n_threads: int
    simulated_time: float
    speedup: float


class ParallelCostModel:
    """Accumulates measured parallel regions and projects multi-thread times.

    Parameters
    ----------
    barrier_cost:
        Cost charged per region per barrier (in work units).  Scaled by
        ``log2(T) + 1`` because tree barriers get slightly more expensive
        with more participants.
    numa_threshold, numa_penalty:
        When ``n_threads > numa_threshold`` every region's makespan is
        multiplied by ``1 + numa_penalty`` to model cross-socket memory
        traffic.  Defaults mirror the paper's dual-socket 18+18 machine.
    """

    def __init__(
        self,
        *,
        barrier_cost: float = DEFAULT_BARRIER_COST,
        numa_threshold: int = 18,
        numa_penalty: float = 0.25,
    ):
        self.barrier_cost = float(barrier_cost)
        self.numa_threshold = int(numa_threshold)
        self.numa_penalty = float(numa_penalty)
        self.regions: list[RegionCost] = []

    # ------------------------------------------------------------------
    def add_region(
        self,
        name: str,
        task_work: Sequence[float] | np.ndarray,
        *,
        scheduling: str = "dynamic",
        sequential_work: float = 0.0,
    ) -> RegionCost:
        """Register a parallel region with measured per-task work."""
        region = RegionCost(
            name=name,
            task_work=np.asarray(task_work, dtype=np.float64),
            scheduling=scheduling,
            sequential_work=float(sequential_work),
        )
        self.regions.append(region)
        return region

    def add_sequential(self, name: str, work: float) -> RegionCost:
        """Register purely sequential work (not sped up by threads)."""
        return self.add_region(name, [], scheduling="static", sequential_work=work)

    def extend(self, other: "ParallelCostModel") -> None:
        """Append all regions of another model (phase composition)."""
        self.regions.extend(other.regions)

    # ------------------------------------------------------------------
    @property
    def total_work(self) -> float:
        """Total work across all regions (the T=1 execution cost without barriers)."""
        return float(sum(region.total_work for region in self.regions))

    def simulated_time(self, n_threads: int) -> float:
        """Projected execution cost for ``n_threads`` threads."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if not self.regions:
            return 0.0
        barrier = self.barrier_cost * (1.0 + np.log2(n_threads)) if n_threads > 1 else 0.0
        numa_factor = 1.0 + self.numa_penalty if n_threads > self.numa_threshold else 1.0
        total = 0.0
        for region in self.regions:
            total += region.makespan(n_threads) * numa_factor + barrier
        return float(total)

    def speedup(self, n_threads: int) -> float:
        """Projected self-relative speedup over single-threaded execution."""
        single = self.simulated_time(1)
        if single == 0.0:
            return 1.0
        return float(single / self.simulated_time(n_threads))

    def speedup_curve(self, thread_counts: Iterable[int]) -> list[SpeedupPoint]:
        """Projected speedups for each thread count (Figs. 10 / 11 series)."""
        single = self.simulated_time(1)
        points = []
        for n_threads in thread_counts:
            time_t = self.simulated_time(n_threads)
            speedup = single / time_t if time_t > 0 else 1.0
            points.append(SpeedupPoint(int(n_threads), float(time_t), float(speedup)))
        return points

    # ------------------------------------------------------------------
    @classmethod
    def from_region_records(
        cls,
        records: Iterable,
        *,
        barrier_cost: float = DEFAULT_BARRIER_COST,
        numa_threshold: int = 18,
        numa_penalty: float = 0.25,
    ) -> "ParallelCostModel":
        """Build a model from :class:`~repro.parallel.threadpool.ParallelRegionRecord` objects.

        Records without per-task work use their ``total_work`` split evenly
        over their task count, which is the right default for uniform
        vertex-parallel loops.
        """
        model = cls(barrier_cost=barrier_cost, numa_threshold=numa_threshold,
                    numa_penalty=numa_penalty)
        for record in records:
            if record.task_work:
                task_work = record.task_work
            elif record.n_tasks > 0:
                task_work = [record.total_work / record.n_tasks] * record.n_tasks
            else:
                task_work = []
            model.add_region(record.name, task_work, scheduling=record.scheduling)
        return model
