"""Data-parallel primitives used by the counting and peeling kernels.

The C++ RECEIPT implementation builds on parallel prefix scans, filters and
scatters.  Here the same primitives are exposed as thin numpy wrappers so
that the algorithm code reads like the paper's pseudocode while remaining
fast in CPython.  Each primitive also reports how many "parallel work items"
it represents, which feeds the analytical cost model.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "exclusive_prefix_sum",
    "inclusive_prefix_sum",
    "parallel_filter",
    "histogram_by_key",
    "chunk_ranges",
    "balanced_chunks",
]


def exclusive_prefix_sum(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (``out[i] = sum(values[:i])``)."""
    values = np.asarray(values)
    out = np.zeros(values.shape[0] + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out[:-1]


def inclusive_prefix_sum(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum (``out[i] = sum(values[:i + 1])``)."""
    return np.cumsum(np.asarray(values, dtype=np.int64))


def parallel_filter(values: np.ndarray, predicate: np.ndarray) -> np.ndarray:
    """Keep the elements whose predicate is true (order preserving)."""
    values = np.asarray(values)
    predicate = np.asarray(predicate, dtype=bool)
    return values[predicate]


def histogram_by_key(keys: np.ndarray, weights: np.ndarray | None = None,
                     *, minlength: int = 0) -> np.ndarray:
    """Aggregate ``weights`` (default 1) per integer key.

    This is the "wedge aggregation" primitive: given the multiset of wedge
    endpoints touched while peeling a vertex, it produces the per-endpoint
    wedge counts in one vectorised pass.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return np.zeros(minlength, dtype=np.int64)
    if weights is None:
        return np.bincount(keys, minlength=minlength).astype(np.int64)
    return np.bincount(keys, weights=np.asarray(weights), minlength=minlength).astype(np.int64)


def chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous ranges."""
    n_chunks = max(1, min(int(n_chunks), max(int(n_items), 1)))
    boundaries = np.linspace(0, n_items, n_chunks + 1, dtype=np.int64)
    return [
        (int(boundaries[i]), int(boundaries[i + 1]))
        for i in range(n_chunks)
        if boundaries[i + 1] > boundaries[i]
    ]


def balanced_chunks(work_per_item: Sequence[int] | np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split item indices into contiguous chunks of roughly equal total work.

    Used to partition start vertices across threads during counting so that
    high-degree vertices do not all land in one chunk.
    """
    work = np.asarray(work_per_item, dtype=np.int64)
    n_items = work.shape[0]
    if n_items == 0:
        return []
    n_chunks = max(1, min(int(n_chunks), n_items))
    cumulative = np.cumsum(work)
    total = int(cumulative[-1])
    if total == 0:
        ranges = chunk_ranges(n_items, n_chunks)
        return [np.arange(start, stop, dtype=np.int64) for start, stop in ranges]
    targets = np.linspace(0, total, n_chunks + 1)
    boundaries = np.searchsorted(cumulative, targets[1:-1], side="left") + 1
    boundaries = np.concatenate([[0], boundaries, [n_items]]).astype(np.int64)
    boundaries = np.unique(boundaries)
    return [
        np.arange(boundaries[i], boundaries[i + 1], dtype=np.int64)
        for i in range(boundaries.shape[0] - 1)
        if boundaries[i + 1] > boundaries[i]
    ]
