"""Thread-pool execution context with synchronization accounting.

The paper's algorithms are expressed as a sequence of *parallel-for* regions
separated by barriers; the number of such regions (synchronization rounds)
is one of the headline metrics in Table 3.  This module provides a small
execution context that

* runs parallel-for bodies either serially or on a ``ThreadPoolExecutor``
  (CPython's GIL means real threads rarely speed up the pure-Python kernels,
  so serial execution is the default — the work performed and the recorded
  statistics are identical either way),
* counts every parallel region and barrier so the analytical cost model can
  replay the execution for an arbitrary thread count, and
* delegates RECEIPT FD's task fan-out to a pluggable execution backend
  (``serial`` / ``thread`` / ``process``, see :mod:`repro.engine`) — the
  ``process`` backend is the one that escapes the GIL by dispatching task
  descriptors to a worker pool attached to a shared-memory graph store.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from .primitives import balanced_chunks, chunk_ranges

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine sits above)
    from ..engine.backends import EngineBackend
    from ..engine.tasks import FdJob, FdTask, FdTaskResult

__all__ = ["BACKEND_NAMES", "ExecutionContext", "ParallelRegionRecord"]

#: Valid execution-backend names, mirrored from :mod:`repro.engine.backends`
#: (kept as a literal so constructing a context does not import the engine).
BACKEND_NAMES = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class ParallelRegionRecord:
    """Book-keeping for one executed parallel-for region."""

    name: str
    n_tasks: int
    total_work: float
    task_work: list[float] = field(default_factory=list)
    scheduling: str = "dynamic"


class ExecutionContext:
    """Execution policy + instrumentation shared by all parallel kernels.

    Parameters
    ----------
    n_threads:
        Logical thread count.  This controls how work is chunked and is the
        thread count reported to the analytical cost model; it does not by
        itself enable OS threads.
    use_real_threads:
        When ``True`` parallel regions run on a ``ThreadPoolExecutor`` with
        ``n_threads`` workers.  Default ``False``: with the GIL, the pure
        Python kernels are fastest single-threaded, and results are
        identical.
    backend:
        Execution backend for the FD task fan-out (:meth:`run_fd_tasks`):
        ``"serial"``, ``"thread"`` or ``"process"``.  Defaults to
        ``"thread"`` when ``use_real_threads`` is set and ``"serial"``
        otherwise, so existing callers keep their semantics.  The
        ``"process"`` backend places the graph in shared memory and fans
        descriptors out to ``n_threads`` worker processes — results are
        bit-identical to serial execution.
    """

    def __init__(self, n_threads: int = 1, *, use_real_threads: bool = False,
                 backend: str | None = None):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if backend is None:
            backend = "thread" if use_real_threads else "serial"
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown execution backend {backend!r}; expected one of {BACKEND_NAMES}"
            )
        self.n_threads = int(n_threads)
        self.backend = backend
        self.use_real_threads = bool(use_real_threads) or backend == "thread"
        self._executor: ThreadPoolExecutor | None = None
        self._engine: "EngineBackend | None" = None
        self._lock = threading.Lock()
        self.synchronization_rounds = 0
        self.parallel_regions: list[ParallelRegionRecord] = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the underlying executor and engine backend, if created."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._engine is not None:
            self._engine.shutdown()
            self._engine = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._executor

    @property
    def engine(self) -> "EngineBackend":
        """The lazily created execution backend behind :meth:`run_fd_tasks`.

        Exposed so callers can pre-pay startup costs (``context.engine.
        warmup()`` spawns the process pool ahead of a timed region).
        """
        if self._engine is None:
            # Imported lazily: the engine layer sits above `parallel` in the
            # module hierarchy (its tasks import the peeling kernels).
            from ..engine.backends import create_backend

            if self.backend == "thread" and self.n_threads > 1:
                # Share the context's own pool instead of running a second
                # ThreadPoolExecutor with the same worker count.
                self._engine = create_backend(
                    "thread", n_workers=self.n_threads,
                    executor=self._ensure_executor(),
                )
            else:
                self._engine = create_backend(self.backend, n_workers=self.n_threads)
        return self._engine

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def record_barrier(self, name: str, *, n_tasks: int = 0, total_work: float = 0.0,
                       task_work: Sequence[float] | None = None,
                       scheduling: str = "dynamic") -> None:
        """Record one synchronization round without running anything.

        Peeling iterations call this directly: the "tasks" of the round are
        the vertices peeled and the "work" is the wedges they traverse.
        """
        with self._lock:
            self.synchronization_rounds += 1
            self.parallel_regions.append(
                ParallelRegionRecord(
                    name=name,
                    n_tasks=int(n_tasks),
                    total_work=float(total_work),
                    task_work=list(task_work) if task_work is not None else [],
                    scheduling=scheduling,
                )
            )

    # ------------------------------------------------------------------
    # Parallel-for
    # ------------------------------------------------------------------
    def map_chunks(
        self,
        items: Sequence[T],
        chunk_body: Callable[[Sequence[T]], R],
        *,
        name: str = "parallel_for",
        work_per_item: Sequence[float] | None = None,
        record: bool = True,
    ) -> list[R]:
        """Run ``chunk_body`` over chunks of ``items`` and gather the results.

        The chunking is work-balanced when ``work_per_item`` is supplied.
        One synchronization round is recorded (the implicit barrier at the
        end of the parallel-for) unless ``record=False`` — used when the
        caller already accounts for this work as part of an enclosing
        region, so the cost model does not double-count it.
        """
        items = list(items)
        if record:
            total_work = (
                float(sum(work_per_item)) if work_per_item is not None else float(len(items))
            )
            self.record_barrier(
                name,
                n_tasks=len(items),
                total_work=total_work,
                task_work=list(work_per_item) if work_per_item is not None else None,
            )
        if not items:
            return []

        if work_per_item is not None and len(work_per_item) == len(items):
            chunks = [
                [items[i] for i in chunk_indices]
                for chunk_indices in balanced_chunks(work_per_item, self.n_threads)
            ]
        else:
            chunks = [
                items[start:stop] for start, stop in chunk_ranges(len(items), self.n_threads)
            ]

        if not self.use_real_threads or self.n_threads == 1 or len(chunks) == 1:
            return [chunk_body(chunk) for chunk in chunks]
        executor = self._ensure_executor()
        return list(executor.map(chunk_body, chunks))

    def run_tasks(self, tasks: Iterable[Callable[[], R]], *, name: str = "task_queue",
                  work_per_task: Sequence[float] | None = None) -> list[R]:
        """Execute independent callables (a dynamic task queue).

        Tasks are executed in the given order when running serially, or
        submitted to the pool when real threads are enabled.  No intermediate
        barriers are recorded — the queue synchronises only once at the end.
        ``work_per_task`` attributes each task's true work estimate to the
        recorded region (like ``map_chunks``'s ``work_per_item``), so the
        cost model accounts an LPT queue by wedge work rather than by task
        count.
        """
        task_list = list(tasks)
        work = None
        if work_per_task is not None:
            if len(work_per_task) != len(task_list):
                raise ValueError(
                    f"work_per_task has {len(work_per_task)} entries for "
                    f"{len(task_list)} tasks"
                )
            work = [float(value) for value in work_per_task]
        self.record_barrier(
            name,
            n_tasks=len(task_list),
            total_work=float(sum(work)) if work is not None else float(len(task_list)),
            task_work=work,
        )
        if not task_list:
            return []
        if not self.use_real_threads or self.n_threads == 1:
            return [task() for task in task_list]
        executor = self._ensure_executor()
        futures = [executor.submit(task) for task in task_list]
        return [future.result() for future in futures]

    def run_fd_tasks(self, job: "FdJob", tasks: "Iterable[FdTask]", *,
                     name: str = "fd_task_queue",
                     work_per_task: Sequence[float] | None = None,
                     scheduling: str = "lpt") -> "list[FdTaskResult]":
        """Dispatch FD task descriptors through the configured backend.

        This is RECEIPT FD's task queue (Alg. 4): the descriptors are
        executed in the given (LPT) order by the ``serial`` / ``thread`` /
        ``process`` backend, results come back in the same order, and one
        synchronization round is recorded for the final barrier.  When no
        explicit ``work_per_task`` is given, each descriptor's
        ``estimated_work`` is used.
        """
        task_list = list(tasks)
        if work_per_task is None:
            work = [float(task.estimated_work) for task in task_list]
        elif len(work_per_task) != len(task_list):
            raise ValueError(
                f"work_per_task has {len(work_per_task)} entries for "
                f"{len(task_list)} tasks"
            )
        else:
            work = [float(value) for value in work_per_task]
        self.record_barrier(
            name,
            n_tasks=len(task_list),
            total_work=float(sum(work)),
            task_work=work,
            scheduling=scheduling,
        )
        if not task_list:
            return []
        return self.engine.run_fd_tasks(job, task_list)
