"""Thread-pool execution context with synchronization accounting.

The paper's algorithms are expressed as a sequence of *parallel-for* regions
separated by barriers; the number of such regions (synchronization rounds)
is one of the headline metrics in Table 3.  This module provides a small
execution context that

* runs parallel-for bodies either serially or on a ``ThreadPoolExecutor``
  (CPython's GIL means real threads rarely speed up the pure-Python kernels,
  so serial execution is the default — the work performed and the recorded
  statistics are identical either way), and
* counts every parallel region and barrier so the analytical cost model can
  replay the execution for an arbitrary thread count.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from .primitives import balanced_chunks, chunk_ranges

__all__ = ["ExecutionContext", "ParallelRegionRecord"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class ParallelRegionRecord:
    """Book-keeping for one executed parallel-for region."""

    name: str
    n_tasks: int
    total_work: float
    task_work: list[float] = field(default_factory=list)
    scheduling: str = "dynamic"


class ExecutionContext:
    """Execution policy + instrumentation shared by all parallel kernels.

    Parameters
    ----------
    n_threads:
        Logical thread count.  This controls how work is chunked and is the
        thread count reported to the analytical cost model; it does not by
        itself enable OS threads.
    use_real_threads:
        When ``True`` parallel regions run on a ``ThreadPoolExecutor`` with
        ``n_threads`` workers.  Default ``False``: with the GIL, the pure
        Python kernels are fastest single-threaded, and results are
        identical.
    """

    def __init__(self, n_threads: int = 1, *, use_real_threads: bool = False):
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.n_threads = int(n_threads)
        self.use_real_threads = bool(use_real_threads)
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.synchronization_rounds = 0
        self.parallel_regions: list[ParallelRegionRecord] = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the underlying executor, if one was created."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._executor

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def record_barrier(self, name: str, *, n_tasks: int = 0, total_work: float = 0.0,
                       task_work: Sequence[float] | None = None,
                       scheduling: str = "dynamic") -> None:
        """Record one synchronization round without running anything.

        Peeling iterations call this directly: the "tasks" of the round are
        the vertices peeled and the "work" is the wedges they traverse.
        """
        with self._lock:
            self.synchronization_rounds += 1
            self.parallel_regions.append(
                ParallelRegionRecord(
                    name=name,
                    n_tasks=int(n_tasks),
                    total_work=float(total_work),
                    task_work=list(task_work) if task_work is not None else [],
                    scheduling=scheduling,
                )
            )

    # ------------------------------------------------------------------
    # Parallel-for
    # ------------------------------------------------------------------
    def map_chunks(
        self,
        items: Sequence[T],
        chunk_body: Callable[[Sequence[T]], R],
        *,
        name: str = "parallel_for",
        work_per_item: Sequence[float] | None = None,
        record: bool = True,
    ) -> list[R]:
        """Run ``chunk_body`` over chunks of ``items`` and gather the results.

        The chunking is work-balanced when ``work_per_item`` is supplied.
        One synchronization round is recorded (the implicit barrier at the
        end of the parallel-for) unless ``record=False`` — used when the
        caller already accounts for this work as part of an enclosing
        region, so the cost model does not double-count it.
        """
        items = list(items)
        if record:
            total_work = (
                float(sum(work_per_item)) if work_per_item is not None else float(len(items))
            )
            self.record_barrier(
                name,
                n_tasks=len(items),
                total_work=total_work,
                task_work=list(work_per_item) if work_per_item is not None else None,
            )
        if not items:
            return []

        if work_per_item is not None and len(work_per_item) == len(items):
            chunks = [
                [items[i] for i in chunk_indices]
                for chunk_indices in balanced_chunks(work_per_item, self.n_threads)
            ]
        else:
            chunks = [
                items[start:stop] for start, stop in chunk_ranges(len(items), self.n_threads)
            ]

        if not self.use_real_threads or self.n_threads == 1 or len(chunks) == 1:
            return [chunk_body(chunk) for chunk in chunks]
        executor = self._ensure_executor()
        return list(executor.map(chunk_body, chunks))

    def run_tasks(self, tasks: Iterable[Callable[[], R]], *, name: str = "task_queue") -> list[R]:
        """Execute independent callables (RECEIPT FD's task queue).

        Tasks are executed in the given order when running serially, or
        submitted to the pool when real threads are enabled.  No intermediate
        barriers are recorded — FD threads synchronise only once at the end,
        exactly as in Alg. 4.
        """
        task_list = list(tasks)
        self.record_barrier(name, n_tasks=len(task_list), total_work=float(len(task_list)))
        if not task_list:
            return []
        if not self.use_real_threads or self.n_threads == 1:
            return [task() for task in task_list]
        executor = self._ensure_executor()
        futures = [executor.submit(task) for task in task_list]
        return [future.result() for future in futures]
