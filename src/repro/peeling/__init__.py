"""Peeling substrates: support structures, the update routine and baselines."""

from .base import PeelingCounters, TipDecompositionResult
from .bucketing import BucketQueue
from .bup import bup_decomposition, peel_sequential
from .minheap import LazyMinHeap
from .parbutterfly import parbutterfly_decomposition
from .reference import peel_batch_reference, peel_vertex_reference
from .update import PEEL_KERNELS, SupportUpdate, peel_batch, peel_vertex

__all__ = [
    "PeelingCounters",
    "TipDecompositionResult",
    "BucketQueue",
    "bup_decomposition",
    "peel_sequential",
    "LazyMinHeap",
    "parbutterfly_decomposition",
    "PEEL_KERNELS",
    "SupportUpdate",
    "peel_batch",
    "peel_vertex",
    "peel_batch_reference",
    "peel_vertex_reference",
]
