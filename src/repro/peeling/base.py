"""Shared result and instrumentation types for all decomposition algorithms.

Every tip-decomposition algorithm in this library (sequential BUP, the ParB
baseline, RECEIPT) returns a :class:`TipDecompositionResult` and fills in a
:class:`PeelingCounters` so that the benchmark harness can compare execution
time, wedge traversal and synchronization rounds exactly as Table 3 of the
paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.bipartite import BipartiteGraph, validate_side

__all__ = ["PeelingCounters", "TipDecompositionResult"]


@dataclass
class PeelingCounters:
    """Work counters accumulated while peeling.

    Attributes
    ----------
    wedges_traversed:
        Wedge endpoints touched, the paper's primary work metric (``Ó``).
    counting_wedges:
        Portion of :attr:`wedges_traversed` spent inside butterfly
        (re-)counting kernels (pvBcnt and HUC recounts).
    peeling_wedges:
        Portion spent inside peeling updates.
    support_updates:
        Number of per-vertex support decrements applied.
    synchronization_rounds:
        Parallel peeling rounds (``ρ`` in Table 3).  Sequential BUP counts
        its peel iterations here for reference, but the paper only reports
        the metric for parallel algorithms.
    vertices_peeled:
        Vertices whose tip number has been fixed.
    recount_invocations:
        Number of times HUC chose to re-count instead of peel.
    dgm_compactions:
        Number of Dynamic Graph Maintenance compactions performed.
    elapsed_seconds:
        Wall-clock execution time of the phase / algorithm.
    peak_scratch_bytes:
        High-water mark of the wedge-pipeline scratch arena(s) the phase
        ran on (:class:`~repro.kernels.workspace.WedgeWorkspace`).  Merged
        with ``max`` — peaks do not add up across phases that reuse one
        arena — and bounded by the configured wedge budget.
    """

    wedges_traversed: int = 0
    counting_wedges: int = 0
    peeling_wedges: int = 0
    support_updates: int = 0
    synchronization_rounds: int = 0
    vertices_peeled: int = 0
    recount_invocations: int = 0
    dgm_compactions: int = 0
    elapsed_seconds: float = 0.0
    peak_scratch_bytes: int = 0

    def merge(self, other: "PeelingCounters") -> None:
        """Accumulate another counter set into this one (phase composition)."""
        self.wedges_traversed += other.wedges_traversed
        self.counting_wedges += other.counting_wedges
        self.peeling_wedges += other.peeling_wedges
        self.support_updates += other.support_updates
        self.synchronization_rounds += other.synchronization_rounds
        self.vertices_peeled += other.vertices_peeled
        self.recount_invocations += other.recount_invocations
        self.dgm_compactions += other.dgm_compactions
        self.elapsed_seconds += other.elapsed_seconds
        self.peak_scratch_bytes = max(self.peak_scratch_bytes, other.peak_scratch_bytes)

    def as_dict(self) -> dict:
        return {
            "wedges_traversed": self.wedges_traversed,
            "counting_wedges": self.counting_wedges,
            "peeling_wedges": self.peeling_wedges,
            "support_updates": self.support_updates,
            "synchronization_rounds": self.synchronization_rounds,
            "vertices_peeled": self.vertices_peeled,
            "recount_invocations": self.recount_invocations,
            "dgm_compactions": self.dgm_compactions,
            "elapsed_seconds": self.elapsed_seconds,
            "peak_scratch_bytes": self.peak_scratch_bytes,
        }


@dataclass
class TipDecompositionResult:
    """Tip numbers for one side of a bipartite graph plus run statistics.

    Attributes
    ----------
    tip_numbers:
        ``tip_numbers[u]`` is θ_u for every vertex of the decomposed side.
    side:
        Which side was decomposed (``"U"`` or ``"V"``).
    initial_butterflies:
        Per-vertex butterfly counts used to initialise supports.
    algorithm:
        Human-readable name of the algorithm that produced the result.
    counters:
        Aggregated work counters.
    phase_counters:
        Optional per-phase breakdown (e.g. ``{"pvBcnt": ..., "cd": ...,
        "fd": ...}`` for RECEIPT) used by the Figs. 8 / 9 benchmarks.
    extra:
        Free-form algorithm-specific payload (e.g. RECEIPT's partition
        boundaries).
    """

    tip_numbers: np.ndarray
    side: str
    initial_butterflies: np.ndarray
    algorithm: str
    counters: PeelingCounters = field(default_factory=PeelingCounters)
    phase_counters: dict[str, PeelingCounters] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.side = validate_side(self.side)
        self.tip_numbers = np.asarray(self.tip_numbers, dtype=np.int64)
        self.initial_butterflies = np.asarray(self.initial_butterflies, dtype=np.int64)

    @property
    def n_vertices(self) -> int:
        """Number of vertices on the decomposed side."""
        return int(self.tip_numbers.shape[0])

    @property
    def max_tip_number(self) -> int:
        """The largest tip number (``θ_max`` of Table 2)."""
        return int(self.tip_numbers.max()) if self.tip_numbers.size else 0

    def tip_number(self, vertex: int) -> int:
        """Tip number of a single vertex."""
        return int(self.tip_numbers[vertex])

    def vertices_with_tip_at_least(self, k: int) -> np.ndarray:
        """Vertices belonging to the ``k``-tip (θ_u >= k)."""
        return np.flatnonzero(self.tip_numbers >= k).astype(np.int64)

    def histogram(self) -> dict[int, int]:
        """Number of vertices per distinct tip number."""
        values, counts = np.unique(self.tip_numbers, return_counts=True)
        return {int(value): int(count) for value, count in zip(values, counts)}

    def cumulative_distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted tip numbers and cumulative vertex fractions (Fig. 4 series)."""
        sorted_values = np.sort(self.tip_numbers)
        fractions = np.arange(1, sorted_values.size + 1, dtype=np.float64) / max(sorted_values.size, 1)
        return sorted_values, fractions

    def same_tip_numbers(self, other: "TipDecompositionResult") -> bool:
        """Whether two results assign identical tip numbers."""
        return bool(np.array_equal(self.tip_numbers, other.tip_numbers))

    def summary(self) -> dict:
        """Compact dictionary used by the CLI and the benchmark reports."""
        return {
            "algorithm": self.algorithm,
            "side": self.side,
            "n_vertices": self.n_vertices,
            "max_tip_number": self.max_tip_number,
            "total_butterflies": int(self.initial_butterflies.sum()) // 2,
            **self.counters.as_dict(),
        }


def validate_result_against_definition(
    graph: BipartiteGraph, result: TipDecompositionResult
) -> None:
    """Raise ``AssertionError`` if basic tip-number sanity conditions fail.

    Checks that every tip number is bounded by the vertex's initial butterfly
    count and that vertices with zero butterflies have tip number zero.  The
    full k-tip definition is verified by :mod:`repro.analysis.verification`.
    """
    assert result.tip_numbers.shape[0] == graph.side_size(result.side)
    assert np.all(result.tip_numbers >= 0)
    assert np.all(result.tip_numbers <= result.initial_butterflies)
    zero_support = result.initial_butterflies == 0
    assert np.all(result.tip_numbers[zero_support] == 0)
