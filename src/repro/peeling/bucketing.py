"""Julienne-style bucketing structure.

ParButterfly peels with the bucketing structure of Julienne (Dhulipala,
Blelloch, Shun): vertices are placed into a bounded number of *open*
buckets covering a window of support values starting at the current
minimum, plus one overflow bucket for everything beyond the window.  When
the open buckets are exhausted the overflow bucket is re-bucketed over the
next window.  The paper's ParB baseline uses 128 buckets; that is the
default here.

The structure supports the two operations level-synchronous peeling needs:

* ``next_bucket()`` — return (and consume) all vertices in the lowest
  non-empty bucket, i.e. the set of current-minimum-support vertices when
  the bucket width is 1.
* ``update(vertex, new_support)`` — move a vertex to the bucket of its
  decreased support.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["BucketQueue"]


class BucketQueue:
    """Bucketed priority structure over vertex supports.

    Parameters
    ----------
    supports:
        Initial supports indexed by vertex id.
    vertices:
        Subset of vertex ids to manage (defaults to all).
    n_buckets:
        Number of open buckets per window (128 in ParButterfly).
    bucket_width:
        Support values covered by one bucket.  Width 1 gives exact
        minimum-support extraction (what ParB needs); larger widths give the
        coarse ranges RECEIPT CD peels.
    """

    def __init__(
        self,
        supports: np.ndarray,
        vertices: Iterable[int] | None = None,
        *,
        n_buckets: int = 128,
        bucket_width: int = 1,
    ):
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if bucket_width < 1:
            raise ValueError("bucket_width must be positive")
        supports = np.asarray(supports)
        if vertices is None:
            vertices = range(supports.shape[0])

        self.n_buckets = int(n_buckets)
        self.bucket_width = int(bucket_width)
        self._current: dict[int, int] = {int(v): int(supports[int(v)]) for v in vertices}
        self._window_start = 0
        self._buckets: list[set[int]] = [set() for _ in range(self.n_buckets)]
        self._overflow: set[int] = set()
        self.rebuckets = 0
        self._fill_window(min(self._current.values()) if self._current else 0)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._current)

    def __bool__(self) -> bool:
        return bool(self._current)

    def current_support(self, vertex: int) -> int:
        return self._current[int(vertex)]

    @property
    def window_start(self) -> int:
        """Lowest support value covered by the open buckets."""
        return self._window_start

    def _bucket_index(self, support: int) -> int | None:
        offset = (support - self._window_start) // self.bucket_width
        if 0 <= offset < self.n_buckets:
            return int(offset)
        return None

    def _fill_window(self, window_start: int) -> None:
        self._window_start = int(window_start)
        self._buckets = [set() for _ in range(self.n_buckets)]
        self._overflow = set()
        for vertex, support in self._current.items():
            index = self._bucket_index(support)
            if index is None:
                self._overflow.add(vertex)
            else:
                self._buckets[index].add(vertex)

    # ------------------------------------------------------------------
    def update(self, vertex: int, new_support: int) -> None:
        """Move a vertex after its support decreased."""
        vertex = int(vertex)
        if vertex not in self._current:
            return
        old_support = self._current[vertex]
        new_support = int(new_support)
        if new_support > old_support:
            raise ValueError(
                f"support of vertex {vertex} cannot increase ({old_support} -> {new_support})"
            )
        if new_support == old_support:
            return
        old_index = self._bucket_index(old_support)
        if old_index is None:
            self._overflow.discard(vertex)
        else:
            self._buckets[old_index].discard(vertex)
        self._current[vertex] = new_support
        if new_support < self._window_start:
            # The new support falls below the open window (possible when the
            # caller does not clamp updates); slide the window back so the
            # minimum-bucket invariant is preserved.
            self.rebuckets += 1
            self._fill_window(new_support)
            return
        new_index = self._bucket_index(new_support)
        if new_index is None:
            self._overflow.add(vertex)
        else:
            self._buckets[new_index].add(vertex)

    def update_many(self, vertices: np.ndarray, new_supports: np.ndarray) -> None:
        """Move a batch of vertices after their supports decreased.

        Bulk counterpart of :meth:`update` accepting the arrays of one
        batched :class:`~repro.peeling.update.SupportUpdate` directly.
        """
        for vertex, new_support in zip(
            np.asarray(vertices, dtype=np.int64).tolist(),
            np.asarray(new_supports, dtype=np.int64).tolist(),
        ):
            self.update(vertex, new_support)

    def next_bucket(self) -> tuple[list[int], int]:
        """Extract all vertices from the lowest non-empty bucket.

        Returns ``(vertices, bucket_support_lower_bound)``.  With width-1
        buckets the lower bound is the exact support of every returned
        vertex.  Raises ``IndexError`` when the structure is empty.
        """
        if not self._current:
            raise IndexError("next_bucket on an empty BucketQueue")
        while True:
            for index, bucket in enumerate(self._buckets):
                if bucket:
                    vertices = sorted(bucket)
                    bucket.clear()
                    for vertex in vertices:
                        del self._current[vertex]
                    return vertices, self._window_start + index * self.bucket_width
            # Open window exhausted: re-bucket the overflow over a new window.
            if not self._overflow:
                raise IndexError("BucketQueue invariant violated: no vertices left")
            self.rebuckets += 1
            next_start = min(self._current[vertex] for vertex in self._overflow)
            self._fill_window(next_start)
