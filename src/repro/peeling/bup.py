"""Sequential bottom-up peeling (BUP, Alg. 2) — the exact baseline.

BUP initialises supports with per-vertex butterfly counts and repeatedly
peels a vertex with minimum support, recording that support as its tip
number and decrementing the supports of its 2-hop neighbours.  This is the
algorithm of Sariyuce & Pinar and the sequential baseline of Table 3; it is
also the kernel RECEIPT FD applies to every induced subgraph.
"""

from __future__ import annotations

import numpy as np

from ..butterfly.counting import ButterflyCounts, count_per_vertex
from ..errors import BudgetExceededError
from ..graph.bipartite import BipartiteGraph, validate_side
from ..graph.dynamic import PeelableAdjacency
from ..kernels.workspace import WedgeWorkspace
from ..obs.trace import current_tracer
from .base import PeelingCounters, TipDecompositionResult
from .minheap import LazyMinHeap
from .update import peel_vertex

__all__ = ["bup_decomposition", "peel_sequential"]


def peel_sequential(
    graph: BipartiteGraph,
    side: str,
    initial_supports: np.ndarray,
    *,
    enable_dgm: bool = False,
    counters: PeelingCounters | None = None,
    wedge_budget: int | None = None,
    record_peel_order: bool = False,
    peel_kernel: str = "batched",
    workspace: WedgeWorkspace | None = None,
) -> tuple[np.ndarray, PeelingCounters, list[int]]:
    """Core sequential peeling loop, reused by BUP and by RECEIPT FD.

    Parameters
    ----------
    graph:
        Graph to peel (for FD this is an induced subgraph).
    side:
        Side being peeled.
    initial_supports:
        Supports at the start of peeling (butterfly counts for BUP, the
        ``⋈init`` vector for FD subsets).
    enable_dgm:
        Whether to compact adjacency lists periodically.
    counters:
        Counter object to accumulate into (a fresh one is created if absent).
    wedge_budget:
        Optional cap on traversed wedges; exceeding it raises
        :class:`~repro.errors.BudgetExceededError` (used to reproduce the
        paper's "did not finish" entries).
    record_peel_order:
        When ``True`` the returned list contains vertices in peel order.
    peel_kernel:
        Support-update kernel: the shared vectorized ``"batched"`` kernel
        (default) or the per-vertex ``"reference"`` formulation.
    workspace:
        Scratch arena shared by every pop of the loop (a fresh one when
        omitted, so per-run peak accounting stays exact); its high-water
        mark is folded into ``counters.peak_scratch_bytes``.

    Returns
    -------
    (tip_numbers, counters, peel_order)
    """
    side = validate_side(side)
    n_side = graph.side_size(side)
    counters = counters if counters is not None else PeelingCounters()
    workspace = workspace if workspace is not None else WedgeWorkspace()
    supports = np.array(initial_supports, dtype=np.int64, copy=True)
    if supports.shape[0] != n_side:
        raise ValueError(
            f"initial_supports has {supports.shape[0]} entries, expected {n_side}"
        )

    tip_numbers = np.zeros(n_side, dtype=np.int64)
    adjacency = PeelableAdjacency(graph, side, enable_dgm=enable_dgm,
                                  narrow_ids=workspace.narrow_ids)
    heap = LazyMinHeap(supports)
    peel_order: list[int] = []

    while heap:
        vertex, support = heap.pop_min()
        tip_numbers[vertex] = support
        adjacency.mark_peeled(vertex)
        counters.vertices_peeled += 1
        counters.synchronization_rounds += 1
        if record_peel_order:
            peel_order.append(vertex)

        update = peel_vertex(adjacency, supports, vertex, support, kernel=peel_kernel,
                             workspace=workspace)
        counters.wedges_traversed += update.wedges_traversed
        counters.peeling_wedges += update.wedges_traversed
        counters.support_updates += update.support_updates
        heap.decrease_many(update.updated_vertices, update.new_supports)

        compacted = adjacency.maybe_compact()
        if compacted:
            counters.dgm_compactions += 1

        if wedge_budget is not None and counters.wedges_traversed > wedge_budget:
            raise BudgetExceededError(
                f"wedge budget of {wedge_budget} exceeded during sequential peeling",
                wedges_traversed=counters.wedges_traversed,
            )

    counters.peak_scratch_bytes = max(
        counters.peak_scratch_bytes, workspace.peak_scratch_bytes
    )
    return tip_numbers, counters, peel_order


def bup_decomposition(
    graph: BipartiteGraph,
    side: str = "U",
    *,
    counts: ButterflyCounts | None = None,
    enable_dgm: bool = False,
    wedge_budget: int | None = None,
    peel_kernel: str = "batched",
    workspace: WedgeWorkspace | None = None,
) -> TipDecompositionResult:
    """Tip decomposition by sequential bottom-up peeling (Alg. 2).

    Parameters
    ----------
    graph:
        The bipartite graph.
    side:
        Side to decompose, ``"U"`` by default.
    counts:
        Pre-computed butterfly counts (counted fresh when omitted).
    enable_dgm:
        The classic baseline does not compact adjacency lists; enabling DGM
        here is only used by ablation experiments.
    wedge_budget:
        Optional traversal cap (reproduces the paper's DNF entries).
    peel_kernel:
        Support-update kernel (``"batched"`` or ``"reference"``).
    workspace:
        Scratch arena + memory policy for counting and peeling (a fresh
        default-policy one per run when omitted).
    """
    side = validate_side(side)
    counters = PeelingCounters()
    workspace = workspace if workspace is not None else WedgeWorkspace()
    tracer = current_tracer()
    run_span = tracer.timed("bup", side=side)

    with run_span:
        with tracer.timed("pvBcnt") as counting_span:
            if counts is None:
                counts = count_per_vertex(graph, workspace=workspace)
        counters.wedges_traversed += counts.wedges_traversed
        counters.counting_wedges += counts.wedges_traversed
        if counting_span.recording:
            counting_span.set(wedges_traversed=counts.wedges_traversed)
        initial = counts.counts(side).copy()

        with tracer.span("bup.peel"):
            tip_numbers, counters, _ = peel_sequential(
                graph, side, initial,
                enable_dgm=enable_dgm, counters=counters, wedge_budget=wedge_budget,
                peel_kernel=peel_kernel, workspace=workspace,
            )
    counters.elapsed_seconds = run_span.duration
    if run_span.recording:
        run_span.set(wedges_traversed=counters.wedges_traversed,
                     vertices_peeled=counters.vertices_peeled)

    return TipDecompositionResult(
        tip_numbers=tip_numbers,
        side=side,
        initial_butterflies=initial,
        algorithm="BUP",
        counters=counters,
    )
