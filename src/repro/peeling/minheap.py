"""Minimum-support retrieval structures for bottom-up peeling.

The sequential peeling loops need to repeatedly extract a vertex with the
minimum current support while supports of other vertices keep decreasing.
The paper notes it found a simple k-way min-heap faster in practice than the
bucketing structure of Sariyuce et al.; we provide a *lazy* binary min-heap
with exactly those semantics: decreased keys are pushed again and stale
entries are skipped at pop time.  Because supports only decrease during
peeling, the first non-stale entry popped is always a true minimum.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

__all__ = ["LazyMinHeap"]


class LazyMinHeap:
    """Lazy-deletion binary heap keyed by current vertex support.

    Parameters
    ----------
    supports:
        Initial support of every vertex (indexed by vertex id).  The heap
        keeps a reference-independent copy of the *current* support of each
        vertex; :meth:`decrease` must be called whenever a support drops so
        the heap can prioritise the vertex correctly.
    vertices:
        Optional subset of vertex ids to manage; defaults to all indices of
        ``supports``.
    """

    def __init__(self, supports: np.ndarray, vertices: Iterable[int] | None = None):
        supports = np.asarray(supports)
        if vertices is None:
            vertices = range(supports.shape[0])
        self._current: dict[int, int] = {int(v): int(supports[int(v)]) for v in vertices}
        self._removed: set[int] = set()
        self._heap: list[tuple[int, int]] = [(support, vertex) for vertex, support in self._current.items()]
        heapq.heapify(self._heap)
        self.pushes = len(self._heap)
        self.stale_pops = 0

    def __len__(self) -> int:
        return len(self._current)

    def __bool__(self) -> bool:
        return bool(self._current)

    def __contains__(self, vertex: int) -> bool:
        return int(vertex) in self._current

    def current_support(self, vertex: int) -> int:
        """Current support of a managed vertex."""
        return self._current[int(vertex)]

    def decrease(self, vertex: int, new_support: int) -> None:
        """Record a support decrease for ``vertex``.

        Increases are rejected because bottom-up peeling only ever lowers
        supports; accepting them would break the lazy-deletion invariant.
        """
        vertex = int(vertex)
        if vertex in self._removed or vertex not in self._current:
            return
        new_support = int(new_support)
        if new_support > self._current[vertex]:
            raise ValueError(
                f"support of vertex {vertex} cannot increase "
                f"({self._current[vertex]} -> {new_support})"
            )
        if new_support == self._current[vertex]:
            return
        self._current[vertex] = new_support
        heapq.heappush(self._heap, (new_support, vertex))
        self.pushes += 1

    def decrease_many(self, vertices: np.ndarray, new_supports: np.ndarray) -> None:
        """Record the support decreases of one batched :class:`SupportUpdate`.

        This is the bulk entry point peeling loops feed a
        :class:`~repro.peeling.update.SupportUpdate` into
        (``heap.decrease_many(update.updated_vertices, update.new_supports)``);
        it centralises the per-entry iteration in one place instead of
        every caller zipping the arrays itself.
        """
        for vertex, new_support in zip(
            np.asarray(vertices, dtype=np.int64).tolist(),
            np.asarray(new_supports, dtype=np.int64).tolist(),
        ):
            self.decrease(vertex, new_support)

    def pop_min(self) -> tuple[int, int]:
        """Remove and return ``(vertex, support)`` with the minimum support.

        Raises ``IndexError`` when the heap is empty.
        """
        while self._heap:
            support, vertex = heapq.heappop(self._heap)
            if vertex in self._removed or vertex not in self._current:
                self.stale_pops += 1
                continue
            if support != self._current[vertex]:
                self.stale_pops += 1
                continue
            del self._current[vertex]
            self._removed.add(vertex)
            return vertex, support
        raise IndexError("pop from an empty LazyMinHeap")

    def peek_min_support(self) -> int:
        """Minimum current support without removing the vertex."""
        while self._heap:
            support, vertex = self._heap[0]
            if (
                vertex in self._removed
                or vertex not in self._current
                or support != self._current[vertex]
            ):
                heapq.heappop(self._heap)
                self.stale_pops += 1
                continue
            return support
        raise IndexError("peek on an empty LazyMinHeap")

    def pop_all_min(self) -> tuple[list[int], int]:
        """Remove and return every vertex currently at the minimum support.

        Returns ``(vertices, support)``.  This is the per-round extraction
        ParButterfly-style peeling performs.
        """
        first_vertex, support = self.pop_min()
        vertices = [first_vertex]
        while self._current:
            try:
                next_support = self.peek_min_support()
            except IndexError:  # pragma: no cover - defensive, _current said non-empty
                break
            if next_support != support:
                break
            vertex, _ = self.pop_min()
            vertices.append(vertex)
        return vertices, support
