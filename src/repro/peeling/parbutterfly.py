"""ParButterfly-style parallel bottom-up peeling (the ParB baseline).

ParButterfly (Shi & Shun) parallelises Alg. 2 *within* each peeling
iteration: every round extracts all vertices whose support equals the
current minimum, peels them concurrently (BATCH-aggregated updates) and
synchronises.  The number of rounds ``ρ`` is therefore the number of
distinct support levels encountered, which is what makes the approach
synchronization-bound — the observation motivating RECEIPT.

The paper re-implemented ParB on the Julienne bucketing structure with 128
buckets; this module does the same.  Updates within a round are applied
through the shared batch-update routine, which is semantically identical to
the atomics-based parallel application (support decrements commute).
"""

from __future__ import annotations

import numpy as np

from ..butterfly.counting import ButterflyCounts, count_per_vertex
from ..errors import BudgetExceededError
from ..graph.bipartite import BipartiteGraph, validate_side
from ..graph.dynamic import PeelableAdjacency
from ..kernels.workspace import WedgeWorkspace
from ..obs.trace import current_tracer
from ..parallel.threadpool import ExecutionContext
from .base import PeelingCounters, TipDecompositionResult
from .bucketing import BucketQueue
from .update import peel_batch

__all__ = ["parbutterfly_decomposition"]


def parbutterfly_decomposition(
    graph: BipartiteGraph,
    side: str = "U",
    *,
    counts: ButterflyCounts | None = None,
    n_buckets: int = 128,
    context: ExecutionContext | None = None,
    wedge_budget: int | None = None,
    round_budget: int | None = None,
    peel_kernel: str = "batched",
    workspace: WedgeWorkspace | None = None,
) -> TipDecompositionResult:
    """Tip decomposition with level-synchronous parallel peeling (ParB).

    Parameters
    ----------
    graph:
        The bipartite graph.
    side:
        Side to decompose.
    counts:
        Pre-computed butterfly counts (counted fresh when omitted).
    n_buckets:
        Number of open Julienne buckets (128 as in the paper's baseline).
    context:
        Execution context used to record the per-round parallel regions that
        drive the speedup cost model.
    wedge_budget, round_budget:
        Optional execution caps used by the benchmark harness to reproduce
        the paper's "did not finish" / out-of-memory entries.
    peel_kernel:
        Support-update kernel (``"batched"`` or ``"reference"``).
    workspace:
        Scratch arena + memory policy every round's batch peel runs on (a
        fresh default-policy one per run when omitted).
    """
    side = validate_side(side)
    context = context or ExecutionContext()
    counters = PeelingCounters()
    workspace = workspace if workspace is not None else WedgeWorkspace()
    tracer = current_tracer()
    run_span = tracer.timed("parb", side=side)

    with run_span:
        with tracer.timed("pvBcnt") as counting_span:
            if counts is None:
                counts = count_per_vertex(graph, algorithm="parallel", context=context,
                                          workspace=workspace)
        counters.wedges_traversed += counts.wedges_traversed
        counters.counting_wedges += counts.wedges_traversed
        if counting_span.recording:
            counting_span.set(wedges_traversed=counts.wedges_traversed)
        initial = counts.counts(side).copy()

        n_side = graph.side_size(side)
        supports = initial.copy()
        tip_numbers = np.zeros(n_side, dtype=np.int64)
        adjacency = PeelableAdjacency(graph, side, enable_dgm=False,
                                      narrow_ids=workspace.narrow_ids)
        buckets = BucketQueue(supports, n_buckets=n_buckets, bucket_width=1)

        while buckets:
            vertices, level = buckets.next_bucket()
            batch = np.asarray(vertices, dtype=np.int64)
            # The bucket's lower bound equals the exact support because the
            # width is one; record it as the tip number of every peeled vertex.
            tip_numbers[batch] = supports[batch]
            threshold = int(supports[batch].max()) if batch.size else level

            with tracer.span("parb.round") as round_span:
                update = peel_batch(adjacency, supports, batch, threshold,
                                    kernel=peel_kernel, context=context,
                                    workspace=workspace)
            if round_span.recording:
                round_span.set(vertices_peeled=int(batch.size),
                               wedges_traversed=int(update.wedges_traversed))
            counters.wedges_traversed += update.wedges_traversed
            counters.peeling_wedges += update.wedges_traversed
            counters.support_updates += update.support_updates
            counters.vertices_peeled += int(batch.size)
            counters.synchronization_rounds += 1
            context.record_barrier(
                "parb_round",
                n_tasks=int(batch.size),
                total_work=float(update.wedges_traversed),
            )

            buckets.update_many(update.updated_vertices, update.new_supports)

            if wedge_budget is not None and counters.wedges_traversed > wedge_budget:
                raise BudgetExceededError(
                    f"wedge budget of {wedge_budget} exceeded in ParB",
                    wedges_traversed=counters.wedges_traversed,
                    elapsed_seconds=run_span.elapsed(),
                )
            if round_budget is not None and counters.synchronization_rounds > round_budget:
                raise BudgetExceededError(
                    f"round budget of {round_budget} exceeded in ParB",
                    wedges_traversed=counters.wedges_traversed,
                    elapsed_seconds=run_span.elapsed(),
                )

    counters.elapsed_seconds = run_span.duration
    counters.peak_scratch_bytes = max(
        counters.peak_scratch_bytes, workspace.peak_scratch_bytes
    )
    return TipDecompositionResult(
        tip_numbers=tip_numbers,
        side=side,
        initial_butterflies=initial,
        algorithm="ParB",
        counters=counters,
        extra={"n_buckets": n_buckets, "rebuckets": buckets.rebuckets},
    )
