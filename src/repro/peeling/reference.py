"""Per-vertex reference implementation of the support-update routine.

This is the original one-vertex-at-a-time formulation of Alg. 2's
``update``: a batch is dismantled into a Python loop that peels each member
individually, aggregates its wedge endpoints with ``np.unique`` and applies
the clamped decrements before moving to the next member.  The vectorized
kernels in :mod:`repro.kernels` replaced it as the default because the
per-vertex loop made interpreter overhead — not wedge traversal — the
dominant cost of RECEIPT CD's huge batches.

It is kept in-tree for three reasons:

* the property-based equivalence suite asserts the batched kernel matches
  it bit-for-bit (supports, ``wedges_traversed`` and ``support_updates``);
* ``--peel-kernel reference`` on the CLI and the ``peel_kernel`` plumbing
  in :mod:`repro.core` let ablation benchmarks compare both paths without
  code edits; and
* it documents the sequential semantics (per-step threshold clamping,
  Lemma 2 drop-semantics, per-vertex DGM checks) the kernels must honour.
"""

from __future__ import annotations

import numpy as np

from ..graph.dynamic import PeelableAdjacency
from .update import SupportUpdate

__all__ = ["peel_vertex_reference", "peel_batch_reference"]


def peel_vertex_reference(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertex: int,
    threshold: int,
) -> SupportUpdate:
    """Peel a single vertex and update supports of its 2-hop neighbours.

    The vertex must already be marked peeled (callers mark first so that
    self-updates are impossible); ``supports`` is modified in place.
    """
    endpoints = adjacency.two_hop_multiset(vertex)
    wedges_traversed = int(endpoints.size)
    adjacency.record_traversal(wedges_traversed)
    if wedges_traversed == 0:
        return SupportUpdate(
            updated_vertices=np.zeros(0, dtype=np.int64),
            new_supports=np.zeros(0, dtype=np.int64),
            wedges_traversed=0,
            support_updates=0,
        )

    unique_endpoints, wedge_counts = np.unique(endpoints, return_counts=True)
    alive = adjacency.alive_mask()
    keep = alive[unique_endpoints] & (unique_endpoints != vertex) & (wedge_counts >= 2)
    unique_endpoints = unique_endpoints[keep]
    wedge_counts = wedge_counts[keep]
    if unique_endpoints.size == 0:
        return SupportUpdate(
            updated_vertices=np.zeros(0, dtype=np.int64),
            new_supports=np.zeros(0, dtype=np.int64),
            wedges_traversed=wedges_traversed,
            support_updates=0,
        )

    shared_butterflies = wedge_counts * (wedge_counts - 1) // 2
    new_supports = np.maximum(threshold, supports[unique_endpoints] - shared_butterflies)
    changed = new_supports < supports[unique_endpoints]
    unique_endpoints = unique_endpoints[changed]
    new_supports = new_supports[changed]
    supports[unique_endpoints] = new_supports

    return SupportUpdate(
        updated_vertices=unique_endpoints.astype(np.int64),
        new_supports=new_supports.astype(np.int64),
        wedges_traversed=wedges_traversed,
        support_updates=int(unique_endpoints.size),
    )


def peel_batch_reference(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertices: np.ndarray,
    threshold: int,
) -> SupportUpdate:
    """Peel a set of vertices by looping :func:`peel_vertex_reference`.

    All vertices are marked peeled *before* any update is computed, so
    updates between members of the batch are dropped — exactly the behaviour
    Lemma 2 relies on.  DGM compaction is checked after every member, which
    is the schedule the batched kernel reproduces by splitting batches at
    compaction points.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    adjacency.mark_peeled_many(vertices)

    total_wedges = 0
    total_updates = 0
    touched: dict[int, int] = {}
    for vertex in vertices:
        update = peel_vertex_reference(adjacency, supports, int(vertex), threshold)
        total_wedges += update.wedges_traversed
        total_updates += update.support_updates
        for updated_vertex, new_support in zip(update.updated_vertices, update.new_supports):
            touched[int(updated_vertex)] = int(new_support)
        adjacency.maybe_compact()

    if touched:
        updated_vertices = np.fromiter(touched.keys(), dtype=np.int64, count=len(touched))
        new_supports = np.fromiter(touched.values(), dtype=np.int64, count=len(touched))
    else:
        updated_vertices = np.zeros(0, dtype=np.int64)
        new_supports = np.zeros(0, dtype=np.int64)
    return SupportUpdate(
        updated_vertices=updated_vertices,
        new_supports=new_supports,
        wedges_traversed=total_wedges,
        support_updates=total_updates,
    )
