"""The support-update routine shared by every peeling algorithm.

Peeling a vertex ``u`` (Alg. 2, ``update``) traverses all wedges starting at
``u``, aggregates how many wedges reach each still-alive endpoint ``u'``
(their shared butterflies are ``C(wedges, 2)``) and decreases the support of
``u'`` by that amount, clamped from below at the tip number / range bound
being assigned to ``u``.

Both entry points are backed by the vectorized kernels of
:mod:`repro.kernels`: :func:`peel_batch` streams the wedges of the *whole*
batch through the memory-bounded pipeline — flat-CSR gathers in
wedge-budgeted chunks whose per-(vertex, endpoint) decrements are folded
into ``supports`` as soon as each chunk is counted — so there is no
per-vertex Python loop over batch members *and* peak scratch stays capped
by the workspace's wedge budget instead of the batch's total wedge count.
Chunking is invisible in the results: decrements commute and the clamp
replay preserves batch order, so supports, updated-vertex sets and the
``support_updates`` counter are bit-identical whether a batch is applied in
one piece or many (asserted by the equivalence suites).

The only other Python-level iteration left is over DGM compaction events:
when Dynamic Graph Maintenance is enabled the batch is split at the exact
vertices where the sequential reference would have compacted, so wedge
traversal counters stay bit-identical to :mod:`repro.peeling.reference`.

The routine is deliberately free of any priority-structure knowledge: the
caller receives the list of updated vertices and their new supports and
feeds its own heap, bucket queue or active-set tracker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dynamic import PeelableAdjacency
from ..kernels.csr import gather_rows, segment_offsets, segment_sums
from ..kernels.peel import (
    BatchDecrements,
    apply_clamped_decrements,
    count_pair_wedges,
    key_counts,
)
from ..kernels.wedges import gather_batch_wedges, iter_batch_wedge_chunks
from ..kernels.workspace import WedgeWorkspace, workspace_or_default

__all__ = [
    "SupportUpdate",
    "peel_vertex",
    "peel_batch",
    "PEEL_KERNELS",
]

#: Valid values of the ``kernel`` argument of :func:`peel_batch` /
#: :func:`peel_vertex` (and of the CLI's ``--peel-kernel`` option).
PEEL_KERNELS = ("batched", "reference")


@dataclass(frozen=True)
class SupportUpdate:
    """Outcome of peeling one vertex or one batch of vertices.

    Attributes
    ----------
    updated_vertices:
        Vertices whose support was decreased (alive vertices only).
    new_supports:
        Their supports after the update (aligned with
        :attr:`updated_vertices`).
    wedges_traversed:
        Wedge endpoints touched, including stale entries left by disabled or
        pending DGM compaction — this is exactly the work the paper counts.
    support_updates:
        Number of support decrements applied.
    """

    updated_vertices: np.ndarray
    new_supports: np.ndarray
    wedges_traversed: int
    support_updates: int


def _empty_update(wedges_traversed: int = 0) -> SupportUpdate:
    return SupportUpdate(
        updated_vertices=np.zeros(0, dtype=np.int64),
        new_supports=np.zeros(0, dtype=np.int64),
        wedges_traversed=wedges_traversed,
        support_updates=0,
    )


def _validate_kernel(kernel: str) -> str:
    if kernel not in PEEL_KERNELS:
        raise ValueError(f"unknown peel kernel {kernel!r}; expected one of {PEEL_KERNELS}")
    return kernel


def peel_vertex(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertex: int,
    threshold: int,
    *,
    kernel: str = "batched",
    workspace: WedgeWorkspace | None = None,
) -> SupportUpdate:
    """Peel a single vertex and update supports of its 2-hop neighbours.

    Parameters
    ----------
    adjacency:
        Mutable adjacency view; the vertex must already be marked peeled
        (callers mark first so that self-updates are impossible).
    supports:
        Current supports, modified in place.
    vertex:
        The vertex being peeled.
    threshold:
        Lower clamp for the updated supports: the tip number θ_u in exact
        peeling, or the range lower bound θ(i) in RECEIPT CD.
    kernel:
        ``"batched"`` (default) runs the shared vectorized kernel;
        ``"reference"`` dispatches to the per-vertex reference formulation.
    workspace:
        Scratch arena the gather and sort temporaries are checked out of;
        sequential peels (BUP, FD subsets) pass one arena for the whole
        run so per-pop allocation churn disappears.
    """
    if _validate_kernel(kernel) == "reference":
        from .reference import peel_vertex_reference

        return peel_vertex_reference(adjacency, supports, vertex, threshold)

    workspace = workspace_or_default(workspace)
    peel_offsets, peel_neighbors = adjacency.peel_csr()
    center_offsets, center_neighbors = adjacency.center_csr()
    batch = np.asarray([vertex], dtype=np.int64)
    endpoints, _ = gather_batch_wedges(
        peel_offsets, peel_neighbors, center_offsets, center_neighbors, batch,
        workspace=workspace,
    )
    wedges_traversed = int(endpoints.size)
    adjacency.record_traversal(wedges_traversed)
    if wedges_traversed == 0:
        return _empty_update()

    # Single-segment specialisation of the batch kernel: with one peeled
    # vertex the pair keys are the endpoints themselves, so the whole
    # pipeline collapses to one run-length count plus a direct clamped
    # subtraction — the per-call cost sequential BUP pays per pop must stay
    # proportional to the vertex's wedges, not to batch machinery.
    alive = adjacency.alive_mask()
    if endpoints.dtype == np.int64:
        index = endpoints
    else:
        index = workspace.take("pv_index", endpoints.shape[0], np.int64)
        np.copyto(index, endpoints, casting="unsafe")
    endpoints = endpoints[alive[index]]
    if endpoints.size == 0:
        return _empty_update(wedges_traversed)
    unique_endpoints, wedge_counts = key_counts(
        endpoints, supports.shape[0], owned=True, workspace=workspace
    )
    keep = (wedge_counts >= 2) & (unique_endpoints != vertex)
    unique_endpoints = unique_endpoints[keep]
    wedge_counts = wedge_counts[keep]
    shared_butterflies = wedge_counts * (wedge_counts - 1) // 2
    old = supports[unique_endpoints]
    new = np.maximum(int(threshold), old - shared_butterflies)
    changed = new < old
    unique_endpoints = unique_endpoints[changed]
    new = new[changed]
    supports[unique_endpoints] = new
    return SupportUpdate(
        updated_vertices=unique_endpoints,
        new_supports=new,
        wedges_traversed=wedges_traversed,
        support_updates=int(unique_endpoints.shape[0]),
    )


def peel_batch(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertices: np.ndarray,
    threshold: int,
    *,
    kernel: str = "batched",
    context=None,
    workspace: WedgeWorkspace | None = None,
) -> SupportUpdate:
    """Peel a set of vertices "concurrently" (one CD / ParB round).

    All vertices are marked peeled *before* any update is computed, so
    updates between members of the batch are dropped — exactly the behaviour
    Lemma 2 relies on (updates to already-assigned vertices have no effect).
    The whole batch flows through the memory-bounded pipeline: the wedge
    multiset is gathered in budget-capped chunks, each chunk's
    per-(vertex, endpoint) decrements are counted and applied to
    ``supports`` immediately, and only the (far smaller) updated-vertex
    sets survive the chunk — peak scratch is bounded by the workspace's
    wedge budget.  Support decrements commute, so the result is identical
    to the per-vertex sequential application and to the atomics-based
    parallel application of the C++ implementation.

    Parameters
    ----------
    kernel:
        ``"batched"`` (default) or ``"reference"`` (the per-vertex loop kept
        in :mod:`repro.peeling.reference` for ablations and equivalence
        tests).
    context:
        Optional :class:`~repro.parallel.threadpool.ExecutionContext`.  When
        it carries more than one thread, the wedge gather and pair counting
        fan out over work-balanced batch slices with private buffers
        (``map_chunks``) and the kernel merges the slices before the single
        decrement application; results are identical to the serial path.
    workspace:
        Scratch arena + memory policy (wedge budget, int32 narrowing); the
        calling thread's default arena when omitted.
    """
    if _validate_kernel(kernel) == "reference":
        from .reference import peel_batch_reference

        return peel_batch_reference(adjacency, supports, vertices, threshold)

    workspace = workspace_or_default(workspace)
    vertices = np.asarray(vertices, dtype=np.int64)
    adjacency.mark_peeled_many(vertices)
    if vertices.size == 0:
        return _empty_update()

    peel_offsets, peel_neighbors = adjacency.peel_csr()
    threshold = int(threshold)
    total_wedges = 0
    total_updates = 0
    updated_pieces: list[np.ndarray] = []

    # The batch's center ids never change (the peeled-side CSR is static), so
    # they are gathered exactly once; only the per-center sizes depend on the
    # current (possibly compacted) center CSR.
    n_batch = vertices.shape[0]
    centers, centers_per_vertex = gather_rows(peel_offsets, peel_neighbors, vertices)
    center_starts = segment_offsets(centers_per_vertex)

    # Outer loop over DGM compaction events only (a single pass when DGM is
    # off or the interval is not reached): the sequential reference checks
    # for compaction after every vertex, so the batch is split at the first
    # vertex whose cumulative traversal crosses the remaining budget.
    start = 0
    while start < n_batch:
        center_offsets, center_neighbors = adjacency.center_csr()
        budget = adjacency.wedges_until_compaction()
        stop, wedges_per_vertex, range_starts, range_lengths = _find_compaction_split(
            start, n_batch, budget, centers, center_starts, centers_per_vertex,
            center_offsets, need_weights=context is not None and context.n_threads > 1,
        )

        sub_batch = vertices[start:stop]
        sub_wedges, sub_updates, sub_updated = _stream_decrements(
            sub_batch,
            centers[center_starts[start]: center_starts[stop]],
            centers_per_vertex[start:stop],
            center_offsets,
            center_neighbors,
            adjacency.alive_mask(),
            adjacency.has_stale_entries,
            # DGM bounds the stale fraction, so deferring the alive filter
            # to the pair level is the cheaper schedule; without DGM stale
            # entries accumulate and the early compress stays worthwhile.
            adjacency.enable_dgm,
            supports,
            threshold,
            wedges_per_vertex,
            range_starts,
            range_lengths,
            context,
            workspace,
        )

        total_wedges += sub_wedges
        total_updates += sub_updates
        updated_pieces.extend(sub_updated)
        adjacency.record_traversal(sub_wedges)
        adjacency.maybe_compact()
        start = stop

    if updated_pieces:
        updated_vertices = (
            updated_pieces[0]
            if len(updated_pieces) == 1
            else np.unique(np.concatenate(updated_pieces))
        )
        new_supports = supports[updated_vertices]
    else:
        updated_vertices = np.zeros(0, dtype=np.int64)
        new_supports = np.zeros(0, dtype=np.int64)
    return SupportUpdate(
        updated_vertices=updated_vertices,
        new_supports=new_supports,
        wedges_traversed=total_wedges,
        support_updates=total_updates,
    )


def _find_compaction_split(
    start: int,
    n_batch: int,
    budget: int | None,
    centers: np.ndarray,
    center_starts: np.ndarray,
    centers_per_vertex: np.ndarray,
    center_offsets: np.ndarray,
    *,
    need_weights: bool,
) -> tuple[int, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Find where the remaining batch must split for the next DGM compaction.

    Returns ``(stop, wedges_per_vertex, range_starts, range_lengths)`` such
    that processing ``vertices[start:stop]`` traverses wedges exactly until
    the sequential reference would compact (after the first vertex whose
    cumulative count reaches ``budget``).  The candidate window grows
    geometrically so a batch that splits many times never re-scans its
    whole tail per split.  ``wedges_per_vertex`` covers ``[start, stop)``
    and ``range_starts`` / ``range_lengths`` are the per-center gather
    ranges of the same span, handed back so the endpoint gather does not
    recompute them; all three are ``None`` when nothing was computed (no
    DGM and no work weights requested).
    """
    if budget is None and not need_weights:
        return n_batch, None, None, None

    window = 128 if budget is not None else n_batch - start
    while True:
        hi = min(start + window, n_batch)
        window_centers = centers[center_starts[start]: center_starts[hi]]
        range_starts = center_offsets[window_centers]
        range_lengths = center_offsets[window_centers + 1] - range_starts
        wedges_per_vertex = segment_sums(range_lengths, centers_per_vertex[start:hi])
        if budget is not None:
            cumulative = np.cumsum(wedges_per_vertex)
            crossing = int(np.searchsorted(cumulative, budget, side="left"))
            if crossing < hi - start:
                stop = start + crossing + 1
                n_sub_centers = int(center_starts[stop] - center_starts[start])
                return (
                    stop,
                    wedges_per_vertex[: crossing + 1],
                    range_starts[:n_sub_centers],
                    range_lengths[:n_sub_centers],
                )
        if hi == n_batch:
            return n_batch, wedges_per_vertex, range_starts, range_lengths
        window *= 4


def _stream_decrements(
    sub_batch: np.ndarray,
    centers: np.ndarray,
    centers_per_vertex: np.ndarray,
    center_offsets: np.ndarray,
    center_neighbors: np.ndarray,
    alive: np.ndarray,
    filter_alive: bool,
    late_filter: bool,
    supports: np.ndarray,
    threshold: int,
    wedges_per_vertex: np.ndarray | None,
    range_starts: np.ndarray | None,
    range_lengths: np.ndarray | None,
    context,
    workspace: WedgeWorkspace,
) -> tuple[int, int, list[np.ndarray]]:
    """Gather, count and apply one DGM sub-batch through the wedge pipeline.

    Serial path: the sub-batch streams through
    :func:`~repro.kernels.wedges.iter_batch_wedge_chunks`; every chunk's
    decrements are applied to ``supports`` before the next chunk is
    gathered, so nothing wedge-scale outlives a chunk.  Because the chunks
    follow batch order and clamped decrements compose (``max(t, s - a - b)
    == max(t, max(t, s - a) - b)`` for per-endpoint totals ``a`` before
    ``b``), supports and the ``support_updates`` replay are bit-identical
    to a monolithic application.

    With a multi-threaded execution context the batch positions are split
    into work-balanced slices instead; each slice gathers and counts into
    private arrays (batch positions are disjoint across slices, so
    per-pair counts are unaffected) and the pieces are concatenated for a
    single global decrement application.

    Returns ``(wedges, support_updates, updated_vertex_pieces)``.
    """
    if context is not None and context.n_threads > 1 and sub_batch.shape[0] > 1:
        center_starts = np.concatenate(([0], np.cumsum(centers_per_vertex)))

        def chunk_body(positions):
            positions = np.asarray(positions, dtype=np.int64)
            # Slices are contiguous position ranges (balanced_chunks /
            # chunk_ranges both tile [0, n)); the streaming iteration below
            # relies on it, so fail loudly if the scheduler ever changes.
            lo_pos, hi_pos = int(positions[0]), int(positions[-1]) + 1
            if hi_pos - lo_pos != positions.shape[0]:
                raise ValueError("peel_batch_gather requires contiguous slices")
            # A private arena per slice carrying the run's memory policy:
            # the wedge budget caps each slice's gathers and its peak folds
            # back into the run's accounting after the barrier.
            local = WedgeWorkspace(
                wedge_budget=workspace.wedge_budget,
                narrow_ids=workspace.narrow_ids,
            )
            pieces: list[BatchDecrements] = []
            slice_wedges = 0
            for lo, hi, endpoints, chunk_lengths in iter_batch_wedge_chunks(
                centers[center_starts[lo_pos]: center_starts[hi_pos]],
                centers_per_vertex[lo_pos:hi_pos],
                center_offsets,
                center_neighbors,
                workspace=local,
            ):
                slice_wedges += int(endpoints.shape[0])
                pieces.append(count_pair_wedges(
                    endpoints,
                    np.arange(lo_pos + lo, lo_pos + hi, dtype=np.int64),
                    chunk_lengths, sub_batch, alive,
                    filter_alive=filter_alive, late_filter=late_filter,
                    workspace=local,
                ))
            return pieces, slice_wedges, local.peak_scratch_bytes

        # record=False: the enclosing peel iteration (cd_peel_iteration /
        # parb_round) already accounts for this wedge work, and the recorded
        # regions must not depend on the thread count.
        results = context.map_chunks(
            list(range(sub_batch.shape[0])),
            chunk_body,
            name="peel_batch_gather",
            work_per_item=[float(w) for w in wedges_per_vertex],
            record=False,
        )
        decrements = BatchDecrements.concatenate(
            [piece for pieces, _, _ in results for piece in pieces]
        )
        wedges = sum(slice_wedges for _, slice_wedges, _ in results)
        for _, _, local_peak in results:
            if local_peak > workspace.peak_scratch_bytes:
                workspace.peak_scratch_bytes = local_peak
        updated, _, n_updates = apply_clamped_decrements(
            supports, decrements, threshold, workspace=workspace
        )
        return wedges, n_updates, [updated] if updated.size else []

    wedges = 0
    total_updates = 0
    updated_pieces: list[np.ndarray] = []
    for lo, hi, endpoints, chunk_wedges in iter_batch_wedge_chunks(
        centers,
        centers_per_vertex,
        center_offsets,
        center_neighbors,
        workspace=workspace,
        range_starts=range_starts,
        range_lengths=range_lengths,
        wedges_per_vertex=wedges_per_vertex,
    ):
        wedges += int(endpoints.shape[0])
        # Positions are rebased to the chunk so the key bound — and with it
        # the int32 narrowing decision — shrinks with the chunk; the cached
        # iota serves them without an arange per chunk.
        positions = workspace.iota(hi - lo)
        decrements = count_pair_wedges(
            endpoints, positions, chunk_wedges, sub_batch[lo:hi], alive,
            filter_alive=filter_alive, late_filter=late_filter, workspace=workspace,
        )
        updated, _, n_updates = apply_clamped_decrements(
            supports, decrements, threshold, workspace=workspace
        )
        total_updates += n_updates
        if updated.size:
            updated_pieces.append(updated)
    return wedges, total_updates, updated_pieces
