"""The support-update routine shared by every peeling algorithm.

Peeling a vertex ``u`` (Alg. 2, ``update``) traverses all wedges starting at
``u``, aggregates how many wedges reach each still-alive endpoint ``u'``
(their shared butterflies are ``C(wedges, 2)``) and decreases the support of
``u'`` by that amount, clamped from below at the tip number / range bound
being assigned to ``u``.

Both entry points are backed by the vectorized kernels of
:mod:`repro.kernels`: :func:`peel_batch` gathers the wedges of the *whole*
batch in one flat-CSR load and applies all decrements in one grouped pass —
there is no per-vertex Python loop over batch members, which is what makes
RECEIPT CD's thousands-of-vertices iterations fast in this implementation.
The only Python-level iteration left is over DGM compaction events: when
Dynamic Graph Maintenance is enabled the batch is split at the exact
vertices where the sequential reference would have compacted, so wedge
traversal counters stay bit-identical to
:mod:`repro.peeling.reference` (asserted by the equivalence test suite).

The routine is deliberately free of any priority-structure knowledge: the
caller receives the list of updated vertices and their new supports and
feeds its own heap, bucket queue or active-set tracker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dynamic import PeelableAdjacency
from ..kernels.csr import gather_ranges, gather_rows, segment_offsets, segment_sums
from ..kernels.peel import (
    BatchDecrements,
    apply_clamped_decrements,
    count_pair_wedges,
    key_counts,
)
from ..kernels.wedges import gather_batch_wedges

__all__ = [
    "SupportUpdate",
    "peel_vertex",
    "peel_batch",
    "PEEL_KERNELS",
]

#: Valid values of the ``kernel`` argument of :func:`peel_batch` /
#: :func:`peel_vertex` (and of the CLI's ``--peel-kernel`` option).
PEEL_KERNELS = ("batched", "reference")


@dataclass(frozen=True)
class SupportUpdate:
    """Outcome of peeling one vertex or one batch of vertices.

    Attributes
    ----------
    updated_vertices:
        Vertices whose support was decreased (alive vertices only).
    new_supports:
        Their supports after the update (aligned with
        :attr:`updated_vertices`).
    wedges_traversed:
        Wedge endpoints touched, including stale entries left by disabled or
        pending DGM compaction — this is exactly the work the paper counts.
    support_updates:
        Number of support decrements applied.
    """

    updated_vertices: np.ndarray
    new_supports: np.ndarray
    wedges_traversed: int
    support_updates: int


def _empty_update(wedges_traversed: int = 0) -> SupportUpdate:
    return SupportUpdate(
        updated_vertices=np.zeros(0, dtype=np.int64),
        new_supports=np.zeros(0, dtype=np.int64),
        wedges_traversed=wedges_traversed,
        support_updates=0,
    )


def _validate_kernel(kernel: str) -> str:
    if kernel not in PEEL_KERNELS:
        raise ValueError(f"unknown peel kernel {kernel!r}; expected one of {PEEL_KERNELS}")
    return kernel


def peel_vertex(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertex: int,
    threshold: int,
    *,
    kernel: str = "batched",
) -> SupportUpdate:
    """Peel a single vertex and update supports of its 2-hop neighbours.

    Parameters
    ----------
    adjacency:
        Mutable adjacency view; the vertex must already be marked peeled
        (callers mark first so that self-updates are impossible).
    supports:
        Current supports, modified in place.
    vertex:
        The vertex being peeled.
    threshold:
        Lower clamp for the updated supports: the tip number θ_u in exact
        peeling, or the range lower bound θ(i) in RECEIPT CD.
    kernel:
        ``"batched"`` (default) runs the shared vectorized kernel;
        ``"reference"`` dispatches to the per-vertex reference formulation.
    """
    if _validate_kernel(kernel) == "reference":
        from .reference import peel_vertex_reference

        return peel_vertex_reference(adjacency, supports, vertex, threshold)

    peel_offsets, peel_neighbors = adjacency.peel_csr()
    center_offsets, center_neighbors = adjacency.center_csr()
    batch = np.asarray([vertex], dtype=np.int64)
    endpoints, _ = gather_batch_wedges(
        peel_offsets, peel_neighbors, center_offsets, center_neighbors, batch
    )
    wedges_traversed = int(endpoints.size)
    adjacency.record_traversal(wedges_traversed)
    if wedges_traversed == 0:
        return _empty_update()

    # Single-segment specialisation of the batch kernel: with one peeled
    # vertex the pair keys are the endpoints themselves, so the whole
    # pipeline collapses to one run-length count plus a direct clamped
    # subtraction — the per-call cost sequential BUP pays per pop must stay
    # proportional to the vertex's wedges, not to batch machinery.
    alive = adjacency.alive_mask()
    endpoints = endpoints[alive[endpoints]]
    if endpoints.size == 0:
        return _empty_update(wedges_traversed)
    unique_endpoints, wedge_counts = key_counts(endpoints, supports.shape[0])
    keep = (wedge_counts >= 2) & (unique_endpoints != vertex)
    unique_endpoints = unique_endpoints[keep]
    wedge_counts = wedge_counts[keep]
    shared_butterflies = wedge_counts * (wedge_counts - 1) // 2
    old = supports[unique_endpoints]
    new = np.maximum(int(threshold), old - shared_butterflies)
    changed = new < old
    unique_endpoints = unique_endpoints[changed]
    new = new[changed]
    supports[unique_endpoints] = new
    return SupportUpdate(
        updated_vertices=unique_endpoints,
        new_supports=new,
        wedges_traversed=wedges_traversed,
        support_updates=int(unique_endpoints.shape[0]),
    )


def peel_batch(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertices: np.ndarray,
    threshold: int,
    *,
    kernel: str = "batched",
    context=None,
) -> SupportUpdate:
    """Peel a set of vertices "concurrently" (one CD / ParB round).

    All vertices are marked peeled *before* any update is computed, so
    updates between members of the batch are dropped — exactly the behaviour
    Lemma 2 relies on (updates to already-assigned vertices have no effect).
    The whole batch is processed by the vectorized kernels: one flat-CSR
    gather collects every wedge of the batch, one grouped pass counts the
    per-(vertex, endpoint) wedges and one clamped vector subtraction applies
    the decrements.  Support decrements commute, so the result is identical
    to the per-vertex sequential application and to the atomics-based
    parallel application of the C++ implementation.

    Parameters
    ----------
    kernel:
        ``"batched"`` (default) or ``"reference"`` (the per-vertex loop kept
        in :mod:`repro.peeling.reference` for ablations and equivalence
        tests).
    context:
        Optional :class:`~repro.parallel.threadpool.ExecutionContext`.  When
        it carries more than one thread, the wedge gather and pair counting
        fan out over work-balanced batch slices with private buffers
        (``map_chunks``) and the kernel merges the slices before the single
        decrement application; results are identical to the serial path.
    """
    if _validate_kernel(kernel) == "reference":
        from .reference import peel_batch_reference

        return peel_batch_reference(adjacency, supports, vertices, threshold)

    vertices = np.asarray(vertices, dtype=np.int64)
    adjacency.mark_peeled_many(vertices)
    if vertices.size == 0:
        return _empty_update()

    peel_offsets, peel_neighbors = adjacency.peel_csr()
    threshold = int(threshold)
    total_wedges = 0
    total_updates = 0
    updated_pieces: list[np.ndarray] = []

    # The batch's center ids never change (the peeled-side CSR is static), so
    # they are gathered exactly once; only the per-center sizes depend on the
    # current (possibly compacted) center CSR.
    n_batch = vertices.shape[0]
    centers, centers_per_vertex = gather_rows(peel_offsets, peel_neighbors, vertices)
    center_starts = segment_offsets(centers_per_vertex)

    # Outer loop over DGM compaction events only (a single pass when DGM is
    # off or the interval is not reached): the sequential reference checks
    # for compaction after every vertex, so the batch is split at the first
    # vertex whose cumulative traversal crosses the remaining budget.
    start = 0
    while start < n_batch:
        center_offsets, center_neighbors = adjacency.center_csr()
        budget = adjacency.wedges_until_compaction()
        stop, wedges_per_vertex, range_starts, range_lengths = _find_compaction_split(
            start, n_batch, budget, centers, center_starts, centers_per_vertex,
            center_offsets, need_weights=context is not None and context.n_threads > 1,
        )

        sub_batch = vertices[start:stop]
        decrements, sub_wedges = _gather_and_count(
            sub_batch,
            centers[center_starts[start]: center_starts[stop]],
            centers_per_vertex[start:stop],
            center_offsets,
            center_neighbors,
            adjacency.alive_mask(),
            adjacency.has_stale_entries,
            wedges_per_vertex,
            range_starts,
            range_lengths,
            context,
        )
        updated, _, n_updates = apply_clamped_decrements(supports, decrements, threshold)

        total_wedges += sub_wedges
        total_updates += n_updates
        if updated.size:
            updated_pieces.append(updated)
        adjacency.record_traversal(sub_wedges)
        adjacency.maybe_compact()
        start = stop

    if updated_pieces:
        updated_vertices = (
            updated_pieces[0]
            if len(updated_pieces) == 1
            else np.unique(np.concatenate(updated_pieces))
        )
        new_supports = supports[updated_vertices]
    else:
        updated_vertices = np.zeros(0, dtype=np.int64)
        new_supports = np.zeros(0, dtype=np.int64)
    return SupportUpdate(
        updated_vertices=updated_vertices,
        new_supports=new_supports,
        wedges_traversed=total_wedges,
        support_updates=total_updates,
    )


def _find_compaction_split(
    start: int,
    n_batch: int,
    budget: int | None,
    centers: np.ndarray,
    center_starts: np.ndarray,
    centers_per_vertex: np.ndarray,
    center_offsets: np.ndarray,
    *,
    need_weights: bool,
) -> tuple[int, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Find where the remaining batch must split for the next DGM compaction.

    Returns ``(stop, wedges_per_vertex, range_starts, range_lengths)`` such
    that processing ``vertices[start:stop]`` traverses wedges exactly until
    the sequential reference would compact (after the first vertex whose
    cumulative count reaches ``budget``).  The candidate window grows
    geometrically so a batch that splits many times never re-scans its
    whole tail per split.  ``wedges_per_vertex`` covers ``[start, stop)``
    and ``range_starts`` / ``range_lengths`` are the per-center gather
    ranges of the same span, handed back so the endpoint gather does not
    recompute them; all three are ``None`` when nothing was computed (no
    DGM and no work weights requested).
    """
    if budget is None and not need_weights:
        return n_batch, None, None, None

    window = 128 if budget is not None else n_batch - start
    while True:
        hi = min(start + window, n_batch)
        window_centers = centers[center_starts[start]: center_starts[hi]]
        range_starts = center_offsets[window_centers]
        range_lengths = center_offsets[window_centers + 1] - range_starts
        wedges_per_vertex = segment_sums(range_lengths, centers_per_vertex[start:hi])
        if budget is not None:
            cumulative = np.cumsum(wedges_per_vertex)
            crossing = int(np.searchsorted(cumulative, budget, side="left"))
            if crossing < hi - start:
                stop = start + crossing + 1
                n_sub_centers = int(center_starts[stop] - center_starts[start])
                return (
                    stop,
                    wedges_per_vertex[: crossing + 1],
                    range_starts[:n_sub_centers],
                    range_lengths[:n_sub_centers],
                )
        if hi == n_batch:
            return n_batch, wedges_per_vertex, range_starts, range_lengths
        window *= 4


def _gather_and_count(
    sub_batch: np.ndarray,
    centers: np.ndarray,
    centers_per_vertex: np.ndarray,
    center_offsets: np.ndarray,
    center_neighbors: np.ndarray,
    alive: np.ndarray,
    filter_alive: bool,
    wedges_per_vertex: np.ndarray | None,
    range_starts: np.ndarray | None,
    range_lengths: np.ndarray | None,
    context,
) -> tuple[BatchDecrements, int]:
    """Gather wedge endpoints and count per-pair wedges for one sub-batch.

    ``range_starts`` / ``range_lengths`` / ``wedges_per_vertex`` are reused
    from the compaction-split scan when available so the serial path never
    touches the center offsets twice.  With a multi-threaded execution
    context the batch positions are split into work-balanced slices; each
    slice gathers and counts into private arrays (batch positions are
    disjoint across slices, so per-pair counts are unaffected) and the
    pieces are concatenated for the single global decrement application.
    """
    if context is not None and context.n_threads > 1 and sub_batch.shape[0] > 1:
        center_starts = np.concatenate(([0], np.cumsum(centers_per_vertex)))

        def chunk_body(positions):
            positions = np.asarray(positions, dtype=np.int64)
            piece_centers, piece_lengths = gather_rows(
                center_starts, centers, positions
            )
            piece_endpoints, endpoints_per_center = gather_rows(
                center_offsets, center_neighbors, piece_centers
            )
            endpoint_counts = segment_sums(endpoints_per_center, piece_lengths)
            piece = count_pair_wedges(
                piece_endpoints, positions, endpoint_counts, sub_batch, alive,
                filter_alive=filter_alive,
            )
            return piece, int(piece_endpoints.size)

        # record=False: the enclosing peel iteration (cd_peel_iteration /
        # parb_round) already accounts for this wedge work, and the recorded
        # regions must not depend on the thread count.
        results = context.map_chunks(
            list(range(sub_batch.shape[0])),
            chunk_body,
            name="peel_batch_gather",
            work_per_item=[float(w) for w in wedges_per_vertex],
            record=False,
        )
        decrements = BatchDecrements.concatenate([piece for piece, _ in results])
        wedges = sum(wedge_count for _, wedge_count in results)
        return decrements, wedges

    if range_starts is None:
        range_starts = center_offsets[centers]
        range_lengths = center_offsets[centers + 1] - range_starts
    if wedges_per_vertex is None:
        wedges_per_vertex = segment_sums(range_lengths, centers_per_vertex)
    endpoints = gather_ranges(center_neighbors, range_starts, range_lengths)
    positions = np.arange(sub_batch.shape[0], dtype=np.int64)
    return (
        count_pair_wedges(endpoints, positions, wedges_per_vertex, sub_batch, alive,
                          filter_alive=filter_alive),
        int(endpoints.size),
    )
