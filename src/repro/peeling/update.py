"""The support-update routine shared by every peeling algorithm.

Peeling a vertex ``u`` (Alg. 2, ``update``) traverses all wedges starting at
``u``, aggregates how many wedges reach each still-alive endpoint ``u'``
(their shared butterflies are ``C(wedges, 2)``) and decreases the support of
``u'`` by that amount, clamped from below at the tip number / range bound
being assigned to ``u``.

The routine is deliberately free of any priority-structure knowledge: the
caller receives the list of updated vertices and their new supports and
feeds its own heap, bucket queue or active-set tracker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dynamic import PeelableAdjacency

__all__ = ["SupportUpdate", "peel_vertex", "peel_batch"]


@dataclass(frozen=True)
class SupportUpdate:
    """Outcome of peeling one vertex or one batch of vertices.

    Attributes
    ----------
    updated_vertices:
        Vertices whose support was decreased (alive vertices only).
    new_supports:
        Their supports after the update (aligned with
        :attr:`updated_vertices`).
    wedges_traversed:
        Wedge endpoints touched, including stale entries left by disabled or
        pending DGM compaction — this is exactly the work the paper counts.
    support_updates:
        Number of support decrements applied.
    """

    updated_vertices: np.ndarray
    new_supports: np.ndarray
    wedges_traversed: int
    support_updates: int


def peel_vertex(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertex: int,
    threshold: int,
) -> SupportUpdate:
    """Peel a single vertex and update supports of its 2-hop neighbours.

    Parameters
    ----------
    adjacency:
        Mutable adjacency view; the vertex must already be marked peeled
        (callers mark first so that self-updates are impossible).
    supports:
        Current supports, modified in place.
    vertex:
        The vertex being peeled.
    threshold:
        Lower clamp for the updated supports: the tip number θ_u in exact
        peeling, or the range lower bound θ(i) in RECEIPT CD.
    """
    endpoints = adjacency.two_hop_multiset(vertex)
    wedges_traversed = int(endpoints.size)
    adjacency.record_traversal(wedges_traversed)
    if wedges_traversed == 0:
        return SupportUpdate(
            updated_vertices=np.zeros(0, dtype=np.int64),
            new_supports=np.zeros(0, dtype=np.int64),
            wedges_traversed=0,
            support_updates=0,
        )

    unique_endpoints, wedge_counts = np.unique(endpoints, return_counts=True)
    alive = adjacency.alive_mask()
    keep = alive[unique_endpoints] & (unique_endpoints != vertex) & (wedge_counts >= 2)
    unique_endpoints = unique_endpoints[keep]
    wedge_counts = wedge_counts[keep]
    if unique_endpoints.size == 0:
        return SupportUpdate(
            updated_vertices=np.zeros(0, dtype=np.int64),
            new_supports=np.zeros(0, dtype=np.int64),
            wedges_traversed=wedges_traversed,
            support_updates=0,
        )

    shared_butterflies = wedge_counts * (wedge_counts - 1) // 2
    new_supports = np.maximum(threshold, supports[unique_endpoints] - shared_butterflies)
    changed = new_supports < supports[unique_endpoints]
    unique_endpoints = unique_endpoints[changed]
    new_supports = new_supports[changed]
    supports[unique_endpoints] = new_supports

    return SupportUpdate(
        updated_vertices=unique_endpoints.astype(np.int64),
        new_supports=new_supports.astype(np.int64),
        wedges_traversed=wedges_traversed,
        support_updates=int(unique_endpoints.size),
    )


def peel_batch(
    adjacency: PeelableAdjacency,
    supports: np.ndarray,
    vertices: np.ndarray,
    threshold: int,
) -> SupportUpdate:
    """Peel a set of vertices "concurrently" (one CD / ParB round).

    All vertices are marked peeled *before* any update is computed, so
    updates between members of the batch are dropped — exactly the behaviour
    Lemma 2 relies on (updates to already-assigned vertices have no effect).
    The updates themselves are commutative support decrements, so applying
    them vertex-by-vertex is equivalent to the atomics-based parallel
    application in the C++ implementation.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    adjacency.mark_peeled_many(vertices)

    total_wedges = 0
    total_updates = 0
    touched: dict[int, int] = {}
    for vertex in vertices:
        update = peel_vertex(adjacency, supports, int(vertex), threshold)
        total_wedges += update.wedges_traversed
        total_updates += update.support_updates
        for updated_vertex, new_support in zip(update.updated_vertices, update.new_supports):
            touched[int(updated_vertex)] = int(new_support)
        adjacency.maybe_compact()

    if touched:
        updated_vertices = np.fromiter(touched.keys(), dtype=np.int64, count=len(touched))
        new_supports = np.fromiter(touched.values(), dtype=np.int64, count=len(touched))
    else:
        updated_vertices = np.zeros(0, dtype=np.int64)
        new_supports = np.zeros(0, dtype=np.int64)
    return SupportUpdate(
        updated_vertices=updated_vertices,
        new_supports=new_supports,
        wedges_traversed=total_wedges,
        support_updates=total_updates,
    )
