"""Tip-index serving layer: durable, queryable decomposition artifacts.

The compute side of the library (:mod:`repro.core`, :mod:`repro.engine`)
produces a :class:`~repro.peeling.base.TipDecompositionResult` by peeling —
an operation that costs seconds to hours.  This subsystem turns that result
into a read-optimized index that answers the paper's Sec. 6 use-case
queries (θ lookup, k-tip extraction, dense-community mining) in micro- to
milliseconds, without ever re-peeling:

* :mod:`repro.service.artifacts` — versioned on-disk artifact format:
  one uncompressed ``.npz`` of arrays plus a fingerprinted JSON manifest,
  written atomically and loaded zero-copy through ``mmap``.
* :mod:`repro.service.index` — :class:`TipIndex`, the in-memory query
  engine (θ-sorted permutation + level CSR) behind every endpoint.
* :mod:`repro.service.cache` — LRU cache of loaded indexes keyed by
  manifest fingerprint, with hit/miss/eviction metrics.
* :mod:`repro.service.server` — stdlib ``ThreadingHTTPServer`` JSON API
  plus :class:`TipService`, the transport-free request handler shared by
  the HTTP server and the offline ``repro query`` command.
* :mod:`repro.service.coalesce` — event-loop micro-batching: the
  θ-request coalescer and the bounded write-admission controller.
* :mod:`repro.service.aserver` — the asyncio front end: persistent
  HTTP/1.1 connections with pipelining, one vectorized batch lookup per
  event-loop tick, precomputed hot JSON, an NDJSON bulk protocol, and
  admission-controlled updates (``repro serve --transport async``).
* :mod:`repro.service.build` — ``build_index_artifact``: decompose (via
  the configured execution backend) and persist in one step.
* :mod:`repro.service.sharding` — θ-range shard planner (``repro
  shard-plan``) and :class:`ShardRouter`, the exact scatter/gather front
  end that answers bit-identically to the unsharded index.
* :mod:`repro.service.replication` — leader/follower replication of the
  ``POST /update`` stream: monotone-offset JSONL log, deterministic
  state-fingerprint chain, push + poll delivery, lag/staleness metrics.
"""

from __future__ import annotations

from .artifacts import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactManifest,
    TipArtifact,
    graph_fingerprint,
    load_artifact,
    read_manifest,
    save_artifact,
)
from .aserver import AsyncTipServer, serve_async, start_server_thread
from .build import build_index_artifact
from .cache import IndexCache
from .coalesce import ThetaCoalescer, UpdateAdmissionController
from .index import TipIndex
from .replication import ReplicationCoordinator, ReplicationLog, state_fingerprint
from .server import TipService, create_server, serve
from .sharding import ShardRouter, plan_shards, read_shard_plan, write_shard_plan

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactManifest",
    "TipArtifact",
    "TipIndex",
    "IndexCache",
    "TipService",
    "graph_fingerprint",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "build_index_artifact",
    "create_server",
    "serve",
    "AsyncTipServer",
    "ThetaCoalescer",
    "UpdateAdmissionController",
    "serve_async",
    "start_server_thread",
    "ShardRouter",
    "plan_shards",
    "read_shard_plan",
    "write_shard_plan",
    "ReplicationCoordinator",
    "ReplicationLog",
    "state_fingerprint",
]
