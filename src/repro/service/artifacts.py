"""Versioned on-disk artifacts for tip decompositions.

An artifact is a directory::

    my-index.tipidx/
      manifest.json   # versioned metadata + fingerprints (human-readable)
      arrays.npz      # uncompressed npz: tip numbers, θ-sorted order,
                      # level CSR, per-vertex butterflies, dual graph CSR

Design points:

* **Atomic save.**  The directory is assembled under a temporary name in
  the destination's parent and moved into place with ``os.replace``, so a
  crash mid-save can never leave a half-written artifact at the target
  path and readers only ever see complete directories.  An *overwrite*
  swap needs two renames (POSIX cannot exchange non-empty directories),
  leaving a microsecond window with no directory at the path; a failed
  promotion restores the old artifact, and the serving cache retries
  reads across the window (:mod:`repro.service.cache`).
* **mmap-backed load.**  ``arrays.npz`` is written *uncompressed*
  (``np.savez``), which makes it a plain zip of ``.npy`` members stored
  contiguously; the loader resolves each member's absolute data offset and
  maps it with ``np.memmap`` — loading a multi-GB index touches no array
  bytes until a query does.  Anything unexpected (compressed members,
  exotic dtypes) falls back to an eager ``np.load`` copy.
* **Fingerprints.**  The manifest records a SHA-256 fingerprint of the
  source graph's CSR structure and is itself fingerprinted (digest over the
  canonical manifest JSON).  The artifact fingerprint keys the serving
  cache; the graph fingerprint lets callers detect stale indexes
  (:class:`~repro.errors.ArtifactMismatchError`).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
import tempfile
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ArtifactError, ArtifactMismatchError
from ..graph.bipartite import BipartiteGraph
from ..peeling.base import PeelingCounters, TipDecompositionResult
from .index import level_csr, sorted_order

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "ARRAYS_FILENAME",
    "ArtifactManifest",
    "TipArtifact",
    "graph_fingerprint",
    "save_artifact",
    "load_artifact",
    "read_manifest",
]

ARTIFACT_FORMAT_VERSION = 1
MANIFEST_FILENAME = "manifest.json"
ARRAYS_FILENAME = "arrays.npz"

#: Arrays every version-1 artifact must carry.
REQUIRED_ARRAYS = (
    "tip_numbers",
    "initial_butterflies",
    "order",
    "level_values",
    "level_offsets",
    "u_offsets",
    "u_neighbors",
    "v_offsets",
    "v_neighbors",
)


def graph_fingerprint(graph: BipartiteGraph) -> str:
    """SHA-256 digest of a graph's structure (sizes + dual CSR bytes).

    Two graphs fingerprint equal iff they have identical vertex-set sizes
    and identical sorted adjacency — the exact precondition for an index
    built on one to be valid for the other.
    """
    digest = hashlib.sha256()
    digest.update(struct.pack("<qqq", graph.n_u, graph.n_v, graph.n_edges))
    arrays = graph.csr_arrays()
    for key in ("u_offsets", "u_neighbors", "v_offsets", "v_neighbors"):
        digest.update(np.ascontiguousarray(arrays[key], dtype=np.int64).tobytes())
    return digest.hexdigest()


def _manifest_digest(payload: dict) -> str:
    """Digest over the canonical JSON of a manifest dict (sans fingerprint)."""
    content = {key: value for key, value in payload.items() if key != "fingerprint"}
    canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ArtifactManifest:
    """Parsed ``manifest.json`` of one artifact."""

    format_version: int
    kind: str
    created_unix: float
    graph: dict
    decomposition: dict
    counters: dict
    phase_counters: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    streaming: dict = field(default_factory=dict)
    fingerprint: str = ""

    def as_dict(self) -> dict:
        """Manifest as the JSON-serialisable dict written to disk."""
        return {
            "format_version": self.format_version,
            "kind": self.kind,
            "created_unix": self.created_unix,
            "graph": self.graph,
            "decomposition": self.decomposition,
            "counters": self.counters,
            "phase_counters": self.phase_counters,
            "arrays": self.arrays,
            "summary": self.summary,
            "streaming": self.streaming,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, payload: dict, *, source: str = "") -> "ArtifactManifest":
        """Parse and validate a manifest dict read from ``manifest.json``."""
        try:
            manifest = cls(
                format_version=int(payload["format_version"]),
                kind=str(payload["kind"]),
                created_unix=float(payload["created_unix"]),
                graph=dict(payload["graph"]),
                decomposition=dict(payload["decomposition"]),
                counters=dict(payload["counters"]),
                phase_counters=dict(payload.get("phase_counters", {})),
                arrays=dict(payload.get("arrays", {})),
                summary=dict(payload.get("summary", {})),
                streaming=dict(payload.get("streaming", {})),
                fingerprint=str(payload.get("fingerprint", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact manifest {source or ''}: {exc}") from exc
        if manifest.format_version > ARTIFACT_FORMAT_VERSION:
            raise ArtifactError(
                f"artifact {source or ''} has format version {manifest.format_version}, "
                f"this library supports <= {ARTIFACT_FORMAT_VERSION}"
            )
        if manifest.kind != "tip-index":
            raise ArtifactError(
                f"artifact {source or ''} has kind {manifest.kind!r}, expected 'tip-index'"
            )
        return manifest

    @property
    def name(self) -> str:
        """Display name: graph name + decomposed side."""
        graph_name = str(self.graph.get("name") or "graph")
        return f"{graph_name}.{self.decomposition.get('side', '?')}"


@dataclass
class TipArtifact:
    """A loaded artifact: manifest plus (possibly mmap-backed) arrays."""

    path: Path
    manifest: ArtifactManifest
    arrays: dict[str, np.ndarray]
    mmapped: bool = False

    def to_result(self) -> TipDecompositionResult:
        """Reconstruct the decomposition result the artifact was saved from.

        Tip numbers, initial butterflies, algorithm name, side and the full
        counter set round-trip bit-identically; the heavyweight ``extra``
        payload (per-iteration records, parallel regions) is intentionally
        not persisted.
        """
        counter_fields = set(PeelingCounters.__dataclass_fields__)
        return TipDecompositionResult(
            tip_numbers=np.asarray(self.arrays["tip_numbers"], dtype=np.int64).copy(),
            side=self.manifest.decomposition["side"],
            initial_butterflies=np.asarray(
                self.arrays["initial_butterflies"], dtype=np.int64
            ).copy(),
            algorithm=str(self.manifest.decomposition.get("algorithm", "")),
            counters=PeelingCounters(**{
                key: value for key, value in self.manifest.counters.items()
                if key in counter_fields
            }),
            phase_counters={
                phase: PeelingCounters(**{
                    key: value for key, value in counters.items() if key in counter_fields
                })
                for phase, counters in self.manifest.phase_counters.items()
            },
        )


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def save_artifact(
    path: str | Path,
    graph: BipartiteGraph,
    result: TipDecompositionResult,
    *,
    config: dict | None = None,
    overwrite: bool = False,
    streaming: dict | None = None,
    center_butterflies: np.ndarray | None = None,
) -> ArtifactManifest:
    """Persist a decomposition (plus its graph CSR) as an artifact directory.

    Parameters
    ----------
    path:
        Destination directory (conventionally ``*.tipidx``).
    graph:
        The graph the decomposition was computed on; its dual CSR is stored
        so community queries need no other input, and its fingerprint is
        recorded for staleness checks.
    result:
        The decomposition to persist.
    config:
        Extra decomposition configuration to record in the manifest (peel
        kernel, execution backend, partition count ...).  Merged over what
        can be inferred from ``result.extra["config"]``.
    overwrite:
        Replace an existing artifact at ``path``.  Without it, an existing
        path raises :class:`~repro.errors.ArtifactError`.
    streaming:
        Staleness bookkeeping recorded when the artifact is refreshed by
        the streaming update engine (update/edge counters, last-update
        timestamp, the fingerprint the update stream started from).
    center_butterflies:
        Optional per-vertex butterfly counts of the *non*-decomposed side.
        When stored, streaming updates maintain them incrementally and a
        damage fallback can skip its global re-count phase.
    """
    path = Path(path)
    if result.tip_numbers.shape[0] != graph.side_size(result.side):
        raise ArtifactError(
            f"result has {result.tip_numbers.shape[0]} tip numbers but side "
            f"{result.side!r} of the graph has {graph.side_size(result.side)} vertices"
        )
    if path.exists() and not overwrite:
        raise ArtifactError(
            f"artifact path {path} already exists; pass overwrite=True to replace it"
        )

    order = sorted_order(result.tip_numbers)
    level_values, level_offsets = level_csr(result.tip_numbers[order])
    csr = graph.csr_arrays()
    arrays: dict[str, np.ndarray] = {
        "tip_numbers": np.ascontiguousarray(result.tip_numbers, dtype=np.int64),
        "initial_butterflies": np.ascontiguousarray(result.initial_butterflies, dtype=np.int64),
        "order": order,
        "level_values": level_values,
        "level_offsets": level_offsets,
        **{key: np.ascontiguousarray(value, dtype=np.int64) for key, value in csr.items()},
    }
    if center_butterflies is not None:
        arrays["center_butterflies"] = np.ascontiguousarray(center_butterflies, dtype=np.int64)

    decomposition = {
        "algorithm": result.algorithm,
        "side": result.side,
    }
    embedded_config = result.extra.get("config") if isinstance(result.extra, dict) else None
    if embedded_config is not None and hasattr(embedded_config, "__dataclass_fields__"):
        for key in ("peel_kernel", "backend", "n_partitions", "n_threads"):
            if hasattr(embedded_config, key):
                decomposition[key] = getattr(embedded_config, key)
    if config:
        # None means "caller didn't specify" — never clobber a value
        # resolved from the result's embedded config with it.
        decomposition.update(
            {key: value for key, value in config.items() if value is not None}
        )

    payload = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "kind": "tip-index",
        "created_unix": time.time(),
        "graph": {
            "name": graph.name,
            "n_u": graph.n_u,
            "n_v": graph.n_v,
            "n_edges": graph.n_edges,
            "fingerprint": graph_fingerprint(graph),
        },
        "decomposition": decomposition,
        "counters": result.counters.as_dict(),
        "phase_counters": {
            phase: counters.as_dict() for phase, counters in result.phase_counters.items()
        },
        "arrays": {
            key: {"dtype": str(value.dtype), "shape": list(value.shape)}
            for key, value in arrays.items()
        },
        # Pre-computed so /stats can answer without loading the arrays.
        "summary": {
            "n_vertices": int(arrays["tip_numbers"].shape[0]),
            "max_tip_number": int(level_values[-1]) if level_values.size else 0,
            "n_levels": int(level_values.shape[0]),
        },
        "streaming": dict(streaming or {}),
    }
    payload["fingerprint"] = _manifest_digest(payload)

    path.parent.mkdir(parents=True, exist_ok=True)
    staging = Path(tempfile.mkdtemp(dir=path.parent, prefix=f".{path.name}.tmp-"))
    # mkdtemp creates 0o700 directories; honour the umask instead so the
    # promoted artifact is readable by whoever will serve it.
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(staging, 0o777 & ~umask)
    try:
        # np.savez (no compression) keeps members mmap-able on load.
        np.savez(staging / ARRAYS_FILENAME, **arrays)
        manifest_text = json.dumps(payload, indent=2, sort_keys=True)
        (staging / MANIFEST_FILENAME).write_text(manifest_text, encoding="utf-8")
        if path.exists():
            # Swap: move the old artifact aside, promote the new one, then
            # drop the old.  Readers race against complete directories only.
            graveyard = Path(tempfile.mkdtemp(dir=path.parent, prefix=f".{path.name}.old-"))
            displaced = graveyard / "artifact"
            os.replace(path, displaced)
            try:
                os.replace(staging, path)
            except BaseException:
                # Promotion failed: put the old artifact back so the target
                # path never ends up empty.
                os.replace(displaced, path)
                raise
            finally:
                shutil.rmtree(graveyard, ignore_errors=True)
        else:
            os.replace(staging, path)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return ArtifactManifest.from_dict(payload, source=str(path))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def read_manifest(path: str | Path) -> ArtifactManifest:
    """Read and validate only the manifest of an artifact (cheap)."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ArtifactError(f"no artifact at {path} (missing {MANIFEST_FILENAME})") from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"cannot read artifact manifest {manifest_path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"artifact manifest {manifest_path} is not a JSON object")
    return ArtifactManifest.from_dict(payload, source=str(path))


def _npz_member_offsets(path: Path) -> dict[str, tuple[int, tuple, np.dtype, bool]]:
    """Absolute data offset, shape, dtype and order of every npz member.

    An uncompressed npz is a zip of ``.npy`` files.  For each member the
    zip central directory gives the local-header offset; the local header
    (30 fixed bytes + filename + extra field, whose lengths live at bytes
    26..30) gives the ``.npy`` start, and the parsed npy header gives the
    payload start — the offset ``np.memmap`` needs.
    """
    members: dict[str, tuple[int, tuple, np.dtype, bool]] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ArtifactError(f"npz member {info.filename} is compressed")
            with archive.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(member)
                else:
                    raise ArtifactError(f"unsupported npy version {version}")
                npy_header_size = member.tell()
            if dtype.hasobject:
                raise ArtifactError(f"npz member {info.filename} holds objects")
            # Local-header filename/extra lengths can differ from the
            # central directory's; read them from the local header itself.
            raw.seek(info.header_offset + 26)
            name_length, extra_length = struct.unpack("<HH", raw.read(4))
            data_offset = info.header_offset + 30 + name_length + extra_length + npy_header_size
            key = info.filename[:-4] if info.filename.endswith(".npy") else info.filename
            members[key] = (data_offset, shape, dtype, fortran)
    return members


def _load_arrays_mmap(path: Path) -> dict[str, np.ndarray]:
    """Map every member of an uncompressed npz without copying."""
    arrays: dict[str, np.ndarray] = {}
    for key, (offset, shape, dtype, fortran) in _npz_member_offsets(path).items():
        if int(np.prod(shape)) == 0:
            arrays[key] = np.zeros(shape, dtype=dtype)
            continue
        arrays[key] = np.memmap(
            path, dtype=dtype, mode="r", offset=offset, shape=shape,
            order="F" if fortran else "C",
        )
    return arrays


def _load_arrays_eager(path: Path) -> dict[str, np.ndarray]:
    with np.load(path) as payload:
        return {key: payload[key].copy() for key in payload.files}


def load_artifact(
    path: str | Path,
    *,
    mmap: bool = True,
    expected_graph: BipartiteGraph | None = None,
    expected_fingerprint: str | None = None,
) -> TipArtifact:
    """Load an artifact: validated manifest plus its arrays.

    Parameters
    ----------
    mmap:
        Map arrays directly from ``arrays.npz`` (zero-copy, lazy paging)
        instead of reading them into memory.  Falls back to an eager load
        if the file layout defeats mapping.
    expected_graph:
        When given, the artifact's recorded graph fingerprint must match
        this graph's (:class:`~repro.errors.ArtifactMismatchError`
        otherwise) — the guard against serving a stale index after the
        graph changed.
    expected_fingerprint:
        When given, the manifest fingerprint must match exactly.
    """
    path = Path(path)
    manifest = read_manifest(path)

    if expected_fingerprint is not None and manifest.fingerprint != expected_fingerprint:
        raise ArtifactMismatchError(
            f"artifact {path} has fingerprint {manifest.fingerprint[:12]}..., "
            f"expected {expected_fingerprint[:12]}..."
        )
    if expected_graph is not None:
        expected = graph_fingerprint(expected_graph)
        recorded = str(manifest.graph.get("fingerprint", ""))
        if recorded != expected:
            raise ArtifactMismatchError(
                f"artifact {path} was built for a different graph: recorded "
                f"graph fingerprint {recorded[:12]}... != expected {expected[:12]}... "
                "(rebuild the index with `repro build-index`)"
            )

    arrays_path = path / ARRAYS_FILENAME
    if not arrays_path.is_file():
        raise ArtifactError(f"artifact {path} is missing {ARRAYS_FILENAME}")
    mmapped = False
    if mmap:
        try:
            arrays = _load_arrays_mmap(arrays_path)
            mmapped = True
        except (ArtifactError, OSError, ValueError, zipfile.BadZipFile):
            arrays = None  # fall through to the eager path
    else:
        arrays = None
    if arrays is None:
        try:
            arrays = _load_arrays_eager(arrays_path)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise ArtifactError(f"cannot read arrays from {arrays_path}: {exc}") from exc

    missing = [key for key in REQUIRED_ARRAYS if key not in arrays]
    if missing:
        raise ArtifactError(f"artifact {path} is missing arrays: {', '.join(missing)}")
    declared = manifest.arrays
    for key in REQUIRED_ARRAYS:
        meta = declared.get(key)
        if meta is not None and list(arrays[key].shape) != list(meta.get("shape", [])):
            raise ArtifactError(
                f"artifact {path} array {key!r} has shape {list(arrays[key].shape)} "
                f"but the manifest declares {meta.get('shape')}"
            )
    return TipArtifact(path=path, manifest=manifest, arrays=arrays, mmapped=mmapped)
