"""Asyncio batch-coalescing HTTP front end for the tip service.

The threaded transport (:mod:`repro.service.server`) pays the full
parse → route → manifest read → gather → serialize round trip *per
request*; against an index that answers batched θ-lookups at tens of
millions per second, transport overhead is the whole cost.  This front
end closes the gap like an inference-serving batcher:

* **persistent connections** — a hand-rolled HTTP/1.1 protocol layer over
  ``asyncio.start_server``: keep-alive by default, pipelining supported
  (requests are parsed as fast as they arrive; responses are written back
  in order by a per-connection writer task).
* **micro-batching** — concurrent point-θ requests across *all*
  connections coalesce into one vectorized ``TipIndex`` gather per
  event-loop tick (:class:`~repro.service.coalesce.ThetaCoalescer`, with
  ``max_batch`` / ``max_delay`` knobs).
* **precomputed hot JSON** — ``/healthz`` bytes are rendered once per
  health state (``ok``/``degraded``, from the SLO monitor); bare
  ``/stats`` responses are cached for a short TTL so monitoring polls
  never touch an artifact (pass any query parameter, e.g.
  ``/stats?fresh=1``, to bypass the cache).
* **bulk protocol** — ``POST /theta/batch`` with
  ``Content-Type: application/x-ndjson`` treats every body line as one
  batch request and streams back one JSON answer per line.
* **admission-controlled writes** — ``POST /update`` runs on a single
  writer thread behind a bounded queue
  (:class:`~repro.service.coalesce.UpdateAdmissionController`); overflow
  answers 503 + ``Retry-After`` immediately, so a write burst never
  stalls the coalesced read pipeline.

Routing stays :meth:`~repro.service.server.TipService.handle` (the θ fast
path goes through its vectorized twin
:meth:`~repro.service.server.TipService.theta_payloads`), so offline,
threaded, and async answers are byte-for-byte identical — the serving
benchmark asserts exactly that.  That fall-through also covers the
sharded query surface and the replication plane for free; the one
blocking replication route (``POST /replication/apply`` replays a
streaming repair) hops to the default executor so the event loop keeps
serving reads while a follower catches up.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError, ServiceError
from .coalesce import DEFAULT_MAX_BATCH, ThetaCoalescer, UpdateAdmissionController
from .resilience import Deadline
from .server import (
    MAX_REQUEST_BODY_BYTES,
    METRICS_CONTENT_TYPE,
    TipService,
    error_payload,
    parse_post_body,
    to_jsonable,
)

__all__ = ["AsyncTipServer", "AsyncServerHandle", "serve_async", "start_server_thread"]

#: Reason phrases for the statuses the service actually emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Content Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Cap on queued-but-unwritten responses per connection; a client
#: pipelining deeper than this is back-pressured at the read loop.
_PIPELINE_DEPTH = 1024

_MAX_HEADERS = 100


class _BadRequest(ServiceError):
    """Protocol-level failure: answered, then the connection is closed."""


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(to_jsonable(payload)).encode("utf-8")


class AsyncTipServer:
    """Event-loop transport over a :class:`TipService`.

    Lifecycle: construct (off-loop is fine), ``await start()`` on the
    serving loop, ``await serve_forever()``; ``request_stop()`` (loop) or
    :class:`AsyncServerHandle` (other threads) end it; ``await close()``
    tears down connections and the writer thread.
    """

    def __init__(
        self,
        artifact_paths=None,
        *,
        service: TipService | None = None,
        host: str = "127.0.0.1",
        port: int = 8750,
        cache_capacity: int = 8,
        mmap: bool = True,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = 0.0,
        max_pending_updates: int = 4,
        retry_after_seconds: float = 1.0,
        stats_cache_seconds: float = 0.05,
        shards: int | None = None,
        quiet: bool = True,
    ):
        if service is None:
            service = TipService(
                artifact_paths or [], cache_capacity=cache_capacity, mmap=mmap,
                shards=shards)
        self.service = service
        self.host = host
        self.port = int(port)
        self.quiet = quiet
        self.stats_cache_seconds = float(stats_cache_seconds)
        self.coalescer = ThetaCoalescer(
            service, max_batch=max_batch, max_delay=max_delay)
        self.admission = UpdateAdmissionController(
            service, max_pending=max_pending_updates,
            retry_after_seconds=retry_after_seconds)
        # /stats observability for the new layer, via the shared service.
        service.transport_metrics["coalescer"] = self.coalescer.metrics
        service.transport_metrics["updates"] = self.admission.metrics
        # Hot JSON: the /healthz payload is a pure function of the served
        # artifact set (fixed for the server's lifetime) and the SLO
        # health state, so one rendered body per state suffices.
        self._healthz_bodies: dict[str, bytes] = {}
        self._stats_cache: tuple[float, bytes] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (``port=0`` picks a free port)."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, reuse_address=True)

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)``; valid after :meth:`start`."""
        assert self._server is not None, "call start() first"
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop` is called."""
        assert self._stop_event is not None, "call start() first"
        await self._stop_event.wait()

    def request_stop(self) -> None:
        """End :meth:`serve_forever`; must be called on the serving loop."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def close(self) -> None:
        """Stop listening and cancel every open connection task."""
        if self._server is not None:
            self._server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        self.admission.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(self, reader, writer) -> None:
        # Deliberately a plain (non-coroutine) callback: asyncio.streams
        # attaches a done-callback to coroutine callbacks that calls
        # task.exception(), which logs a spurious error for every
        # connection task cancelled at shutdown.  Spawning the task here
        # means we own it outright.
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, TimeoutError):
            pass  # client went away mid-request
        finally:
            writer.close()

    async def _serve_connection(self, reader, writer) -> None:
        # Reader/writer split: the read loop parses requests as fast as the
        # socket delivers them and enqueues a response *slot* per request;
        # the writer task resolves slots in order.  A burst of pipelined
        # point-θ requests is therefore fully parsed — and lands in one
        # coalescer batch — before any response is awaited.
        queue: asyncio.Queue = asyncio.Queue(maxsize=_PIPELINE_DEPTH)
        writer_task = asyncio.create_task(self._drain_responses(queue, writer))
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    await queue.put((self._render_error(error, close=True), True))
                    break
                if request is None:
                    break  # EOF
                item, close = self._dispatch(*request)
                await queue.put((item, close))
                if close:
                    break
        finally:
            try:
                queue.put_nowait(None)
            except asyncio.QueueFull:
                writer_task.cancel()
            try:
                await writer_task
            except asyncio.CancelledError:
                writer_task.cancel()
                raise
            except Exception:
                writer_task.cancel()

    async def _drain_responses(self, queue: asyncio.Queue, writer) -> None:
        # On a write failure the loop keeps *consuming* slots (so a read
        # loop blocked on a full queue is never deadlocked, and pending
        # coalescer futures are still awaited) — it just stops writing.
        broken = False
        while True:
            item = await queue.get()
            if item is None:
                break
            payload, close = item
            if not isinstance(payload, (bytes, bytearray)):
                try:
                    payload = await payload
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # a response slot must never die
                    payload = self._render(
                        500, _json_bytes(error_payload(error, status=500)),
                        close=True)
                    close = True
            if not broken:
                try:
                    writer.write(payload)
                    if queue.empty():
                        await writer.drain()  # one syscall per pipelined burst
                except (ConnectionError, RuntimeError):
                    broken = True
            if close:
                break

    async def _read_request(self, reader):
        """Parse one HTTP/1.1 request; None on clean EOF."""
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _BadRequest("request line too long") from None
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                continue  # stray CRLF between pipelined requests (RFC 9112)
            break
        parts = line.split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, version = parts
        if version not in (b"HTTP/1.1", b"HTTP/1.0"):
            raise _BadRequest(f"unsupported protocol {version.decode('latin-1')!r}")
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                header_line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _BadRequest("header line too long") from None
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, separator, value = header_line.decode("latin-1").partition(":")
            if not separator:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        try:
            content_length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if content_length < 0:
            raise _BadRequest("malformed Content-Length")
        if content_length > MAX_REQUEST_BODY_BYTES:
            # The unread body would desynchronise the stream; 413 + close.
            raise _BadRequest(
                f"request body of {content_length} bytes exceeds the "
                f"{MAX_REQUEST_BODY_BYTES}-byte cap", status=413)
        body = b""
        if content_length:
            try:
                body = await reader.readexactly(content_length)
            except asyncio.IncompleteReadError:
                return None
        connection = headers.get("connection", "").lower()
        keep_alive = (
            connection != "close"
            if version == b"HTTP/1.1"
            else connection == "keep-alive"
        )
        return (
            method.decode("latin-1").upper(),
            target.decode("latin-1"),
            headers,
            body,
            keep_alive,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, method, target, headers, body, keep_alive):
        """One request → (response bytes | awaitable of bytes, close flag).

        Wraps the routing core with latency observation.  Deferred
        responses (coalesced θ lookups, admitted updates) are observed
        when their awaitable resolves, so the recorded latency includes
        the coalescer/admission wait — the number a client actually sees.
        """
        started = time.perf_counter()
        item, close = self._dispatch_inner(method, target, headers, body, keep_alive)
        route = urlsplit(target).path.rstrip("/") or "/"
        if isinstance(item, (bytes, bytearray)):
            # Rendered responses lead with b"HTTP/1.1 NNN ..."; slicing the
            # status back out beats threading it through every return site.
            self.service.observe_request(
                "async", route, int(item[9:12]),
                time.perf_counter() - started, quiet=self.quiet)
            return item, close
        return self._observed(item, route, started), close

    async def _observed(self, item, route: str, started: float) -> bytes:
        payload = await item
        self.service.observe_request(
            "async", route, int(payload[9:12]),
            time.perf_counter() - started, quiet=self.quiet)
        return payload

    def _dispatch_inner(self, method, target, headers, body, keep_alive):
        close = not keep_alive
        parsed = urlsplit(target)
        params = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        route = parsed.path.rstrip("/") or "/"
        service = self.service
        try:
            if method == "GET":
                if route == "/metrics":
                    service.count_requests("/metrics")
                    return self._render(
                        200, service.metrics_text().encode("utf-8"),
                        close=close, content_type=METRICS_CONTENT_TYPE), close
                if route == "/healthz":
                    service.count_requests("/healthz")
                    status = service.slo.evaluate()["status"]
                    body = self._healthz_bodies.get(status)
                    if body is None:
                        body = _json_bytes(
                            {"status": status, "artifacts": service.artifact_names})
                        self._healthz_bodies[status] = body
                    return self._render(200, body, close=close), close
                if route == "/debug/profile":
                    # Sampling blocks for up to MAX_PROFILE_SECONDS; run it
                    # on the executor so the event loop keeps serving.
                    task = asyncio.get_running_loop().create_task(
                        self._profile_response(params, close))
                    return task, close
                if route == "/stats" and not params and self.stats_cache_seconds > 0:
                    return self._render(200, self._stats_body(), close=close), close
                if route == "/theta":
                    raw = params.get("vertex")
                    vertex = None
                    if raw is not None:
                        try:
                            vertex = int(raw)
                        except (TypeError, ValueError):
                            vertex = None  # handle() produces the exact 400
                    deadline = None
                    if vertex is not None and "deadline_ms" in params:
                        try:
                            deadline = Deadline.from_params(params)
                        except ServiceError:
                            vertex = None  # handle() produces the exact 400
                    if vertex is not None:
                        future = self.coalescer.submit(
                            params.get("artifact"), vertex, deadline=deadline)
                        return self._theta_response(future, close), close
                payload = service.handle(route, params, None)
                return self._render(200, _json_bytes(payload), close=close), close
            if method == "POST":
                if route == "/update":
                    parsed_body = parse_post_body(body)
                    task = asyncio.get_running_loop().create_task(
                        self._update_response(params, parsed_body, close))
                    return task, close
                if route == "/replication/apply":
                    # Replaying a record runs a full streaming repair;
                    # like /debug/profile, it must not block the loop.
                    parsed_body = parse_post_body(body)
                    task = asyncio.get_running_loop().create_task(
                        self._replication_response(params, parsed_body, close))
                    return task, close
                content_type = headers.get("content-type", "")
                if (route == "/theta/batch"
                        and content_type.split(";")[0].strip().lower()
                        == "application/x-ndjson"):
                    return self._render(
                        200, self._ndjson_batch(params, body), close=close,
                        content_type="application/x-ndjson"), close
                payload = service.handle(route, params, parse_post_body(body))
                return self._render(200, _json_bytes(payload), close=close), close
            raise ServiceError(
                f"method {method} not allowed; use GET or POST", status=405)
        except ServiceError as error:
            return self._render_error(error, close=close), close
        except ReproError as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=close), close
        except Exception as error:  # a handler bug must not kill the loop
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=True), True

    async def _theta_response(self, future: asyncio.Future, close: bool) -> bytes:
        try:
            payload = await future
        except ServiceError as error:
            return self._render_error(error, close=close)
        except Exception as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=True)
        # Byte-identical to json.dumps({"vertex": v, "theta": t}) without
        # the serializer round trip — this is the hot path.
        body = b'{"vertex": %d, "theta": %d}' % (payload["vertex"], payload["theta"])
        return self._render(200, body, close=close)

    async def _profile_response(self, params: dict, close: bool) -> bytes:
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                None, lambda: self.service.handle("/debug/profile", params, None))
        except ServiceError as error:
            return self._render_error(error, close=close)
        except ReproError as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=close)
        except Exception as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=True)
        return self._render(200, _json_bytes(payload), close=close)

    async def _replication_response(self, params: dict, body: dict, close: bool) -> bytes:
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                None,
                lambda: self.service.handle("/replication/apply", params, body))
        except ServiceError as error:
            return self._render_error(error, close=close)
        except ReproError as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=close)
        except Exception as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=True)
        return self._render(200, _json_bytes(payload), close=close)

    async def _update_response(self, params: dict, body: dict, close: bool) -> bytes:
        try:
            payload = await self.admission.submit(params, body)
        except ServiceError as error:  # includes 503 ServiceOverloadedError
            return self._render_error(error, close=close)
        except ReproError as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=close)
        except Exception as error:
            return self._render(
                500, _json_bytes(error_payload(error, status=500)), close=True)
        return self._render(200, _json_bytes(payload), close=close)

    def _stats_body(self) -> bytes:
        now = time.monotonic()
        cached = self._stats_cache
        if cached is not None and now - cached[0] < self.stats_cache_seconds:
            self.service.count_requests("/stats")
            return cached[1]
        body = _json_bytes(self.service.handle("/stats"))
        self._stats_cache = (now, body)
        return body

    def _ndjson_batch(self, params: dict, raw: bytes) -> bytes:
        """NDJSON bulk protocol: one /theta/batch request per body line."""
        lines = [line for line in raw.split(b"\n") if line.strip()]
        if not lines:
            raise ServiceError("NDJSON body carries no request lines")
        rendered = []
        for line in lines:
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                rendered.append(_json_bytes(error_payload(
                    ServiceError("NDJSON line is not valid JSON"))))
                continue
            body = {"vertices": entry} if isinstance(entry, list) else entry
            if not isinstance(body, dict):
                rendered.append(_json_bytes(error_payload(
                    ServiceError("NDJSON line must be a JSON object or array"))))
                continue
            try:
                payload = self.service.handle("/theta/batch", params, body)
            except ServiceError as error:
                rendered.append(_json_bytes(error_payload(error)))
                continue
            rendered.append(_json_bytes(payload))
        return b"\n".join(rendered) + b"\n"

    # ------------------------------------------------------------------
    # Response rendering
    # ------------------------------------------------------------------
    def _render(self, status: int, body: bytes, *, close: bool = False,
                content_type: str = "application/json",
                extra_headers=None) -> bytes:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if extra_headers:
            for name, value in extra_headers:
                head += f"{name}: {value}\r\n"
        if close:
            head += "Connection: close\r\n"
        return head.encode("latin-1") + b"\r\n" + body

    def _render_error(self, error: Exception, *, close: bool) -> bytes:
        payload = error_payload(error)
        extra = None
        retry_after = payload.get("retry_after_seconds")
        if retry_after is not None:
            extra = (("Retry-After", str(max(1, round(retry_after)))),)
        return self._render(payload["status"], _json_bytes(payload),
                            close=close, extra_headers=extra)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def _serve_until_stopped(server: AsyncTipServer, *,
                               ready_event: threading.Event | None) -> None:
    await server.start()
    host, port = server.address
    if not server.quiet:
        names = server.service.artifact_names
        print(f"serving {len(names)} artifact(s) ({', '.join(names)}) "
              f"on http://{host}:{port} [transport=async]")
    if ready_event is not None:
        ready_event.set()
    try:
        await server.serve_forever()
    finally:
        await server.close()


def serve_async(
    artifact_paths,
    *,
    host: str = "127.0.0.1",
    port: int = 8750,
    cache_capacity: int = 8,
    mmap: bool = True,
    quiet: bool = False,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_delay: float = 0.0,
    max_pending_updates: int = 4,
    shards: int | None = None,
    service: TipService | None = None,
    ready_event: threading.Event | None = None,
) -> None:
    """Serve artifacts on the async transport until interrupted.

    The body of ``repro serve --transport async``.
    """
    server = AsyncTipServer(
        artifact_paths,
        service=service,
        host=host,
        port=port,
        cache_capacity=cache_capacity,
        mmap=mmap,
        max_batch=max_batch,
        max_delay=max_delay,
        max_pending_updates=max_pending_updates,
        shards=shards,
        quiet=quiet,
    )
    try:
        asyncio.run(_serve_until_stopped(server, ready_event=ready_event))
    except KeyboardInterrupt:
        pass


class AsyncServerHandle:
    """A running async server on a background thread (tests/benchmarks)."""

    def __init__(self, server: AsyncTipServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def service(self) -> TipService:
        """The :class:`TipService` behind the running server."""
        return self.server.service

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the background server."""
        return self.server.address

    @property
    def base_url(self) -> str:
        """``http://host:port`` for plain-URL clients."""
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread."""
        self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout)


def start_server_thread(
    artifact_paths=None,
    *,
    service: TipService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_capacity: int = 8,
    mmap: bool = True,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_delay: float = 0.0,
    max_pending_updates: int = 4,
    retry_after_seconds: float = 1.0,
    stats_cache_seconds: float = 0.05,
    quiet: bool = True,
) -> AsyncServerHandle:
    """Start an :class:`AsyncTipServer` on a daemon thread and wait for bind."""
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        """Thread target: own the event loop for the server's lifetime."""

        async def main() -> None:
            """Build, start and run the server inside the thread's loop."""
            server = AsyncTipServer(
                artifact_paths,
                service=service,
                host=host,
                port=port,
                cache_capacity=cache_capacity,
                mmap=mmap,
                max_batch=max_batch,
                max_delay=max_delay,
                max_pending_updates=max_pending_updates,
                retry_after_seconds=retry_after_seconds,
                stats_cache_seconds=stats_cache_seconds,
                quiet=quiet,
            )
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            try:
                await server.serve_forever()
            finally:
                await server.close()

        try:
            asyncio.run(main())
        except Exception as error:  # surface startup failures to the caller
            box.setdefault("error", error)
            started.set()

    thread = threading.Thread(target=runner, daemon=True, name="tip-aserver")
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("async server did not start within 30s")
    if "error" in box:
        raise box["error"]
    return AsyncServerHandle(box["server"], box["loop"], thread)
