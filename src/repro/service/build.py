"""Build a tip-index artifact: decompose (on the configured execution
backend) and persist in one step.

This is the write path of the serving layer and the body of the
``repro build-index`` command.  The decomposition itself delegates to
:func:`repro.core.receipt.tip_decomposition`, so RECEIPT builds run on any
of the execution-engine backends (serial / thread / multiprocess
shared-memory pool) from :mod:`repro.engine`.  Butterfly counts are
computed once up front and both sides are persisted: the decomposed side as
the index's ``initial_butterflies``, the other side as
``center_butterflies`` so streaming updates (:mod:`repro.streaming`) can
maintain both incrementally and skip global re-counts.
"""

from __future__ import annotations

from pathlib import Path

from ..butterfly.counting import count_per_vertex
from ..core.receipt import tip_decomposition
from ..graph.bipartite import BipartiteGraph, opposite_side, validate_side
from ..kernels.workspace import WedgeWorkspace, resolve_wedge_budget
from .artifacts import ArtifactManifest, save_artifact

__all__ = ["build_index_artifact"]


def build_index_artifact(
    graph: BipartiteGraph,
    path: str | Path,
    *,
    side: str = "U",
    algorithm: str = "receipt",
    peel_kernel: str = "batched",
    backend: str = "serial",
    n_threads: int = 1,
    n_partitions: int | None = None,
    wedge_budget: int | None = None,
    overwrite: bool = False,
) -> ArtifactManifest:
    """Decompose ``side`` of ``graph`` and save the result as an artifact.

    ``backend`` / ``n_threads`` / ``n_partitions`` configure RECEIPT's
    execution engine and are ignored (but still recorded in the manifest)
    for the sequential baselines, mirroring the CLI's ``decompose``
    semantics.  ``wedge_budget`` caps the wedge pipeline's per-chunk
    scratch for every phase of the build (``None`` = library default,
    ``<= 0`` = unbounded); the run's ``peak_scratch_bytes`` lands in the
    manifest counters and is served by ``/stats``.  Returns the written
    manifest.
    """
    side = validate_side(side)
    workspace = WedgeWorkspace(wedge_budget=resolve_wedge_budget(wedge_budget))
    counts = count_per_vertex(graph, workspace=workspace)
    kwargs: dict = {"peel_kernel": peel_kernel, "counts": counts}
    if algorithm.lower().startswith("receipt"):
        kwargs["n_threads"] = n_threads
        kwargs["backend"] = backend
        kwargs["wedge_budget"] = wedge_budget
        if n_partitions is not None:
            kwargs["n_partitions"] = n_partitions
    else:
        kwargs["workspace"] = workspace
    result = tip_decomposition(graph, side, algorithm=algorithm, **kwargs)
    result.counters.peak_scratch_bytes = max(
        result.counters.peak_scratch_bytes, workspace.peak_scratch_bytes
    )
    return save_artifact(
        path,
        graph,
        result,
        config={
            "algorithm": result.algorithm,
            "peel_kernel": peel_kernel,
            "backend": backend,
            "n_threads": n_threads,
            "n_partitions": n_partitions,
            "wedge_budget": wedge_budget,
        },
        overwrite=overwrite,
        center_butterflies=counts.counts(opposite_side(side)),
    )
