"""Build a tip-index artifact: decompose (on the configured execution
backend) and persist in one step.

This is the write path of the serving layer and the body of the
``repro build-index`` command.  The decomposition itself delegates to
:func:`repro.core.receipt.tip_decomposition`, so RECEIPT builds run on any
of the execution-engine backends (serial / thread / multiprocess
shared-memory pool) from :mod:`repro.engine`.  Butterfly counts are
computed once up front and both sides are persisted: the decomposed side as
the index's ``initial_butterflies``, the other side as
``center_butterflies`` so streaming updates (:mod:`repro.streaming`) can
maintain both incrementally and skip global re-counts.
"""

from __future__ import annotations

from pathlib import Path

from ..butterfly.counting import count_per_vertex
from ..core.receipt import tip_decomposition
from ..graph.bipartite import BipartiteGraph, opposite_side, validate_side
from .artifacts import ArtifactManifest, save_artifact

__all__ = ["build_index_artifact"]


def build_index_artifact(
    graph: BipartiteGraph,
    path: str | Path,
    *,
    side: str = "U",
    algorithm: str = "receipt",
    peel_kernel: str = "batched",
    backend: str = "serial",
    n_threads: int = 1,
    n_partitions: int | None = None,
    overwrite: bool = False,
) -> ArtifactManifest:
    """Decompose ``side`` of ``graph`` and save the result as an artifact.

    ``backend`` / ``n_threads`` / ``n_partitions`` configure RECEIPT's
    execution engine and are ignored (but still recorded in the manifest)
    for the sequential baselines, mirroring the CLI's ``decompose``
    semantics.  Returns the written manifest.
    """
    side = validate_side(side)
    counts = count_per_vertex(graph)
    kwargs: dict = {"peel_kernel": peel_kernel, "counts": counts}
    if algorithm.lower().startswith("receipt"):
        kwargs["n_threads"] = n_threads
        kwargs["backend"] = backend
        if n_partitions is not None:
            kwargs["n_partitions"] = n_partitions
    result = tip_decomposition(graph, side, algorithm=algorithm, **kwargs)
    return save_artifact(
        path,
        graph,
        result,
        config={
            "algorithm": result.algorithm,
            "peel_kernel": peel_kernel,
            "backend": backend,
            "n_threads": n_threads,
            "n_partitions": n_partitions,
        },
        overwrite=overwrite,
        center_butterflies=counts.counts(opposite_side(side)),
    )
