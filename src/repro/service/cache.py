"""LRU cache of loaded tip indexes, keyed by artifact fingerprint.

The serving layer's working set is "the handful of indexes traffic is
currently hitting"; everything else should stay on disk.  Keys are manifest
fingerprints rather than paths, which buys two properties for free:

* rebuilding an artifact in place (new fingerprint) naturally invalidates
  the cached index — no TTLs, no mtime heuristics;
* the same index reached through two paths (copies, symlinks, bind
  mounts) occupies one cache slot.

A cheap manifest read resolves path → fingerprint on every request; the
expensive part (mapping arrays, rebuilding the graph) only runs on a miss.
All operations are thread-safe — the HTTP server calls into one shared
cache from many handler threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path

from ..errors import ArtifactError
from .artifacts import load_artifact, read_manifest
from .index import TipIndex

__all__ = ["IndexCache"]

#: A concurrent in-place rebuild (`save_artifact(overwrite=True)`) swaps the
#: artifact directory with two renames; a reader landing in that
#: microsecond window sees a missing path or a manifest/arrays mismatch.
#: One short retry heals it.
_SWAP_RETRIES = 3
_SWAP_RETRY_SECONDS = 0.05


class IndexCache:
    """Bounded, thread-safe, fingerprint-keyed LRU of :class:`TipIndex`."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._entries: "OrderedDict[str, TipIndex]" = OrderedDict()
        self._path_fingerprints: dict[str, str] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of indexes kept resident."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str) -> TipIndex | None:
        """Return the cached index for a fingerprint, marking it most-recent."""
        with self._lock:
            index = self._entries.get(fingerprint)
            if index is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return index

    def peek(self, fingerprint: str) -> bool:
        """Whether a fingerprint is cached, without touching LRU order/metrics."""
        with self._lock:
            return fingerprint in self._entries

    def put(self, fingerprint: str, index: TipIndex) -> None:
        """Insert (or refresh) an index, evicting the least-recently used."""
        with self._lock:
            self._entries[fingerprint] = index
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_load(self, path: str | Path, *, mmap: bool = True) -> TipIndex:
        """Resolve an artifact path to its index, loading on a miss.

        The manifest is read (cheap) to learn the fingerprint; only a miss
        pays for mapping the arrays and rebuilding the graph.  The load
        happens outside the lock so a slow cold load never blocks hits on
        other artifacts.  Reads racing an in-place rebuild retry briefly;
        once the path resolves to a new fingerprint, the entry cached for
        the path's previous fingerprint is dropped immediately (its mmaps
        would otherwise pin the replaced arrays on disk until LRU
        pressure).
        """
        for attempt in range(_SWAP_RETRIES):
            try:
                return self._get_or_load_once(path, mmap=mmap)
            except ArtifactError:
                if attempt == _SWAP_RETRIES - 1:
                    raise
                time.sleep(_SWAP_RETRY_SECONDS)
        raise AssertionError("unreachable")  # pragma: no cover

    def _get_or_load_once(self, path: str | Path, *, mmap: bool) -> TipIndex:
        fingerprint = read_manifest(path).fingerprint
        path_key = str(Path(path).resolve())
        with self._lock:
            previous = self._path_fingerprints.get(path_key)
            if previous is not None and previous != fingerprint:
                if self._entries.pop(previous, None) is not None:
                    self._evictions += 1
            self._path_fingerprints[path_key] = fingerprint
        index = self.get(fingerprint)
        if index is not None:
            return index
        artifact = load_artifact(path, mmap=mmap, expected_fingerprint=fingerprint)
        index = TipIndex.from_artifact(artifact)
        self.put(fingerprint, index)
        return index

    def invalidate(self, fingerprint: str) -> bool:
        """Drop a cached index (e.g. after an in-place streaming refresh).

        Returns whether an entry was evicted.  The path → fingerprint map
        is left alone: the next ``get_or_load`` of the path re-reads the
        manifest and records the successor fingerprint.
        """
        with self._lock:
            if self._entries.pop(fingerprint, None) is not None:
                self._evictions += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every cached index (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._path_fingerprints.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction metrics plus current occupancy."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / total) if total else 0.0,
            }
