"""Event-loop micro-batching for the serving layer (transport-free).

The offline batch path answers tens of millions of θ-lookups per second
while a point request over HTTP costs a full parse → route → manifest read
→ gather → serialize round trip; the gap is pure per-request overhead.
This module closes it the way inference servers do — by *coalescing*:

* :class:`ThetaCoalescer` — concurrent point-θ requests enqueue into a
  list; one flush callback per event-loop tick (or after ``max_delay``
  seconds, or as soon as ``max_batch`` requests are waiting) resolves the
  whole batch with a single vectorized
  :meth:`~repro.service.server.TipService.theta_payloads` call.  Answers
  are byte-identical to sequential ``handle("/theta", ...)`` calls; errors
  travel in-band per request.
* :class:`UpdateAdmissionController` — the one write path, admission-
  controlled behind the readers: a single writer thread drains updates one
  at a time, a bounded pending queue keeps the event loop responsive, and
  overflow answers 503 + ``Retry-After``
  (:class:`~repro.errors.ServiceOverloadedError`) instead of queueing
  unboundedly behind the writer lock.

Both classes are transport-free (they know :class:`TipService`, not
sockets) so they can be driven directly by tests and by any future
front end.  All state is touched only from the owning event loop, except
the metric counters, which are plain ints and safe to *read* from any
thread (``/stats`` may be served while a flush runs).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import (
    DeadlineExceededError,
    FaultInjectedError,
    ServiceError,
    ServiceOverloadedError,
)
from . import faults

__all__ = ["ThetaCoalescer", "UpdateAdmissionController"]

#: Default cap on one coalesced batch; matches the per-request vertex cap's
#: order of magnitude so a flush never materialises an absurd gather.
DEFAULT_MAX_BATCH = 1024

#: How many recent per-request coalesce waits feed the p50/p99 metrics.
_WAIT_WINDOW = 4096


class ThetaCoalescer:
    """Batch concurrent point-θ lookups into one vectorized gather per tick.

    ``max_delay`` = 0 (the default) schedules the flush with
    ``loop.call_soon``: everything parsed during the current event-loop
    tick — e.g. all requests the selector delivered in one poll, across
    every connection — lands in one batch at **zero added latency**.  A
    positive ``max_delay`` (seconds) instead waits up to that long to
    accumulate bigger batches; ``max_batch`` always flushes early.
    """

    def __init__(self, service, *, max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay: float = 0.0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._service = service
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self._pending: list = []  # (artifact, vertex, future, enqueued_at)
        self._flush_handle: asyncio.Handle | None = None
        # Metrics (read by /stats from any thread; written on the loop).
        self._batches = 0
        self._requests = 0
        self._largest_batch = 0
        self._size_triggered = 0
        self._peak_depth = 0
        self._waits = deque(maxlen=_WAIT_WINDOW)

    # ------------------------------------------------------------------
    def submit(self, artifact: str | None, vertex: int,
               *, deadline=None) -> asyncio.Future:
        """Enqueue one point-θ request; the future resolves at the next flush.

        Must be called from the event loop.  The future resolves with the
        exact ``handle("/theta", ...)`` payload, or raises the exact
        :class:`ServiceError` the point path would have raised.  A
        ``deadline`` (:class:`~repro.service.resilience.Deadline`) that
        expires before the flush reaches this entry resolves it with
        :class:`~repro.errors.DeadlineExceededError` instead of a stale
        answer.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append(
            (artifact, int(vertex), future, time.monotonic(), deadline))
        depth = len(self._pending)
        if depth > self._peak_depth:
            self._peak_depth = depth
        if depth >= self.max_batch:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self._size_triggered += 1
            self._flush()
        elif self._flush_handle is None:
            if self.max_delay > 0.0:
                self._flush_handle = loop.call_later(self.max_delay, self._flush)
            else:
                self._flush_handle = loop.call_soon(self._flush)
        return future

    def _flush(self) -> None:
        self._flush_handle = None
        batch = self._pending
        if not batch:
            return
        self._pending = []
        now = time.monotonic()
        self._batches += 1
        self._requests += len(batch)
        self._largest_batch = max(self._largest_batch, len(batch))
        # The async transport's chaos seam: an injected "error" (or a
        # dropped flush) fails every request in the batch with the 503 the
        # clients would see if the batcher's downstream genuinely died —
        # futures are never stranded.
        try:
            token = faults.fire("transport.coalesce")
        except FaultInjectedError as error:
            token = error
        if token in ("drop", "corrupt") or isinstance(token, Exception):
            error = token if isinstance(token, Exception) else FaultInjectedError(
                "injected fault: coalesced flush lost", site="transport.coalesce")
            for _, _, future, _, _ in batch:
                if not future.done():
                    future.set_exception(error)
            return
        # Prometheus histograms live on the service so both transports share
        # one registry; getattr keeps bare test doubles working.
        batch_hist = getattr(self._service, "coalesce_batch_size", None)
        if batch_hist is not None:
            batch_hist.observe(float(len(batch)))
        wait_hist = getattr(self._service, "coalesce_wait_seconds", None)
        count_expired = getattr(self._service, "count_deadline_exceeded", None)
        # Group by artifact, preserving order within each group: one
        # vectorized lookup per artifact per flush.
        groups: dict = {}
        for artifact, vertex, future, enqueued_at, deadline in batch:
            self._waits.append(now - enqueued_at)
            if wait_hist is not None:
                wait_hist.observe(now - enqueued_at)
            if deadline is not None and deadline.expired():
                # The request's budget ran out while it waited in the
                # queue; a late answer is worse than an honest 503.
                if not future.done():
                    future.set_exception(DeadlineExceededError(
                        "coalesced /theta request exceeded its "
                        f"{deadline.seconds * 1000.0:.0f}ms deadline while "
                        "queued",
                        retry_after=max(0.05, deadline.seconds)))
                if count_expired is not None:
                    count_expired()
                continue
            groups.setdefault(artifact, []).append((vertex, future))
        for artifact, entries in groups.items():
            try:
                results = self._service.theta_payloads(
                    artifact, [vertex for vertex, _ in entries])
            except Exception as error:  # defensive: never strand a future
                for _, future in entries:
                    if not future.done():
                        future.set_exception(error)
                continue
            for (_, future), result in zip(entries, results):
                if future.done():  # request cancelled mid-flight
                    continue
                if isinstance(result, ServiceError):
                    future.set_exception(result)
                else:
                    future.set_result(result)

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Observability payload folded into ``/stats`` under ``transport``."""
        waits_ms = [1000.0 * wait for wait in self._waits]
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": round(1000.0 * self.max_delay, 3),
            "batches_flushed": self._batches,
            "requests_coalesced": self._requests,
            "mean_batch_size": round(self._requests / self._batches, 3)
            if self._batches else 0.0,
            "largest_batch": self._largest_batch,
            "size_triggered_flushes": self._size_triggered,
            "queue_depth": len(self._pending),
            "peak_queue_depth": self._peak_depth,
            "coalesce_wait_p50_ms": round(float(np.percentile(waits_ms, 50)), 4)
            if waits_ms else 0.0,
            "coalesce_wait_p99_ms": round(float(np.percentile(waits_ms, 99)), 4)
            if waits_ms else 0.0,
        }


class UpdateAdmissionController:
    """Bounded single-writer admission control for ``POST /update``.

    Updates run on one dedicated writer thread (they hold the service's
    writer lock and do real peeling work — on the event loop they would
    stall every coalesced read).  At most ``max_pending`` updates may be
    admitted at once: the one running plus a short queue.  Beyond that the
    batch is rejected *immediately* with
    :class:`~repro.errors.ServiceOverloadedError` (HTTP 503 +
    ``Retry-After``) so a write burst degrades writes, never reads.
    """

    def __init__(self, service, *, max_pending: int = 4,
                 retry_after_seconds: float = 1.0):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._service = service
        self.max_pending = int(max_pending)
        self.retry_after_seconds = float(retry_after_seconds)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="tip-writer")
        self._pending = 0
        self._admitted = 0
        self._completed = 0
        self._rejected = 0
        self._peak_pending = 0

    # ------------------------------------------------------------------
    async def submit(self, params: dict, body: dict) -> dict:
        """Run one ``/update`` on the writer thread, or reject with 503."""
        if self._pending >= self.max_pending:
            self._rejected += 1
            raise ServiceOverloadedError(
                f"update queue is full ({self._pending} pending, cap "
                f"{self.max_pending}); retry after "
                f"{self.retry_after_seconds:g}s",
                retry_after=self.retry_after_seconds,
            )
        self._pending += 1
        self._peak_pending = max(self._peak_pending, self._pending)
        self._admitted += 1
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor,
                lambda: self._service.handle("/update", params, body),
            )
        finally:
            self._pending -= 1
            self._completed += 1

    def close(self) -> None:
        """Shut down the single writer thread without draining its queue."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Admission counters surfaced by ``/stats`` under ``async.admission``."""
        return {
            "max_pending": self.max_pending,
            "retry_after_seconds": self.retry_after_seconds,
            "pending": self._pending,
            "peak_pending": self._peak_pending,
            "admitted": self._admitted,
            "completed": self._completed,
            "admission_rejections": self._rejected,
        }
