"""Deterministic, seeded fault injection for the serving tier.

Production distributed systems are tested by breaking them on purpose;
this module is the repo's way of doing that *deterministically*.  A
:class:`FaultPlan` is a seeded list of rules, each binding a named fault
**site** (a call-out the serving code makes at its failure-prone seams)
to an **action**:

===========  ===========================================================
``drop``     the operation is silently lost (a dropped message / write)
``delay``    the operation is stalled for ``delay_ms`` milliseconds
``error``    :class:`~repro.errors.FaultInjectedError` is raised (503)
``corrupt``  the caller receives a tamper token and mangles its payload
===========  ===========================================================

Sites currently wired through the serving tier (see
``docs/RESILIENCE.md`` for the operator view):

* ``replication.push``  — leader → follower record fan-out
* ``replication.poll``  — follower → leader log / snapshot fetch
* ``log.append``        — replication-log append (``corrupt`` simulates a
  crash mid-append: a torn half-line reaches disk, then the writer dies)
* ``shard.gather``      — one shard's lookup inside scatter/gather
* ``artifact.save``     — artifact persistence on the ``/update`` path
* ``transport.coalesce`` — the async front end's batched flush

Every rule owns its own :class:`random.Random` seeded from the plan seed
and the rule index, so a given plan fires the *same* faults in the same
order on every run — a failing chaos schedule is a reproducible test
case, not a flake.  The plan is armed process-wide (:func:`install`, the
:func:`armed` context manager, the ``REPRO_FAULT_PLAN`` environment
variable, or ``repro serve --fault-plan``); when nothing is armed,
:func:`fire` is a single ``None`` check and the serving hot path pays
effectively nothing.

Plan syntax (CLI / environment): rules separated by ``;`` or ``,``, each
``site:action[:key=value]...`` — for example::

    replication.push:drop:p=0.5:count=3;shard.gather:delay:ms=20

or a path to a JSON file ``{"seed": 7, "rules": [{"site": ..., "action":
..., "probability": ..., "count": ..., "after": ..., "delay_ms": ...}]}``.
A trailing ``*`` in a site matches by prefix (``replication.*``).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import FaultInjectedError, ServiceError

__all__ = [
    "ACTIONS",
    "ENV_PLAN",
    "ENV_SEED",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "active",
    "arm_from_env",
    "armed",
    "fire",
    "install",
    "metrics",
    "uninstall",
]

#: The documented fault sites (informative: plans may name future sites).
FAULT_SITES = (
    "replication.push",
    "replication.poll",
    "log.append",
    "shard.gather",
    "artifact.save",
    "transport.coalesce",
)

#: The four supported actions.
ACTIONS = ("drop", "delay", "error", "corrupt")

#: Environment variables that arm a plan for any process (tests, CI, dev).
ENV_PLAN = "REPRO_FAULT_PLAN"
ENV_SEED = "REPRO_FAULT_SEED"


@dataclass
class FaultRule:
    """One site → action binding with probability / count / phase controls.

    ``probability`` is the chance each matching :func:`fire` call
    triggers; ``after`` skips the first N matching calls; ``count`` caps
    total firings (``None`` = unlimited) — count-capped rules are how
    chaos schedules guarantee the faults eventually *clear* so recovery
    can be asserted.
    """

    site: str
    action: str
    probability: float = 1.0
    count: int | None = None
    after: int = 0
    delay_seconds: float = 0.01
    fired: int = field(default=0, init=False)
    seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ServiceError(
                f"unknown fault action {self.action!r}; one of {', '.join(ACTIONS)}")
        if not 0.0 < self.probability <= 1.0:
            raise ServiceError(
                f"fault probability must be in (0, 1], got {self.probability}")
        if self.count is not None and int(self.count) < 1:
            raise ServiceError(f"fault count must be >= 1, got {self.count}")
        if self.after < 0:
            raise ServiceError(f"fault 'after' must be >= 0, got {self.after}")
        if self.delay_seconds < 0:
            raise ServiceError(f"fault delay must be >= 0, got {self.delay_seconds}")

    def matches(self, site: str) -> bool:
        """Whether this rule covers ``site`` (exact, or ``prefix*`` glob)."""
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def exhausted(self) -> bool:
        """Whether a count-capped rule has fired its full budget."""
        return self.count is not None and self.fired >= self.count

    def summary(self) -> dict:
        """JSON-able rule state for ``/stats`` and test assertions."""
        return {
            "site": self.site,
            "action": self.action,
            "probability": self.probability,
            "count": self.count,
            "after": self.after,
            "delay_ms": round(self.delay_seconds * 1000.0, 3),
            "fired": self.fired,
            "seen": self.seen,
        }


class FaultPlan:
    """A seeded, thread-safe schedule of fault rules.

    Rules are evaluated in order on every :meth:`fire`; the first rule
    that matches the site *and* triggers (probability roll, within its
    ``after``/``count`` budget) wins.  Determinism contract: given the
    same plan and the same sequence of ``fire(site)`` calls, the same
    faults fire in the same order — each rule's RNG is seeded from
    ``(plan seed, rule index)`` and advances only on matching calls.
    """

    def __init__(self, rules, *, seed: int = 0, sleep=time.sleep):
        self.rules = [rule if isinstance(rule, FaultRule) else FaultRule(**rule)
                      for rule in rules]
        self.seed = int(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs = [random.Random(f"{self.seed}:{index}:{rule.site}:{rule.action}")
                      for index, rule in enumerate(self.rules)]
        self.injected_total = 0
        self.injected_by_site: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, *, seed: int | None = None) -> "FaultPlan":
        """Build a plan from the CLI/env string syntax or a JSON file path."""
        spec = str(spec).strip()
        if not spec:
            raise ServiceError("empty fault-plan specification")
        if spec.startswith("{") or spec.endswith(".json"):
            if spec.endswith(".json"):
                try:
                    spec = Path(spec).read_text(encoding="utf-8")
                except OSError as exc:
                    raise ServiceError(f"cannot read fault plan: {exc}") from None
            try:
                payload = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"fault plan is not valid JSON: {exc}") from None
            if not isinstance(payload, dict) or "rules" not in payload:
                raise ServiceError('a JSON fault plan needs a "rules" array')
            resolved_seed = seed if seed is not None else int(payload.get("seed", 0))
            rules = []
            for entry in payload["rules"]:
                if not isinstance(entry, dict):
                    raise ServiceError("each fault rule must be a JSON object")
                kwargs = dict(entry)
                if "delay_ms" in kwargs:
                    kwargs["delay_seconds"] = float(kwargs.pop("delay_ms")) / 1000.0
                rules.append(FaultRule(**kwargs))
            return cls(rules, seed=resolved_seed)
        rules = []
        for chunk in spec.replace(";", ",").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 2:
                raise ServiceError(
                    f"fault rule {chunk!r} must look like site:action[:key=value...]")
            site, action, *options = parts
            kwargs: dict = {"site": site.strip(), "action": action.strip()}
            for option in options:
                key, separator, value = option.partition("=")
                if not separator:
                    raise ServiceError(f"fault option {option!r} must be key=value")
                key = key.strip().lower()
                try:
                    if key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "count":
                        kwargs["count"] = int(value)
                    elif key == "after":
                        kwargs["after"] = int(value)
                    elif key in ("ms", "delay_ms"):
                        kwargs["delay_seconds"] = float(value) / 1000.0
                    else:
                        raise ServiceError(f"unknown fault option {key!r}")
                except ValueError:
                    raise ServiceError(
                        f"fault option {option!r} has a non-numeric value") from None
            rules.append(FaultRule(**kwargs))
        if not rules:
            raise ServiceError("fault plan contains no rules")
        return cls(rules, seed=seed if seed is not None else 0)

    # ------------------------------------------------------------------
    def fire(self, site: str) -> str | None:
        """Evaluate the plan at one site; the first triggering rule acts.

        Returns ``None`` (nothing fired), ``"drop"`` / ``"corrupt"``
        (tokens the call site interprets), or ``"delay"`` after sleeping;
        raises :class:`~repro.errors.FaultInjectedError` for ``error``.
        """
        delay = None
        with self._lock:
            chosen = None
            for rule, rng in zip(self.rules, self._rngs):
                if not rule.matches(site) or rule.exhausted():
                    continue
                rule.seen += 1
                if rule.seen <= rule.after:
                    continue
                if rule.probability < 1.0 and rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                self.injected_total += 1
                self.injected_by_site[site] = self.injected_by_site.get(site, 0) + 1
                chosen = rule
                break
            if chosen is None:
                return None
            if chosen.action == "delay":
                delay = chosen.delay_seconds
        if delay is not None:
            self._sleep(delay)
            return "delay"
        if chosen.action == "error":
            raise FaultInjectedError(
                f"injected fault at {site} (seed {self.seed})", site=site)
        return chosen.action

    def exhausted(self) -> bool:
        """Whether every rule is count-capped and fully spent (faults cleared)."""
        with self._lock:
            return all(rule.count is not None and rule.exhausted()
                       for rule in self.rules)

    def stats(self) -> dict:
        """JSON-able plan state (rules, per-site counts) for ``/stats``."""
        with self._lock:
            return {
                "seed": self.seed,
                "injected_total": self.injected_total,
                "by_site": dict(self.injected_by_site),
                "rules": [rule.summary() for rule in self.rules],
            }


# ----------------------------------------------------------------------
# Process-wide arming
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None
_ACTIVE_LOCK = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (replacing any armed plan); returns it."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Disarm fault injection; every :func:`fire` becomes a no-op again."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


def active() -> FaultPlan | None:
    """The armed plan, or ``None`` when fault injection is disarmed."""
    return _ACTIVE


@contextmanager
def armed(plan: FaultPlan):
    """Context manager: arm ``plan`` for the block, disarm on exit."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def fire(site: str) -> str | None:
    """Evaluate the armed plan (if any) at ``site``; no-op when disarmed."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site)


def arm_from_env() -> FaultPlan | None:
    """Arm a plan from ``REPRO_FAULT_PLAN`` (+ optional seed); None if unset."""
    spec = os.environ.get(ENV_PLAN, "").strip()
    if not spec:
        return None
    seed_raw = os.environ.get(ENV_SEED, "").strip()
    seed = int(seed_raw) if seed_raw else None
    return install(FaultPlan.parse(spec, seed=seed))


def metrics() -> dict:
    """Compact armed/injected summary for the metric gauges and ``/stats``."""
    plan = _ACTIVE
    if plan is None:
        return {"armed": False, "injected_total": 0, "by_site": {}}
    stats = plan.stats()
    return {
        "armed": True,
        "seed": stats["seed"],
        "injected_total": stats["injected_total"],
        "by_site": stats["by_site"],
    }
