"""The in-memory tip-index: vectorized queries over a decomposition.

A :class:`TipIndex` holds three things next to the raw per-vertex tip
numbers:

* ``order`` — a θ-sorted permutation of the vertex ids (ascending θ,
  ascending id within ties).  One ``searchsorted`` against
  ``tip_numbers[order]`` turns every threshold query into an O(log n)
  bisection plus an O(answer) slice.
* a level CSR — ``level_values`` (the distinct tip numbers, sorted) and
  ``level_offsets`` into ``order``, so the vertex set of any hierarchy
  level is a contiguous slice.  This is the serving-side encoding of
  :class:`repro.analysis.hierarchy.TipHierarchy`.
* optionally the graph itself (reconstructed zero-copy from the artifact's
  CSR arrays) for butterfly-connected community queries, the paper's
  Sec. 6 spam-group use case.

Every query is pure numpy on immutable arrays, so a single index can be
shared freely across the threads of the HTTP server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ServiceError
from ..graph.bipartite import BipartiteGraph, validate_side
from ..peeling.base import TipDecompositionResult

__all__ = ["TipIndex", "sorted_order", "level_csr"]


def sorted_order(tip_numbers: np.ndarray) -> np.ndarray:
    """Permutation sorting vertices by (tip number asc, vertex id asc).

    The secondary key makes the permutation — and therefore the on-disk
    artifact — a deterministic function of the tip numbers alone.
    """
    tip_numbers = np.asarray(tip_numbers, dtype=np.int64)
    return np.lexsort((np.arange(tip_numbers.shape[0], dtype=np.int64), tip_numbers))


def level_csr(sorted_tips: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct levels and their offsets into the θ-sorted permutation.

    ``order[level_offsets[i]:level_offsets[i + 1]]`` is exactly the vertex
    set with tip number ``level_values[i]``.
    """
    sorted_tips = np.asarray(sorted_tips, dtype=np.int64)
    level_values, first_positions = np.unique(sorted_tips, return_index=True)
    level_offsets = np.concatenate(
        [first_positions.astype(np.int64), np.asarray([sorted_tips.shape[0]], dtype=np.int64)]
    )
    return level_values.astype(np.int64), level_offsets


@dataclass
class TipIndex:
    """Read-optimized queries over one side's tip decomposition."""

    tip_numbers: np.ndarray
    order: np.ndarray
    level_values: np.ndarray
    level_offsets: np.ndarray
    side: str = "U"
    algorithm: str = ""
    initial_butterflies: np.ndarray | None = None
    graph: BipartiteGraph | None = None
    fingerprint: str = ""
    center_butterflies: np.ndarray | None = None
    _sorted_tips: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.side = validate_side(self.side)
        self.tip_numbers = np.asarray(self.tip_numbers, dtype=np.int64)
        self.order = np.asarray(self.order, dtype=np.int64)
        self.level_values = np.asarray(self.level_values, dtype=np.int64)
        self.level_offsets = np.asarray(self.level_offsets, dtype=np.int64)
        # Equivalent to tip_numbers[order] but derived from the two tiny
        # level arrays, so constructing an index over mmap-backed arrays
        # does not page in the full per-vertex members.
        self._sorted_tips = np.repeat(self.level_values, np.diff(self.level_offsets))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: TipDecompositionResult,
        *,
        graph: BipartiteGraph | None = None,
        fingerprint: str = "",
    ) -> "TipIndex":
        """Build the index structures from a fresh decomposition result."""
        order = sorted_order(result.tip_numbers)
        level_values, level_offsets = level_csr(result.tip_numbers[order])
        return cls(
            tip_numbers=result.tip_numbers,
            order=order,
            level_values=level_values,
            level_offsets=level_offsets,
            side=result.side,
            algorithm=result.algorithm,
            initial_butterflies=result.initial_butterflies,
            graph=graph,
            fingerprint=fingerprint,
        )

    @classmethod
    def from_artifact(cls, artifact) -> "TipIndex":
        """Wrap a loaded :class:`~repro.service.artifacts.TipArtifact`.

        The artifact's (possibly mmap-backed) arrays are used as-is — no
        copies, no recomputation; the graph is reconstructed zero-copy from
        the stored dual-CSR arrays so community queries work without the
        original input file.
        """
        arrays = artifact.arrays
        manifest = artifact.manifest
        graph_meta = manifest.graph
        graph = BipartiteGraph.from_csr_arrays(
            int(graph_meta["n_u"]),
            int(graph_meta["n_v"]),
            arrays["u_offsets"],
            arrays["u_neighbors"],
            arrays["v_offsets"],
            arrays["v_neighbors"],
            name=str(graph_meta.get("name", "")),
        )
        return cls(
            tip_numbers=arrays["tip_numbers"],
            order=arrays["order"],
            level_values=arrays["level_values"],
            level_offsets=arrays["level_offsets"],
            side=manifest.decomposition["side"],
            algorithm=str(manifest.decomposition.get("algorithm", "")),
            initial_butterflies=arrays["initial_butterflies"],
            graph=graph,
            fingerprint=manifest.fingerprint,
            center_butterflies=arrays.get("center_butterflies"),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices on the decomposed side."""
        return int(self.tip_numbers.shape[0])

    @property
    def max_tip_number(self) -> int:
        """Largest tip number in the decomposition (0 when empty)."""
        return int(self._sorted_tips[-1]) if self._sorted_tips.size else 0

    @property
    def n_levels(self) -> int:
        """Number of distinct tip-number levels."""
        return int(self.level_values.shape[0])

    # ------------------------------------------------------------------
    # Point / batch lookups
    # ------------------------------------------------------------------
    def _validate_vertices(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64).reshape(-1)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self.n_vertices):
            bad = vertices[(vertices < 0) | (vertices >= self.n_vertices)][0]
            raise ServiceError(
                f"vertex {int(bad)} out of range for side {self.side!r} "
                f"with {self.n_vertices} vertices"
            )
        return vertices

    def theta(self, vertex: int) -> int:
        """Tip number of a single vertex (O(1))."""
        return int(self.tip_numbers[int(self._validate_vertices([vertex])[0])])

    def theta_batch(self, vertices) -> np.ndarray:
        """Tip numbers for a batch of vertices in one vectorized gather."""
        return self.tip_numbers[self._validate_vertices(vertices)]

    # ------------------------------------------------------------------
    # Threshold / ranking queries
    # ------------------------------------------------------------------
    def k_tip_size(self, k: int) -> int:
        """Number of vertices with tip number >= ``k`` (O(log n))."""
        position = int(np.searchsorted(self._sorted_tips, int(k), side="left"))
        return self.n_vertices - position

    def k_tip_members(self, k: int, *, limit: int | None = None) -> np.ndarray:
        """Sorted vertex ids of the union of all k-tips (θ >= k).

        With ``limit``, only the ``limit`` smallest member ids are returned
        — via ``np.partition``, so a truncated request costs O(m) instead
        of a full O(m log m) sort of the member set.
        """
        position = int(np.searchsorted(self._sorted_tips, int(k), side="left"))
        members = self.order[position:]
        if limit is None or limit >= members.size:
            return np.sort(members)
        if limit <= 0:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.partition(members, limit - 1)[:limit])

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` vertices with the highest tip numbers.

        Ordered by descending θ, ascending vertex id within ties — a
        deterministic ranking regardless of how the index was built.
        """
        if k < 1:
            raise ServiceError(f"top-k requires k >= 1, got {k}")
        k = min(int(k), self.n_vertices)
        if k == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        # Everything strictly above the boundary θ is in; the remaining
        # slots go to the smallest-id vertices sitting exactly on it.
        boundary = int(self._sorted_tips[self.n_vertices - k])
        first_at = int(np.searchsorted(self._sorted_tips, boundary, side="left"))
        first_above = int(np.searchsorted(self._sorted_tips, boundary, side="right"))
        above = self.order[first_above:]
        at_boundary = np.sort(self.order[first_at:first_above])[: k - above.size]
        selected = np.concatenate([above, at_boundary])
        ranking = selected[np.lexsort((selected, -self.tip_numbers[selected]))]
        return ranking, self.tip_numbers[ranking]

    def histogram(self) -> dict[int, int]:
        """Vertices per distinct tip number (from the level CSR, O(levels))."""
        counts = np.diff(self.level_offsets)
        return {int(value): int(count) for value, count in zip(self.level_values, counts)}

    def levels(self) -> np.ndarray:
        """Sorted distinct tip numbers present in the decomposition."""
        return self.level_values

    # ------------------------------------------------------------------
    # Community queries (paper Sec. 6 use cases)
    # ------------------------------------------------------------------
    def communities(self, k: int, *, vertex: int | None = None) -> list[np.ndarray]:
        """Butterfly-connected components of the level-``k`` vertex set.

        These are the individual k-tips of Definition 1 — the paper's spam
        groups / research communities.  With ``vertex`` given, only the
        component containing that vertex is returned (empty list when the
        vertex is below level ``k``).
        """
        if self.graph is None:
            raise ServiceError(
                "this index was built without graph arrays; "
                "community queries require them", status=404,
            )
        members = self.k_tip_members(k)
        from ..analysis.hierarchy import butterfly_connected_components

        components = butterfly_connected_components(self.graph, members, self.side)
        if vertex is None:
            return components
        vertex = int(self._validate_vertices([vertex])[0])
        return [component for component in components if vertex in component]

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def apply_delta(self, inserts=None, deletes=None, *, config=None):
        """Apply an edge-update batch and return the repaired index.

        The index itself is immutable: the streaming engine
        (:func:`repro.streaming.apply_update`) patches the graph, maintains
        the butterfly counts incrementally and re-peels only the affected
        region, and a *new* :class:`TipIndex` is built over the result.
        Readers keep answering from this index until the caller swaps the
        new one in (the serving layer does so atomically under its update
        lock after persisting the refreshed artifact).

        Parameters
        ----------
        inserts, deletes:
            Edge lists in the graph's canonical ``(u, v)`` orientation.
        config:
            Optional :class:`repro.streaming.StreamingConfig`.

        Returns
        -------
        (TipIndex, StreamingUpdateResult)
            The repaired index (fingerprint unset until persisted) and the
            repair statistics.
        """
        if self.graph is None or self.initial_butterflies is None:
            raise ServiceError(
                "this index was built without graph arrays; "
                "streaming updates require them", status=409,
            )
        from ..streaming import EdgeBatch, apply_update

        batch = EdgeBatch.from_lists(inserts, deletes)
        update = apply_update(
            self.graph,
            self.side,
            self.tip_numbers,
            np.asarray(self.initial_butterflies, dtype=np.int64),
            batch,
            center_butterflies=(
                None if self.center_butterflies is None
                else np.asarray(self.center_butterflies, dtype=np.int64)
            ),
            config=config,
        )
        order = sorted_order(update.tip_numbers)
        level_values, level_offsets = level_csr(update.tip_numbers[order])
        repaired = TipIndex(
            tip_numbers=update.tip_numbers,
            order=order,
            level_values=level_values,
            level_offsets=level_offsets,
            side=self.side,
            algorithm=self.algorithm,
            initial_butterflies=update.butterflies,
            graph=update.graph,
            fingerprint="",
            center_butterflies=update.center_butterflies,
        )
        return repaired, update

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Compact summary used by ``/stats`` and ``repro query``."""
        return {
            "side": self.side,
            "algorithm": self.algorithm,
            "n_vertices": self.n_vertices,
            "max_tip_number": self.max_tip_number,
            "n_levels": self.n_levels,
            "fingerprint": self.fingerprint,
            "has_graph": self.graph is not None,
        }
