"""Leader/follower replication of the ``POST /update`` stream.

The streaming repair (PR 4) is deterministic and bit-exact, which makes
replication almost embarrassingly simple: the **leader** is the only
writer — it applies each validated edge batch locally, appends it to a
monotone-offset JSONL log, and fans the record out to its followers; a
**follower** replays the same batches in the same order through the same
repair code and must land on byte-identical state.  No conflicting-write
machinery is needed, only ordering — the shape of PrkDB-style single-
leader replication.

**State fingerprints.**  Artifact *manifest* fingerprints cover wall-clock
timestamps and timing counters, so two replicas holding identical data
report different manifest fingerprints.  Replication therefore chains on
:func:`state_fingerprint` — a SHA-256 over exactly the replicated state
(graph CSR + side + tip numbers).  Every log record carries the state it
applies to (``previous_state``) and the state it produces (``state``);
a follower checks the former before applying and *asserts* the latter
after — any mismatch means the replicas diverged.

**Crash safety and recovery (PR 10).**  Appends are fsync'd; a torn
final line (writer crashed mid-append) is truncated-and-recovered at
open instead of being fatal, while mid-log corruption stays fatal.  The
log checkpoints/compacts against a snapshot (a ``checkpoint`` first
line), and a leader whose artifact is *behind* its log tip at startup
replays the missing suffix through the same repair path.  A follower
that diverges no longer freezes forever: the poll loop automatically
re-bootstraps it from a leader snapshot (``GET /replication/snapshot``),
counted in ``resyncs`` and logged once per recovery.

**Delivery** is push + poll, now wrapped in the resilience layer:
per-follower pushes and the follower's poll both go through a
budget-capped :class:`~repro.service.resilience.RetryPolicy` and a
per-target :class:`~repro.service.resilience.CircuitBreaker`, and every
network seam is a named fault site for the deterministic chaos harness
(:mod:`repro.service.faults`).  Offsets, lag, staleness, breaker states
and resync counts surface in ``/stats``, ``GET /replication/status`` and
the ``repro_replication_*`` / ``repro_resilience_*`` gauges.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import shutil
import struct
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from pathlib import Path

import numpy as np

from ..errors import (
    CircuitOpenError,
    FaultInjectedError,
    ReplicationError,
    ServiceError,
)
from ..obs.log import get_logger
from ..obs.slo import Objective
from . import faults
from .resilience import CircuitBreakerRegistry, RetryPolicy

__all__ = [
    "ReplicationCoordinator",
    "ReplicationLog",
    "state_fingerprint",
]

_LOG = get_logger("repro.service.replication")

#: Suffix appended to the artifact path for the leader's default log
#: location.  The log must live *outside* the artifact directory: the
#: ``/update`` write path replaces that directory wholesale on every
#: applied batch.
LOG_SUFFIX = ".replog"

#: Default follower staleness promise (seconds behind the leader before
#: the ``replication-staleness`` SLO objective burns through its budget).
DEFAULT_STALENESS_THRESHOLD_SECONDS = 30.0

#: How many push-failure messages to keep per follower in ``status()``.
ERROR_HISTORY_LIMIT = 8


def state_fingerprint(index) -> str:
    """Deterministic SHA-256 of the replicated state of a loaded index.

    Covers the dual CSR (structure), the decomposed side and the tip
    numbers — everything replication must keep identical across replicas
    — and nothing time- or machine-dependent, so leader and follower
    fingerprints match exactly iff their served answers do.
    """
    digest = hashlib.sha256()
    graph = getattr(index, "graph", None)
    if graph is not None:
        digest.update(struct.pack("<qqq", graph.n_u, graph.n_v, graph.n_edges))
        csr = graph.csr_arrays()
        for key in ("u_offsets", "u_neighbors", "v_offsets", "v_neighbors"):
            digest.update(np.ascontiguousarray(csr[key], dtype=np.int64).tobytes())
    digest.update(str(index.side).encode("utf-8"))
    digest.update(np.ascontiguousarray(index.tip_numbers, dtype=np.int64).tobytes())
    return digest.hexdigest()


_RECORD_FIELDS = ("offset", "artifact", "insert", "delete",
                  "previous_state", "state")


def _validate_record(record: dict) -> dict:
    if not isinstance(record, dict):
        raise ServiceError("replication record must be a JSON object")
    missing = [key for key in _RECORD_FIELDS if key not in record]
    if missing:
        raise ServiceError(
            f"replication record is missing fields: {', '.join(missing)}")
    try:
        record["offset"] = int(record["offset"])
    except (TypeError, ValueError):
        raise ServiceError("replication record offset must be an integer") from None
    if record["offset"] < 1:
        raise ServiceError(
            f"replication record offset must be >= 1, got {record['offset']}")
    return record


class ReplicationLog:
    """Append-only JSONL log of applied update batches, monotone offsets.

    One JSON object per line; offsets are 1-based and assigned at append
    time.  Appends are flushed *and fsync'd* before they are acknowledged.

    **Torn-tail recovery.**  A process killed mid-append leaves a final
    line without its trailing newline.  At open, such a tail is either
    kept (it parses as a complete record with the expected offset — only
    the newline was lost, which is repaired) or truncated with a warning
    (``recovered_torn_tail`` is set either way).  A *complete* line that
    fails to parse, or an offset gap, is mid-log corruption and stays
    fatal — that data cannot be reconstructed.

    **Checkpoint/compaction.**  :meth:`compact` drops all but the newest
    ``retain`` records behind a first-line checkpoint
    ``{"checkpoint": {"offset": N, "state": ..., "base_state": ...}}``.
    ``base_offset`` is then N and ``records_from`` can only answer
    offsets > N; followers further behind re-bootstrap from a snapshot.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._base_offset = 0
        self._checkpoint_state: str | None = None
        self._chain_base_state: str | None = None
        self.recovered_torn_tail = False
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Loading and torn-tail recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw = self.path.read_bytes()
        if not raw:
            return
        text = raw.decode("utf-8")
        torn_tail: str | None = None
        if text.endswith("\n"):
            body = text[:-1]
            lines = body.split("\n") if body else []
        else:
            head, _, torn_tail = text.rpartition("\n")
            lines = head.split("\n") if head else []

        for line_number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReplicationError(
                    f"corrupt replication log {self.path} at line "
                    f"{line_number}: {exc}") from exc
            if (line_number == 1 and isinstance(record, dict)
                    and "checkpoint" in record and "offset" not in record):
                checkpoint = record["checkpoint"]
                self._base_offset = int(checkpoint["offset"])
                self._checkpoint_state = str(checkpoint["state"])
                base_state = checkpoint.get("base_state")
                self._chain_base_state = (
                    str(base_state) if base_state is not None else None)
                continue
            expected = self._base_offset + len(self._records) + 1
            if int(record.get("offset", -1)) != expected:
                raise ReplicationError(
                    f"replication log {self.path} offset gap at line "
                    f"{line_number}: expected {expected}, got {record.get('offset')}")
            self._records.append(record)

        if self._chain_base_state is None and self._records:
            self._chain_base_state = str(self._records[0]["previous_state"])

        if torn_tail is not None:
            self._recover_torn_tail(raw, torn_tail)

    def _recover_torn_tail(self, raw: bytes, tail: str) -> None:
        """Repair or truncate a final line that never got its newline."""
        self.recovered_torn_tail = True
        expected = self._base_offset + len(self._records) + 1
        record = None
        if tail.strip():
            try:
                parsed = json.loads(tail)
            except json.JSONDecodeError:
                parsed = None
            if isinstance(parsed, dict) and int(parsed.get("offset", -1)) == expected:
                record = parsed
        if record is not None:
            # The record reached disk intact; only the newline was lost.
            self._records.append(record)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            _LOG.warning(
                "replication log %s: repaired missing newline on final "
                "record (offset %d)", self.path, expected)
            return
        keep_bytes = len(raw) - len(tail.encode("utf-8"))
        with open(self.path, "r+b") as handle:
            handle.truncate(keep_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        _LOG.warning(
            "replication log %s: truncated torn final line (%d bytes) left "
            "by a crash mid-append; log resumes at offset %d",
            self.path, len(tail.encode("utf-8")), expected)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_offset(self) -> int:
        """Offset of the newest record (``base_offset`` when empty)."""
        with self._lock:
            return self._base_offset + len(self._records)

    @property
    def base_offset(self) -> int:
        """Offset of the checkpoint the retained records follow (0 = none)."""
        with self._lock:
            return self._base_offset

    @property
    def record_count(self) -> int:
        """How many records are physically retained (after compaction)."""
        with self._lock:
            return len(self._records)

    @property
    def checkpoint_state(self) -> str | None:
        """State fingerprint at ``base_offset`` (None when never compacted)."""
        with self._lock:
            return self._checkpoint_state

    @property
    def base_state(self) -> str | None:
        """State fingerprint the *chain* starts from (None when empty)."""
        with self._lock:
            if self._chain_base_state is not None:
                return self._chain_base_state
            if self._records:
                return str(self._records[0]["previous_state"])
            return None

    @property
    def tip_state(self) -> str | None:
        """State fingerprint at the log tip (checkpoint state when empty)."""
        with self._lock:
            if self._records:
                return str(self._records[-1]["state"])
            return self._checkpoint_state

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, record: dict) -> dict:
        """Assign the next offset, durably persist the record, return it.

        The ``log.append`` fault site simulates crashes here: ``corrupt``
        writes half the line with no newline and then dies (the torn-tail
        scenario recovery must handle), ``drop`` loses the write, and
        ``error`` fails before anything reaches disk.
        """
        with self._lock:
            record = dict(record)
            record["offset"] = self._base_offset + len(self._records) + 1
            line = json.dumps(record, sort_keys=True)
            token = faults.fire("log.append")
            if token == "drop":
                raise ReplicationError(
                    "injected fault: log append dropped before reaching disk")
            with open(self.path, "a", encoding="utf-8") as handle:
                if token == "corrupt":
                    handle.write(line[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise ReplicationError(
                        "injected fault: writer crashed mid-append; the log "
                        "now has a torn tail")
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if self._chain_base_state is None and not self._records:
                self._chain_base_state = str(record["previous_state"])
            self._records.append(record)
            return record

    def compact(self, *, retain: int) -> int:
        """Checkpoint-and-drop all but the newest ``retain`` records.

        Atomically rewrites the log as one checkpoint line plus the
        retained suffix; returns how many records were dropped.
        """
        retain = max(0, int(retain))
        with self._lock:
            if len(self._records) <= retain:
                return 0
            split = len(self._records) - retain
            dropped, kept = self._records[:split], self._records[split:]
            new_base_offset = self._base_offset + len(dropped)
            checkpoint = {
                "offset": new_base_offset,
                "state": str(dropped[-1]["state"]),
            }
            if self._chain_base_state is not None:
                checkpoint["base_state"] = self._chain_base_state
            staging = self.path.with_name(self.path.name + ".compact")
            with open(staging, "w", encoding="utf-8") as handle:
                handle.write(json.dumps({"checkpoint": checkpoint},
                                        sort_keys=True) + "\n")
                for record in kept:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staging, self.path)
            self._base_offset = new_base_offset
            self._checkpoint_state = checkpoint["state"]
            self._records = kept
            _LOG.info(
                "replication log %s: compacted %d records behind checkpoint "
                "offset %d (%d retained)",
                self.path, len(dropped), new_base_offset, len(kept))
            return len(dropped)

    def records_from(self, offset: int, *, limit: int | None = None) -> list[dict]:
        """Retained records with offsets >= ``offset``, oldest first.

        Offsets at or below ``base_offset`` were compacted away; callers
        detect that via the ``base_offset`` field of the log payload and
        re-bootstrap from a snapshot instead.
        """
        offset = max(1, int(offset))
        with self._lock:
            start = max(0, offset - self._base_offset - 1)
            records = self._records[start:]
        if limit is not None:
            records = records[: max(0, int(limit))]
        return [dict(record) for record in records]


def _http_json(url: str, *, payload: dict | None = None, timeout: float) -> dict:
    """One JSON request/response round trip (POST when a payload is given)."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 - best-effort error detail
            pass
        raise ReplicationError(
            f"{url} answered HTTP {exc.code}" + (f": {detail}" if detail else "")
        ) from None
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        raise ReplicationError(f"cannot reach {url}: {exc}") from None


class ReplicationCoordinator:
    """Role-aware replication driver attached to one :class:`TipService`.

    * ``role="leader"`` — owns the :class:`ReplicationLog`; the service
      calls :meth:`record_applied` (under its update lock) after every
      locally applied batch, which appends the record and pushes it to
      every configured follower URL through a retry policy and a
      per-follower circuit breaker, best effort.  A leader whose artifact
      is *behind* the log tip at startup (crash between log append and
      the next write) replays the missing suffix; an artifact *ahead* of
      or outside the chain is still fatal.
    * ``role="follower"`` — rejects direct ``POST /update`` (HTTP 409),
      accepts pushed records on ``POST /replication/apply``, and runs a
      daemon poll thread that pulls missed records from the leader's log.
      Both paths serialize on one apply lock, verify the fingerprint
      chain, and assert the repaired state matches the leader's record.
      On divergence (or when the leader compacted past this follower's
      offset) the poll path automatically re-bootstraps from a leader
      snapshot instead of freezing.

    Replication covers exactly one artifact; when the service serves
    several, pass ``artifact`` explicitly.  ``http_client`` is an
    injection seam for tests (socket-free in-process topologies): any
    callable with the :func:`_http_json` signature.
    """

    def __init__(
        self,
        service,
        *,
        role: str,
        artifact: str | None = None,
        log_path: str | Path | None = None,
        leader_url: str | None = None,
        follower_urls: tuple[str, ...] | list[str] = (),
        poll_interval: float = 1.0,
        push_timeout: float = 5.0,
        staleness_threshold_seconds: float = DEFAULT_STALENESS_THRESHOLD_SECONDS,
        retry_policy: RetryPolicy | None = None,
        log_compact_threshold: int | None = None,
        http_client=None,
    ):
        if role not in ("leader", "follower"):
            raise ServiceError(f"replication role must be leader or follower, got {role!r}")
        if role == "follower" and not leader_url:
            raise ServiceError("a follower needs the leader's URL (--leader)")
        if log_compact_threshold is not None and int(log_compact_threshold) < 2:
            raise ServiceError(
                f"log compact threshold must be >= 2, got {log_compact_threshold}")
        self.service = service
        self.role = role
        self.poll_interval = float(poll_interval)
        self.push_timeout = float(push_timeout)
        self.staleness_threshold_seconds = float(staleness_threshold_seconds)
        self.leader_url = leader_url.rstrip("/") if leader_url else None
        self.log_compact_threshold = (
            int(log_compact_threshold) if log_compact_threshold else None)
        self._http = http_client if http_client is not None else _http_json
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=1.0, budget_seconds=5.0,
            retryable=(ReplicationError,))
        self.breakers: CircuitBreakerRegistry = (
            getattr(service, "breakers", None) or CircuitBreakerRegistry())

        if artifact is None:
            names = service.artifact_names
            if len(names) != 1:
                raise ServiceError(
                    "replication covers one artifact; pass artifact=NAME "
                    f"(serving: {', '.join(names)})")
            artifact = names[0]
        elif artifact not in service.artifact_names:
            raise ServiceError(
                f"unknown artifact {artifact!r} "
                f"(serving: {', '.join(service.artifact_names)})", status=404)
        self.artifact = artifact

        # Current replicated-state fingerprint; maintained incrementally
        # (each applied record's post-state) after the initial computation.
        self._state = state_fingerprint(service.base_index_for(artifact))
        self._apply_lock = threading.Lock()
        self._stop = threading.Event()
        self._poll_thread: threading.Thread | None = None
        self.diverged: str | None = None  # divergence description until recovery
        self.resyncs = 0
        self.last_resync_unix: float | None = None
        self.recovered_records = 0

        if role == "leader":
            if log_path is None:
                log_path = Path(str(service.artifact_path(artifact)) + LOG_SUFFIX)
            self.log = ReplicationLog(log_path)
            tip = self.log.tip_state
            if tip is not None and tip != self._state:
                self.recovered_records = self._replay_log_tail()
            self.followers = {
                url.rstrip("/"): {
                    "acked_offset": 0,
                    "last_push_unix": None,
                    "last_error": None,
                    "consecutive_failures": 0,
                    "recent_errors": deque(maxlen=ERROR_HISTORY_LIMIT),
                }
                for url in follower_urls
            }
        else:
            self.log = None
            self.followers = {}
            # applied_offset is resolved lazily on first contact: the
            # follower fingerprints its snapshot into the leader's chain.
            self.applied_offset: int | None = None
            self._leader_last_offset: int | None = None
            self._last_contact_unix: float | None = None
            self._last_synced_unix: float | None = None
            self.last_error: str | None = None

        service.attach_replication(self)

    # ------------------------------------------------------------------
    # Shared surface
    # ------------------------------------------------------------------
    def objective(self) -> Objective | None:
        """The follower staleness SLO objective (None on the leader)."""
        if self.role != "follower":
            return None
        return Objective(
            name="replication-staleness",
            kind="staleness",
            description=(
                "follower replayed the leader's log within "
                f"{self.staleness_threshold_seconds:g} s"),
            target=0.999,
            threshold_seconds=self.staleness_threshold_seconds,
        )

    def check_writable(self) -> None:
        """Guard on ``POST /update``: only the leader accepts writes."""
        if self.role == "follower":
            raise ServiceError(
                "this replica is a read-only follower; send updates to the "
                f"leader at {self.leader_url}", status=409)

    def gauge_values(self) -> tuple[int, int, float | None]:
        """(offset, lag, staleness_seconds) for the replication gauges."""
        if self.role == "leader":
            last = self.log.last_offset
            lag = max((last - peer["acked_offset"] for peer in self.followers.values()),
                      default=0)
            return last, int(lag), 0.0
        applied = self.applied_offset or 0
        leader_last = self._leader_last_offset
        lag = max(0, (leader_last or applied) - applied)
        return applied, int(lag), self.staleness_seconds()

    def staleness_seconds(self) -> float | None:
        """Seconds since this follower last verified it matched the leader.

        ``None`` before the first successful sync (the SLO treats that as
        ``no_data``, not a breach); on the leader, always 0.
        """
        if self.role == "leader":
            return 0.0
        synced = self._last_synced_unix
        if synced is None:
            return None
        return max(0.0, time.time() - synced)

    def status(self) -> dict:
        """The ``GET /replication/status`` payload (also embedded in /stats)."""
        offset, lag, staleness = self.gauge_values()
        payload = {
            "role": self.role,
            "artifact": self.artifact,
            "offset": offset,
            "lag": lag,
            "staleness_seconds": staleness,
            "state": self._state,
            "diverged": self.diverged,
            "resyncs": self.resyncs,
            "last_resync_unix": self.last_resync_unix,
            "breakers": self.breakers.snapshot(),
        }
        if self.role == "leader":
            payload["followers"] = {
                url: {**peer, "recent_errors": list(peer["recent_errors"])}
                for url, peer in self.followers.items()}
            payload["base_state"] = self.log.base_state or self._state
            payload["recovered_records"] = self.recovered_records
            payload["log"] = {
                "path": str(self.log.path),
                "base_offset": self.log.base_offset,
                "record_count": self.log.record_count,
                "last_offset": self.log.last_offset,
                "recovered_torn_tail": self.log.recovered_torn_tail,
            }
        else:
            payload["leader"] = self.leader_url
            payload["leader_last_offset"] = self._leader_last_offset
            payload["last_error"] = self.last_error
        return payload

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def _replay_log_tail(self) -> int:
        """Replay logged batches the artifact is missing (crash recovery).

        A crash after the fsync'd log append but before the artifact swap
        leaves the artifact one or more records behind the log tip.  The
        batches are all in the log, so recovery is a deterministic replay
        through the same repair path, asserting every recorded post-state.
        An artifact that matches *nowhere* in the chain changed outside
        the log and is still fatal.
        """
        records = self.log.records_from(1)
        start_offset = None
        if self._state == (self.log.checkpoint_state or ""):
            start_offset = self.log.base_offset
        elif records and str(records[0]["previous_state"]) == self._state:
            start_offset = records[0]["offset"] - 1
        else:
            for record in records:
                if str(record["state"]) == self._state:
                    start_offset = record["offset"]
                    break
        if start_offset is None:
            raise ReplicationError(
                f"replication log {self.log.path} tip (offset "
                f"{self.log.last_offset}) does not match the artifact's current "
                "state; the artifact changed outside the log — remove the "
                "log to start a fresh chain or restore the matching snapshot")
        replayed = 0
        for record in records:
            if record["offset"] <= start_offset:
                continue
            self.service.apply_replicated(self.artifact, _record_body(record))
            new_state = state_fingerprint(self.service.base_index_for(self.artifact))
            if new_state != str(record["state"]):
                raise ReplicationError(
                    f"replaying log record {record['offset']} produced state "
                    f"{new_state[:12]}... but the log recorded "
                    f"{str(record['state'])[:12]}...; the log does not match "
                    "this artifact")
            self._state = new_state
            replayed += 1
        _LOG.warning(
            "leader recovered %d logged batch(es) at startup (artifact was "
            "behind the replication log after a crash)", replayed)
        return replayed

    def record_applied(self, artifact: str, body: dict, mode: str | None,
                       repaired) -> dict:
        """Durably log one applied batch, write-ahead of the artifact swap.

        Called by the service under its update lock *before* the new
        artifact is persisted, so the fsync'd log is always at or ahead of
        the artifact on disk: a crash mid-append leaves a torn tail the
        log truncates at the next open (the batch was never acknowledged
        and the artifact never swapped — a clean reject), while a crash
        between the append and the swap is replayed deterministically by
        :meth:`_replay_log_tail` at the next startup.  Fan-out happens
        separately through :meth:`push_applied` once the artifact commit
        succeeded.
        """
        if self.role != "leader" or artifact != self.artifact:
            return {}
        previous_state = self._state
        new_state = state_fingerprint(repaired)
        record = {
            "artifact": artifact,
            "insert": list(body.get("insert") or []),
            "delete": list(body.get("delete") or []),
            "previous_state": previous_state,
            "state": new_state,
            "mode": mode,
            "applied_unix": time.time(),
        }
        if "damage_threshold" in body:
            record["damage_threshold"] = body["damage_threshold"]
        record = self.log.append(record)
        self._state = new_state
        if (self.log_compact_threshold is not None
                and self.log.record_count > self.log_compact_threshold):
            self.log.compact(retain=max(1, self.log_compact_threshold // 2))
        return record

    def push_applied(self, record: dict) -> None:
        """Fan a just-committed record out to followers (leader only).

        Push failures are recorded per follower and never fail the
        update — the poll path delivers the record later.
        """
        if record:
            self._push(record)

    def _note_push_failure(self, url: str, peer: dict, message: str) -> None:
        peer["last_error"] = message
        peer["consecutive_failures"] = int(peer["consecutive_failures"]) + 1
        peer["recent_errors"].append(message)
        _LOG.warning("replication push to %s failed: %s", url, message)

    def _push(self, record: dict) -> None:
        for url, peer in self.followers.items():
            breaker = self.breakers.get(f"push:{url}")
            try:
                token = faults.fire("replication.push")
            except FaultInjectedError as exc:
                self._note_push_failure(url, peer, str(exc))
                continue
            if token == "drop":
                self._note_push_failure(
                    url, peer, "injected fault: replication push dropped")
                continue
            outbound = record
            if token == "corrupt":
                outbound = dict(record)
                outbound["state"] = "0" * 64
            try:
                response = breaker.call(
                    self.retry_policy.call,
                    lambda u=url, r=outbound: self._http(
                        u + "/replication/apply", payload=r,
                        timeout=self.push_timeout))
            except (CircuitOpenError, ReplicationError) as exc:
                self._note_push_failure(url, peer, str(exc))
                continue
            peer["acked_offset"] = int(response.get("offset", peer["acked_offset"]))
            peer["last_push_unix"] = time.time()
            peer["last_error"] = None
            peer["consecutive_failures"] = 0

    def log_payload(self, params: dict) -> dict:
        """The ``GET /replication/log`` payload (leader only)."""
        if self.role != "leader":
            raise ServiceError(
                "this replica is a follower; fetch the log from the leader at "
                f"{self.leader_url}", status=409)
        try:
            start = int(params.get("from", 1))
            limit = int(params["limit"]) if "limit" in params else None
        except (TypeError, ValueError):
            raise ServiceError("parameters 'from'/'limit' must be integers") from None
        return {
            "artifact": self.artifact,
            "base_state": self.log.base_state or self._state,
            "base_offset": self.log.base_offset,
            "checkpoint_state": self.log.checkpoint_state,
            "last_offset": self.log.last_offset,
            "from": start,
            "records": self.log.records_from(start, limit=limit),
        }

    def snapshot_payload(self) -> dict:
        """The ``GET /replication/snapshot`` payload (leader only).

        A consistent point-in-time copy of the artifact directory plus
        the log offset/state it corresponds to — what a diverged or
        compacted-past follower re-bootstraps from.  Lock-free: uses the
        service's mutation sequence as a seqlock (odd = update in flight)
        so a follower resync can never deadlock against the leader's
        update lock.
        """
        if self.role != "leader":
            raise ServiceError(
                "this replica is a follower; fetch snapshots from the leader "
                f"at {self.leader_url}", status=409)
        root = Path(self.service.artifact_path(self.artifact))
        seq_of = getattr(self.service, "mutation_seq", lambda: 0)
        for _ in range(32):
            seq_before = seq_of()
            if seq_before % 2:
                time.sleep(0.005)
                continue
            state = self._state
            last_offset = self.log.last_offset
            try:
                files = {
                    str(path.relative_to(root)):
                        base64.b64encode(path.read_bytes()).decode("ascii")
                    for path in sorted(root.rglob("*")) if path.is_file()
                }
            except OSError:
                continue
            if seq_of() == seq_before and self._state == state:
                return {
                    "artifact": self.artifact,
                    "state": state,
                    "last_offset": last_offset,
                    "base_state": self.log.base_state or state,
                    "files": files,
                }
            time.sleep(0.005)
        raise ReplicationError(
            "could not capture a consistent leader snapshot (updates kept "
            "landing mid-read); retry when the write rate drops")

    # ------------------------------------------------------------------
    # Follower side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the follower's catch-up poll thread (no-op on the leader)."""
        if self.role != "follower" or self._poll_thread is not None:
            return
        self._poll_thread = threading.Thread(
            target=self._poll_loop, name="replication-poll", daemon=True)
        self._poll_thread.start()

    def stop(self) -> None:
        """Stop the poll thread (if running) and join it."""
        self._stop.set()
        if self._poll_thread is not None:
            self._poll_thread.join(timeout=5.0)
            self._poll_thread = None

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.sync_once()
            except (ReplicationError, ServiceError) as exc:
                self.last_error = str(exc)

    def _fetch_from_leader(self, path: str, *, timeout: float | None = None) -> dict:
        """One resilient GET against the leader (breaker + retry + faults)."""
        token = faults.fire("replication.poll")
        if token == "drop":
            raise ReplicationError(
                "injected fault: replication poll dropped")
        breaker = self.breakers.get(f"poll:{self.leader_url}")
        response = breaker.call(
            self.retry_policy.call,
            lambda: self._http(self.leader_url + path,
                               timeout=timeout or self.push_timeout))
        if token == "corrupt":
            records = response.get("records")
            if records:
                tampered = dict(records[0])
                tampered["state"] = "f" * 64
                records[0] = tampered
        return response

    def handle_push(self, record: dict | None) -> dict:
        """Apply one pushed record (``POST /replication/apply``).

        While diverged, pushes are acknowledged-but-not-applied
        (``applied: false``) rather than triggering an inline resync:
        pushes arrive under the *leader's* update lock, and a resync
        fetches a snapshot from that same leader — recovery belongs to
        the poll path, which owns no leader resources.
        """
        if record is None:
            raise ServiceError(
                "replication apply requires a POST body with one log record",
                status=405)
        if self.role != "follower":
            raise ServiceError(
                "this replica is the leader; followers accept pushed records",
                status=409)
        record = _validate_record(dict(record))
        with self._apply_lock:
            if self.diverged:
                return {"applied": False, "offset": self.applied_offset or 0,
                        "lag": self.gauge_values()[1], "diverged": True}
            self._ensure_offset_locked()
            offset = record["offset"]
            self._leader_last_offset = max(self._leader_last_offset or 0, offset)
            self._last_contact_unix = time.time()
            if offset <= self.applied_offset:
                applied = False  # duplicate delivery; already reflected
            elif offset == self.applied_offset + 1:
                self._apply_record_locked(record)
                applied = True
            else:
                # Gap: a prior push was lost.  Pull the missing prefix from
                # the leader right now instead of waiting for the poll tick
                # (pull only — never a snapshot resync, see docstring).
                self._sync_locked(allow_resync=False)
                applied = self.applied_offset >= offset
            if self.applied_offset >= (self._leader_last_offset or 0):
                self._last_synced_unix = time.time()
        return {"applied": applied, "offset": self.applied_offset,
                "lag": self.gauge_values()[1]}

    def sync_once(self) -> dict:
        """One catch-up round against the leader's log (follower only).

        This is the recovery path: a diverged follower re-bootstraps from
        a leader snapshot here before resuming the normal pull.
        """
        if self.role != "follower":
            raise ServiceError("sync_once is a follower operation", status=409)
        with self._apply_lock:
            return self._sync_locked()

    def _sync_locked(self, *, allow_resync: bool = True) -> dict:
        if self.diverged:
            if not allow_resync:
                raise ReplicationError(self.diverged)
            self._resync_locked()
        try:
            self._ensure_offset_locked()
        except ReplicationError:
            if not allow_resync or not self.diverged:
                raise
            self._resync_locked()
        response = self._fetch_from_leader(
            f"/replication/log?from={self.applied_offset + 1}")
        base_offset = int(response.get("base_offset", 0))
        if self.applied_offset < base_offset:
            # The leader compacted the log past this follower's position;
            # the records it needs no longer exist — re-bootstrap.
            if not allow_resync:
                raise ReplicationError(
                    f"leader compacted its log past offset {self.applied_offset} "
                    f"(base is now {base_offset}); snapshot re-sync required")
            self._resync_locked()
            response = self._fetch_from_leader(
                f"/replication/log?from={self.applied_offset + 1}")
        self._leader_last_offset = int(response.get("last_offset", 0))
        self._last_contact_unix = time.time()
        applied = 0
        for record in response.get("records", []):
            record = _validate_record(dict(record))
            if record["offset"] <= self.applied_offset:
                continue
            if record["offset"] != self.applied_offset + 1:
                raise ReplicationError(
                    f"leader log answered offset {record['offset']} while the "
                    f"follower expected {self.applied_offset + 1}")
            self._apply_record_locked(record)
            applied += 1
        if self.applied_offset >= (self._leader_last_offset or 0):
            self._last_synced_unix = time.time()
        self.last_error = None
        return {"applied": applied, "offset": self.applied_offset,
                "lag": max(0, (self._leader_last_offset or 0) - self.applied_offset)}

    def resync(self) -> dict:
        """Force a snapshot re-bootstrap from the leader (follower only)."""
        if self.role != "follower":
            raise ServiceError("resync is a follower operation", status=409)
        with self._apply_lock:
            self._resync_locked()
            return {"offset": self.applied_offset, "resyncs": self.resyncs}

    def _resync_locked(self) -> None:
        """Re-bootstrap this follower from a leader snapshot.

        Installs the snapshot with the same staging + rename swap the
        shard planner uses, reloads the service's cached views, and
        rejoins the chain at the snapshot's offset.  Clears ``diverged``.
        """
        reason = self.diverged or "operator-requested resync"
        snapshot = self._fetch_from_leader("/replication/snapshot",
                                           timeout=max(self.push_timeout, 30.0))
        if str(snapshot.get("artifact")) != self.artifact:
            raise ReplicationError(
                f"leader snapshot covers artifact {snapshot.get('artifact')!r}, "
                f"not {self.artifact!r}")
        self._install_snapshot_locked(snapshot)
        self.resyncs += 1
        self.last_resync_unix = time.time()
        self.diverged = None
        self.last_error = None
        self._leader_last_offset = max(
            self._leader_last_offset or 0, int(snapshot["last_offset"]))
        if self.applied_offset >= (self._leader_last_offset or 0):
            self._last_synced_unix = time.time()
        _LOG.warning(
            "follower re-synced from a leader snapshot at offset %d "
            "(recovery #%d; cause: %s)",
            self.applied_offset, self.resyncs, reason)

    def _install_snapshot_locked(self, snapshot: dict) -> None:
        files = snapshot.get("files")
        if not isinstance(files, dict) or not files:
            raise ReplicationError("leader snapshot carries no files")
        root = Path(self.service.artifact_path(self.artifact))
        staging = root.with_name(root.name + ".resync-staging")
        retired = root.with_name(root.name + ".resync-old")
        shutil.rmtree(staging, ignore_errors=True)
        shutil.rmtree(retired, ignore_errors=True)
        staging.mkdir(parents=True)
        try:
            for rel, encoded in files.items():
                rel_path = Path(rel)
                if rel_path.is_absolute() or ".." in rel_path.parts:
                    raise ReplicationError(
                        f"leader snapshot names an unsafe path {rel!r}")
                dest = staging / rel_path
                dest.parent.mkdir(parents=True, exist_ok=True)
                dest.write_bytes(base64.b64decode(encoded))
            os.rename(root, retired)
            os.rename(staging, root)
        except OSError as exc:
            shutil.rmtree(staging, ignore_errors=True)
            raise ReplicationError(f"snapshot install failed: {exc}") from None
        shutil.rmtree(retired, ignore_errors=True)
        self.service.reload_artifact(self.artifact)
        self._state = state_fingerprint(self.service.base_index_for(self.artifact))
        if self._state != str(snapshot.get("state")):
            raise ReplicationError(
                "installed leader snapshot fingerprints to "
                f"{self._state[:12]}... but the leader labelled it "
                f"{str(snapshot.get('state'))[:12]}...; snapshot was torn")
        self.applied_offset = int(snapshot["last_offset"])

    def _ensure_offset_locked(self) -> None:
        """Fingerprint this follower's snapshot into the leader's chain."""
        if self.applied_offset is not None:
            return
        response = self._fetch_from_leader("/replication/log?from=1")
        self._leader_last_offset = int(response.get("last_offset", 0))
        self._last_contact_unix = time.time()
        base_offset = int(response.get("base_offset", 0))
        if self._state == str(response.get("base_state", "")) and base_offset == 0:
            self.applied_offset = 0
            return
        if (response.get("checkpoint_state")
                and self._state == str(response["checkpoint_state"])):
            self.applied_offset = base_offset
            return
        for record in response.get("records", []):
            if str(record.get("state")) == self._state:
                self.applied_offset = int(record["offset"])
                return
        self.applied_offset = base_offset
        self.diverged = (
            "follower snapshot does not appear anywhere in the leader's "
            "retained log chain; re-bootstrapping from a leader snapshot")
        raise ReplicationError(self.diverged)

    def _apply_record_locked(self, record: dict) -> None:
        if self.diverged:
            raise ReplicationError(self.diverged)
        if str(record["previous_state"]) != self._state:
            self.diverged = (
                f"record {record['offset']} applies to state "
                f"{str(record['previous_state'])[:12]}... but this follower "
                f"holds {self._state[:12]}...; replicas diverged")
            raise ReplicationError(self.diverged)
        payload = self.service.apply_replicated(self.artifact, _record_body(record))
        repaired = self.service.base_index_for(self.artifact)
        new_state = state_fingerprint(repaired)
        if new_state != str(record["state"]):
            self.diverged = (
                f"applying record {record['offset']} produced state "
                f"{new_state[:12]}... but the leader recorded "
                f"{str(record['state'])[:12]}...; the repair diverged")
            raise ReplicationError(self.diverged)
        self._state = new_state
        self.applied_offset = record["offset"]
        _LOG.info(
            "replicated offset %d (%s): +%d/-%d edges",
            record["offset"], payload.get("mode"),
            len(record.get("insert") or []), len(record.get("delete") or []))


def _record_body(record: dict) -> dict:
    """The ``/update``-shaped body replaying one log record."""
    body = {}
    if record.get("insert"):
        body["insert"] = record["insert"]
    if record.get("delete"):
        body["delete"] = record["delete"]
    if "damage_threshold" in record:
        body["damage_threshold"] = record["damage_threshold"]
    return body
