"""Leader/follower replication of the ``POST /update`` stream.

The streaming repair (PR 4) is deterministic and bit-exact, which makes
replication almost embarrassingly simple: the **leader** is the only
writer — it applies each validated edge batch locally, appends it to a
monotone-offset JSONL log, and fans the record out to its followers; a
**follower** replays the same batches in the same order through the same
repair code and must land on byte-identical state.  No conflicting-write
machinery is needed, only ordering — the shape of PrkDB-style single-
leader replication.

**State fingerprints.**  Artifact *manifest* fingerprints cover wall-clock
timestamps and timing counters, so two replicas holding identical data
report different manifest fingerprints.  Replication therefore chains on
:func:`state_fingerprint` — a SHA-256 over exactly the replicated state
(graph CSR + side + tip numbers).  Every log record carries the state it
applies to (``previous_state``) and the state it produces (``state``);
a follower checks the former before applying and *asserts* the latter
after — any mismatch means the replicas diverged and the follower stops
applying rather than silently serving wrong tip numbers.

**Catch-up** needs no special snapshot transfer: a follower seeded from
any copy of the leader's artifact fingerprints itself into the log chain
(its state is either the chain base or some record's post-state) and
replays everything after that point.  Reads on a follower therefore
always reflect a *prefix* of the leader's applied batches — the PRAM
property the replication tests assert.

Delivery is push + poll: the leader pushes each record to every follower
synchronously (best effort; failures are recorded per follower, never
block the write), and followers poll ``GET /replication/log`` on an
interval to close any gap a missed push left.  Offsets, lag and staleness
surface in ``/stats``, ``GET /replication/status`` and the
``repro_replication_*`` gauges.
"""

from __future__ import annotations

import hashlib
import json
import struct
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from ..errors import ReplicationError, ServiceError
from ..obs.log import get_logger
from ..obs.slo import Objective

__all__ = [
    "ReplicationCoordinator",
    "ReplicationLog",
    "state_fingerprint",
]

_LOG = get_logger("repro.service.replication")

#: Suffix appended to the artifact path for the leader's default log
#: location.  The log must live *outside* the artifact directory: the
#: ``/update`` write path replaces that directory wholesale on every
#: applied batch.
LOG_SUFFIX = ".replog"

#: Default follower staleness promise (seconds behind the leader before
#: the ``replication-staleness`` SLO objective burns through its budget).
DEFAULT_STALENESS_THRESHOLD_SECONDS = 30.0


def state_fingerprint(index) -> str:
    """Deterministic SHA-256 of the replicated state of a loaded index.

    Covers the dual CSR (structure), the decomposed side and the tip
    numbers — everything replication must keep identical across replicas
    — and nothing time- or machine-dependent, so leader and follower
    fingerprints match exactly iff their served answers do.
    """
    digest = hashlib.sha256()
    graph = getattr(index, "graph", None)
    if graph is not None:
        digest.update(struct.pack("<qqq", graph.n_u, graph.n_v, graph.n_edges))
        csr = graph.csr_arrays()
        for key in ("u_offsets", "u_neighbors", "v_offsets", "v_neighbors"):
            digest.update(np.ascontiguousarray(csr[key], dtype=np.int64).tobytes())
    digest.update(str(index.side).encode("utf-8"))
    digest.update(np.ascontiguousarray(index.tip_numbers, dtype=np.int64).tobytes())
    return digest.hexdigest()


_RECORD_FIELDS = ("offset", "artifact", "insert", "delete",
                  "previous_state", "state")


def _validate_record(record: dict) -> dict:
    if not isinstance(record, dict):
        raise ServiceError("replication record must be a JSON object")
    missing = [key for key in _RECORD_FIELDS if key not in record]
    if missing:
        raise ServiceError(
            f"replication record is missing fields: {', '.join(missing)}")
    try:
        record["offset"] = int(record["offset"])
    except (TypeError, ValueError):
        raise ServiceError("replication record offset must be an integer") from None
    if record["offset"] < 1:
        raise ServiceError(
            f"replication record offset must be >= 1, got {record['offset']}")
    return record


class ReplicationLog:
    """Append-only JSONL log of applied update batches, monotone offsets.

    One JSON object per line; offsets are 1-based and assigned at append
    time.  The file is the leader's durable record: on restart the leader
    reloads it and refuses to serve if its artifact state no longer
    matches the chain tip (that means the artifact was modified outside
    the log — the operator must re-seed or drop the log).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._records: list[dict] = []
        if self.path.exists():
            for line_number, line in enumerate(
                    self.path.read_text(encoding="utf-8").splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ReplicationError(
                        f"corrupt replication log {self.path} at line "
                        f"{line_number}: {exc}") from exc
                expected = len(self._records) + 1
                if int(record.get("offset", -1)) != expected:
                    raise ReplicationError(
                        f"replication log {self.path} offset gap at line "
                        f"{line_number}: expected {expected}, got {record.get('offset')}")
                self._records.append(record)

    @property
    def last_offset(self) -> int:
        """Offset of the newest record (0 when the log is empty)."""
        with self._lock:
            return len(self._records)

    @property
    def base_state(self) -> str | None:
        """State fingerprint the chain starts from (None when empty)."""
        with self._lock:
            if not self._records:
                return None
            return str(self._records[0]["previous_state"])

    def append(self, record: dict) -> dict:
        """Assign the next offset, persist the record, return it."""
        with self._lock:
            record = dict(record)
            record["offset"] = len(self._records) + 1
            line = json.dumps(record, sort_keys=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            self._records.append(record)
            return record

    def records_from(self, offset: int, *, limit: int | None = None) -> list[dict]:
        """Records with offsets >= ``offset`` (1-based), oldest first."""
        offset = max(1, int(offset))
        with self._lock:
            records = self._records[offset - 1:]
        if limit is not None:
            records = records[: max(0, int(limit))]
        return [dict(record) for record in records]


def _http_json(url: str, *, payload: dict | None = None, timeout: float) -> dict:
    """One JSON request/response round trip (POST when a payload is given)."""
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 - best-effort error detail
            pass
        raise ReplicationError(
            f"{url} answered HTTP {exc.code}" + (f": {detail}" if detail else "")
        ) from None
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        raise ReplicationError(f"cannot reach {url}: {exc}") from None


class ReplicationCoordinator:
    """Role-aware replication driver attached to one :class:`TipService`.

    * ``role="leader"`` — owns the :class:`ReplicationLog`; the service
      calls :meth:`record_applied` (under its update lock) after every
      locally applied batch, which appends the record and pushes it to
      every configured follower URL synchronously, best effort.
    * ``role="follower"`` — rejects direct ``POST /update`` (HTTP 409),
      accepts pushed records on ``POST /replication/apply``, and runs a
      daemon poll thread that pulls missed records from the leader's log.
      Both paths serialize on one apply lock, verify the fingerprint
      chain, and assert the repaired state matches the leader's record.

    Replication covers exactly one artifact; when the service serves
    several, pass ``artifact`` explicitly.
    """

    def __init__(
        self,
        service,
        *,
        role: str,
        artifact: str | None = None,
        log_path: str | Path | None = None,
        leader_url: str | None = None,
        follower_urls: tuple[str, ...] | list[str] = (),
        poll_interval: float = 1.0,
        push_timeout: float = 5.0,
        staleness_threshold_seconds: float = DEFAULT_STALENESS_THRESHOLD_SECONDS,
    ):
        if role not in ("leader", "follower"):
            raise ServiceError(f"replication role must be leader or follower, got {role!r}")
        if role == "follower" and not leader_url:
            raise ServiceError("a follower needs the leader's URL (--leader)")
        self.service = service
        self.role = role
        self.poll_interval = float(poll_interval)
        self.push_timeout = float(push_timeout)
        self.staleness_threshold_seconds = float(staleness_threshold_seconds)
        self.leader_url = leader_url.rstrip("/") if leader_url else None

        if artifact is None:
            names = service.artifact_names
            if len(names) != 1:
                raise ServiceError(
                    "replication covers one artifact; pass artifact=NAME "
                    f"(serving: {', '.join(names)})")
            artifact = names[0]
        elif artifact not in service.artifact_names:
            raise ServiceError(
                f"unknown artifact {artifact!r} "
                f"(serving: {', '.join(service.artifact_names)})", status=404)
        self.artifact = artifact

        # Current replicated-state fingerprint; maintained incrementally
        # (each applied record's post-state) after the initial computation.
        self._state = state_fingerprint(service.base_index_for(artifact))
        self._apply_lock = threading.Lock()
        self._stop = threading.Event()
        self._poll_thread: threading.Thread | None = None
        self.diverged: str | None = None  # divergence description, once fatal

        if role == "leader":
            if log_path is None:
                log_path = Path(str(service.artifact_path(artifact)) + LOG_SUFFIX)
            self.log = ReplicationLog(log_path)
            last = self.log.records_from(self.log.last_offset)
            if last and str(last[0]["state"]) != self._state:
                raise ReplicationError(
                    f"replication log {self.log.path} tip (offset "
                    f"{last[0]['offset']}) does not match the artifact's current "
                    "state; the artifact changed outside the log — remove the "
                    "log to start a fresh chain or restore the matching snapshot")
            self.followers = {
                url.rstrip("/"): {"acked_offset": 0, "last_push_unix": None,
                                  "last_error": None}
                for url in follower_urls
            }
        else:
            self.log = None
            self.followers = {}
            # applied_offset is resolved lazily on first contact: the
            # follower fingerprints its snapshot into the leader's chain.
            self.applied_offset: int | None = None
            self._leader_last_offset: int | None = None
            self._last_contact_unix: float | None = None
            self._last_synced_unix: float | None = None
            self.last_error: str | None = None

        service.attach_replication(self)

    # ------------------------------------------------------------------
    # Shared surface
    # ------------------------------------------------------------------
    def objective(self) -> Objective | None:
        """The follower staleness SLO objective (None on the leader)."""
        if self.role != "follower":
            return None
        return Objective(
            name="replication-staleness",
            kind="staleness",
            description=(
                "follower replayed the leader's log within "
                f"{self.staleness_threshold_seconds:g} s"),
            target=0.999,
            threshold_seconds=self.staleness_threshold_seconds,
        )

    def check_writable(self) -> None:
        """Guard on ``POST /update``: only the leader accepts writes."""
        if self.role == "follower":
            raise ServiceError(
                "this replica is a read-only follower; send updates to the "
                f"leader at {self.leader_url}", status=409)

    def gauge_values(self) -> tuple[int, int, float | None]:
        """(offset, lag, staleness_seconds) for the replication gauges."""
        if self.role == "leader":
            last = self.log.last_offset
            lag = max((last - peer["acked_offset"] for peer in self.followers.values()),
                      default=0)
            return last, int(lag), 0.0
        applied = self.applied_offset or 0
        leader_last = self._leader_last_offset
        lag = max(0, (leader_last or applied) - applied)
        return applied, int(lag), self.staleness_seconds()

    def staleness_seconds(self) -> float | None:
        """Seconds since this follower last verified it matched the leader.

        ``None`` before the first successful sync (the SLO treats that as
        ``no_data``, not a breach); on the leader, always 0.
        """
        if self.role == "leader":
            return 0.0
        synced = self._last_synced_unix
        if synced is None:
            return None
        return max(0.0, time.time() - synced)

    def status(self) -> dict:
        """The ``GET /replication/status`` payload (also embedded in /stats)."""
        offset, lag, staleness = self.gauge_values()
        payload = {
            "role": self.role,
            "artifact": self.artifact,
            "offset": offset,
            "lag": lag,
            "staleness_seconds": staleness,
            "state": self._state,
            "diverged": self.diverged,
        }
        if self.role == "leader":
            payload["followers"] = {
                url: dict(peer) for url, peer in self.followers.items()}
            payload["base_state"] = self.log.base_state or self._state
        else:
            payload["leader"] = self.leader_url
            payload["leader_last_offset"] = self._leader_last_offset
            payload["last_error"] = self.last_error
        return payload

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------
    def record_applied(self, artifact: str, body: dict, payload: dict, repaired) -> dict:
        """Log one locally applied batch and fan it out (leader only).

        Called by the service under its update lock, so records are
        appended in exactly the order batches were applied.  Push failures
        are recorded per follower and never fail the update — the poll
        path delivers the record later.
        """
        if self.role != "leader" or artifact != self.artifact:
            return {}
        previous_state = self._state
        new_state = state_fingerprint(repaired)
        record = {
            "artifact": artifact,
            "insert": list(body.get("insert") or []),
            "delete": list(body.get("delete") or []),
            "previous_state": previous_state,
            "state": new_state,
            "mode": payload.get("mode"),
            "leader_fingerprint": payload.get("fingerprint"),
            "applied_unix": time.time(),
        }
        if "damage_threshold" in body:
            record["damage_threshold"] = body["damage_threshold"]
        record = self.log.append(record)
        self._state = new_state
        self._push(record)
        return record

    def _push(self, record: dict) -> None:
        for url, peer in self.followers.items():
            try:
                response = _http_json(
                    url + "/replication/apply", payload=record,
                    timeout=self.push_timeout)
            except ReplicationError as exc:
                peer["last_error"] = str(exc)
                _LOG.warning("replication push to %s failed: %s", url, exc)
                continue
            peer["acked_offset"] = int(response.get("offset", peer["acked_offset"]))
            peer["last_push_unix"] = time.time()
            peer["last_error"] = None

    def log_payload(self, params: dict) -> dict:
        """The ``GET /replication/log`` payload (leader only)."""
        if self.role != "leader":
            raise ServiceError(
                "this replica is a follower; fetch the log from the leader at "
                f"{self.leader_url}", status=409)
        try:
            start = int(params.get("from", 1))
            limit = int(params["limit"]) if "limit" in params else None
        except (TypeError, ValueError):
            raise ServiceError("parameters 'from'/'limit' must be integers") from None
        return {
            "artifact": self.artifact,
            "base_state": self.log.base_state or self._state,
            "last_offset": self.log.last_offset,
            "from": start,
            "records": self.log.records_from(start, limit=limit),
        }

    # ------------------------------------------------------------------
    # Follower side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the follower's catch-up poll thread (no-op on the leader)."""
        if self.role != "follower" or self._poll_thread is not None:
            return
        self._poll_thread = threading.Thread(
            target=self._poll_loop, name="replication-poll", daemon=True)
        self._poll_thread.start()

    def stop(self) -> None:
        """Stop the poll thread (if running) and join it."""
        self._stop.set()
        if self._poll_thread is not None:
            self._poll_thread.join(timeout=5.0)
            self._poll_thread = None

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.sync_once()
            except ReplicationError as exc:
                self.last_error = str(exc)

    def handle_push(self, record: dict | None) -> dict:
        """Apply one pushed record (``POST /replication/apply``)."""
        if record is None:
            raise ServiceError(
                "replication apply requires a POST body with one log record",
                status=405)
        if self.role != "follower":
            raise ServiceError(
                "this replica is the leader; followers accept pushed records",
                status=409)
        record = _validate_record(dict(record))
        with self._apply_lock:
            self._ensure_offset_locked()
            offset = record["offset"]
            self._leader_last_offset = max(self._leader_last_offset or 0, offset)
            self._last_contact_unix = time.time()
            if offset <= self.applied_offset:
                applied = False  # duplicate delivery; already reflected
            elif offset == self.applied_offset + 1:
                self._apply_record_locked(record)
                applied = True
            else:
                # Gap: a prior push was lost.  Pull the missing prefix from
                # the leader right now instead of waiting for the poll tick.
                self._sync_locked()
                applied = self.applied_offset >= offset
            if self.applied_offset >= (self._leader_last_offset or 0):
                self._last_synced_unix = time.time()
        return {"applied": applied, "offset": self.applied_offset,
                "lag": self.gauge_values()[1]}

    def sync_once(self) -> dict:
        """One catch-up round against the leader's log (follower only)."""
        if self.role != "follower":
            raise ServiceError("sync_once is a follower operation", status=409)
        with self._apply_lock:
            return self._sync_locked()

    def _sync_locked(self) -> dict:
        self._ensure_offset_locked()
        response = _http_json(
            self.leader_url +
            f"/replication/log?from={self.applied_offset + 1}",
            timeout=self.push_timeout)
        self._leader_last_offset = int(response.get("last_offset", 0))
        self._last_contact_unix = time.time()
        applied = 0
        for record in response.get("records", []):
            record = _validate_record(dict(record))
            if record["offset"] <= self.applied_offset:
                continue
            if record["offset"] != self.applied_offset + 1:
                raise ReplicationError(
                    f"leader log answered offset {record['offset']} while the "
                    f"follower expected {self.applied_offset + 1}")
            self._apply_record_locked(record)
            applied += 1
        if self.applied_offset >= (self._leader_last_offset or 0):
            self._last_synced_unix = time.time()
        self.last_error = None
        return {"applied": applied, "offset": self.applied_offset,
                "lag": max(0, (self._leader_last_offset or 0) - self.applied_offset)}

    def _ensure_offset_locked(self) -> None:
        """Fingerprint this follower's snapshot into the leader's chain."""
        if self.applied_offset is not None:
            return
        response = _http_json(
            self.leader_url + "/replication/log?from=1", timeout=self.push_timeout)
        self._leader_last_offset = int(response.get("last_offset", 0))
        self._last_contact_unix = time.time()
        if self._state == str(response.get("base_state", "")):
            self.applied_offset = 0
            return
        for record in response.get("records", []):
            if str(record.get("state")) == self._state:
                self.applied_offset = int(record["offset"])
                return
        self.diverged = (
            "follower snapshot does not appear anywhere in the leader's log "
            "chain; re-seed this follower from a current leader snapshot")
        raise ReplicationError(self.diverged)

    def _apply_record_locked(self, record: dict) -> None:
        if self.diverged:
            raise ReplicationError(self.diverged)
        if str(record["previous_state"]) != self._state:
            self.diverged = (
                f"record {record['offset']} applies to state "
                f"{str(record['previous_state'])[:12]}... but this follower "
                f"holds {self._state[:12]}...; replicas diverged")
            raise ReplicationError(self.diverged)
        body = {}
        if record.get("insert"):
            body["insert"] = record["insert"]
        if record.get("delete"):
            body["delete"] = record["delete"]
        if "damage_threshold" in record:
            body["damage_threshold"] = record["damage_threshold"]
        payload = self.service.apply_replicated(self.artifact, body)
        repaired = self.service.base_index_for(self.artifact)
        new_state = state_fingerprint(repaired)
        if new_state != str(record["state"]):
            self.diverged = (
                f"applying record {record['offset']} produced state "
                f"{new_state[:12]}... but the leader recorded "
                f"{str(record['state'])[:12]}...; the repair diverged")
            raise ReplicationError(self.diverged)
        self._state = new_state
        self.applied_offset = record["offset"]
        _LOG.info(
            "replicated offset %d (%s): +%d/-%d edges",
            record["offset"], payload.get("mode"),
            len(record.get("insert") or []), len(record.get("delete") or []))
