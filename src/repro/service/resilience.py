"""Retry, circuit-breaking, and deadline primitives for the serving tier.

Three small, composable pieces:

* :class:`RetryPolicy` — exponential backoff with **full jitter** (each
  sleep is uniform in ``[0, base * 2^attempt]``, capped) and a wall-clock
  **retry budget** so a sick dependency cannot absorb unbounded time.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, one per remote target, so repeated failures short-circuit
  immediately (:class:`~repro.errors.CircuitOpenError`, HTTP 503 with a
  ``Retry-After`` equal to the remaining reset timeout) instead of
  burning a retry budget per request.  :class:`CircuitBreakerRegistry`
  owns the per-target instances and feeds the ``breaker-open`` SLO
  objective via :meth:`~CircuitBreakerRegistry.oldest_open_seconds`.
* :class:`Deadline` — a per-request time budget (``deadline_ms`` query /
  body parameter) propagated through scatter/gather so a slow shard
  yields a structured ``degraded: true`` partial answer — or a 503
  (:class:`~repro.errors.DeadlineExceededError`) when nothing resolved —
  instead of an unbounded hang.

All three are dependency-free and deterministic under test: the retry
RNG is injectable, and both the breaker and deadline take a ``clock``
callable (defaults to :func:`time.monotonic`).
"""

from __future__ import annotations

import random
import threading
import time

from ..errors import CircuitOpenError, DeadlineExceededError, ServiceError

__all__ = [
    "CircuitBreaker",
    "CircuitBreakerRegistry",
    "Deadline",
    "RetryPolicy",
]


class RetryPolicy:
    """Budget-capped exponential backoff with full jitter.

    ``call(fn, ...)`` invokes ``fn`` up to ``max_attempts`` times,
    sleeping ``uniform(0, min(max_delay, base_delay * 2^attempt))``
    between attempts.  Retries stop early when the accumulated elapsed
    time would exceed ``budget_seconds`` — the last exception is
    re-raised.  Only ``retryable`` exceptions are retried; anything else
    propagates immediately.
    """

    def __init__(self, *, max_attempts: int = 3, base_delay: float = 0.05,
                 max_delay: float = 2.0, budget_seconds: float = 10.0,
                 retryable: tuple = (Exception,), rng: random.Random | None = None,
                 sleep=time.sleep, clock=time.monotonic):
        if max_attempts < 1:
            raise ServiceError(f"retry max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0 or budget_seconds <= 0:
            raise ServiceError("retry delays must be >= 0 and budget > 0")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.budget_seconds = float(budget_seconds)
        self.retryable = retryable
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        self.retries_total = 0
        self.budget_exhausted_total = 0

    def backoff(self, attempt: int) -> float:
        """The jittered sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return self._rng.uniform(0.0, ceiling)

    def call(self, fn, *args, on_retry=None, **kwargs):
        """Run ``fn(*args, **kwargs)`` with retries; re-raise on exhaustion.

        ``on_retry(attempt, exc)`` (if given) is invoked before each
        sleep — the coordinator uses it to count retries into metrics.
        """
        started = self._clock()
        last_exc = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except self.retryable as exc:
                last_exc = exc
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self.backoff(attempt)
                if (self._clock() - started) + delay > self.budget_seconds:
                    with self._lock:
                        self.budget_exhausted_total += 1
                    break
                with self._lock:
                    self.retries_total += 1
                if on_retry is not None:
                    on_retry(attempt, exc)
                self._sleep(delay)
        raise last_exc

    def stats(self) -> dict:
        """JSON-able counters and configuration for ``/stats``."""
        with self._lock:
            return {
                "max_attempts": self.max_attempts,
                "base_delay_seconds": self.base_delay,
                "max_delay_seconds": self.max_delay,
                "budget_seconds": self.budget_seconds,
                "retries_total": self.retries_total,
                "budget_exhausted_total": self.budget_exhausted_total,
            }


class CircuitBreaker:
    """Closed → open → half-open breaker around calls to one target.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`call` raises :class:`~repro.errors.CircuitOpenError`
    without touching the target.  After ``reset_seconds`` the next call
    is a half-open probe: success closes the breaker, failure re-opens
    it for another full timeout.
    """

    def __init__(self, name: str, *, failure_threshold: int = 5,
                 reset_seconds: float = 15.0, clock=time.monotonic):
        if failure_threshold < 1:
            raise ServiceError(
                f"breaker failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds <= 0:
            raise ServiceError(f"breaker reset_seconds must be > 0, got {reset_seconds}")
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.opened_total = 0
        self.short_circuited_total = 0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half-open``."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (self._state == "open" and self._opened_at is not None
                and (self._clock() - self._opened_at) >= self.reset_seconds):
            self._state = "half-open"

    def allow(self) -> bool:
        """Whether a call may proceed right now (no exception variant)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state != "open"

    def open_for_seconds(self) -> float:
        """How long the breaker has been open (0.0 unless open)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state != "open" or self._opened_at is None:
                return 0.0
            return max(0.0, self._clock() - self._opened_at)

    def record_success(self) -> None:
        """Note a successful call: closes the breaker, clears the streak."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker open."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = (self._state == "half-open"
                       or self._consecutive_failures >= self.failure_threshold)
            if tripped and self._state != "open":
                self._state = "open"
                self._opened_at = self._clock()
                self.opened_total += 1
            elif tripped:
                self._opened_at = self._clock()

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` through the breaker; short-circuit when open."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "open":
                self.short_circuited_total += 1
                remaining = self.reset_seconds
                if self._opened_at is not None:
                    remaining = max(
                        0.0, self.reset_seconds - (self._clock() - self._opened_at))
                raise CircuitOpenError(
                    f"circuit breaker {self.name!r} is open "
                    f"({self._consecutive_failures} consecutive failures); "
                    f"retry in {remaining:.2f}s",
                    retry_after=max(0.05, remaining))
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def snapshot(self) -> dict:
        """JSON-able breaker state for ``/stats`` and ``/replication/status``."""
        with self._lock:
            self._maybe_half_open_locked()
            open_seconds = 0.0
            if self._state == "open" and self._opened_at is not None:
                open_seconds = max(0.0, self._clock() - self._opened_at)
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "open_for_seconds": round(open_seconds, 3),
                "opened_total": self.opened_total,
                "short_circuited_total": self.short_circuited_total,
            }


class CircuitBreakerRegistry:
    """Per-target breaker factory + aggregate views for metrics and SLOs."""

    def __init__(self, *, failure_threshold: int = 5, reset_seconds: float = 15.0,
                 clock=time.monotonic):
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def configure(self, *, failure_threshold: int | None = None,
                  reset_seconds: float | None = None) -> None:
        """Adjust defaults for breakers created after this call."""
        if failure_threshold is not None:
            if int(failure_threshold) < 1:
                raise ServiceError(
                    f"breaker failure_threshold must be >= 1, got {failure_threshold}")
            self.failure_threshold = int(failure_threshold)
        if reset_seconds is not None:
            if float(reset_seconds) <= 0:
                raise ServiceError(
                    f"breaker reset_seconds must be > 0, got {reset_seconds}")
            self.reset_seconds = float(reset_seconds)

    def get(self, name: str) -> CircuitBreaker:
        """The breaker for ``name``, created on first use."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    name, failure_threshold=self.failure_threshold,
                    reset_seconds=self.reset_seconds, clock=self._clock)
                self._breakers[name] = breaker
            return breaker

    def open_count(self) -> int:
        """How many breakers are currently open."""
        with self._lock:
            breakers = list(self._breakers.values())
        return sum(1 for breaker in breakers if breaker.state == "open")

    def oldest_open_seconds(self) -> float:
        """Longest time any breaker has been open (the SLO staleness feed)."""
        with self._lock:
            breakers = list(self._breakers.values())
        if not breakers:
            return 0.0
        return max(breaker.open_for_seconds() for breaker in breakers)

    def snapshot(self) -> list:
        """Per-breaker snapshots, sorted by name."""
        with self._lock:
            breakers = sorted(self._breakers.values(), key=lambda item: item.name)
        return [breaker.snapshot() for breaker in breakers]


class Deadline:
    """A per-request wall-clock budget propagated through scatter/gather.

    Built from the ``deadline_ms`` request parameter.  Call sites check
    :meth:`expired` between units of work and either degrade (partial
    answer) or raise :meth:`raise_if_expired`'s
    :class:`~repro.errors.DeadlineExceededError`.
    """

    def __init__(self, seconds: float, *, clock=time.monotonic):
        if seconds <= 0:
            raise ServiceError(f"deadline must be > 0 seconds, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._started = clock()

    @classmethod
    def from_params(cls, params: dict, *, key: str = "deadline_ms",
                    clock=time.monotonic) -> "Deadline | None":
        """Parse ``deadline_ms`` from a params dict; None when absent."""
        raw = params.get(key)
        if raw is None:
            return None
        if isinstance(raw, (list, tuple)):
            raw = raw[0] if raw else None
            if raw is None:
                return None
        try:
            millis = float(raw)
        except (TypeError, ValueError):
            raise ServiceError(
                f"query parameter {key!r} must be a positive number, "
                f"got {raw!r}") from None
        if millis <= 0:
            raise ServiceError(
                f"query parameter {key!r} must be a positive number, got {raw!r}")
        return cls(millis / 1000.0, clock=clock)

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left on the budget (never negative)."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed() >= self.seconds

    def raise_if_expired(self, what: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` once spent."""
        if self.expired():
            raise DeadlineExceededError(
                f"{what} exceeded its {self.seconds * 1000.0:.0f}ms deadline",
                retry_after=max(0.05, self.seconds))
